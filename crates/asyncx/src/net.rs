//! TCP front end for the sharded adaptive store.
//!
//! Serves [`ShardedStore`] over real TCP using the control plane's
//! line-oriented protocol (one command per line; `ok`/`err <diag>`,
//! dot-stuffed body, `.` terminator — see `adaptive_control::socket`).
//! Connections are **tasks**, not threads: the listener and every
//! connection run on an asyncx [`Runtime`], so a thousand idle
//! connections cost a thousand parked tasks, and the store's shard
//! locks see the exact async regime the poll-vs-park adaptation tunes.
//!
//! The workspace vendors no event loop, so readiness is handled the
//! same way the mutex handles contention: nonblocking sockets retried
//! across a bounded run of yields (poll), then timer-paced sleeps
//! (park). See [`retry_would_block`].
//!
//! Commands:
//!
//! | command            | body                                   |
//! |--------------------|----------------------------------------|
//! | `get <key>`        | the value, or `none`                   |
//! | `put <key> <val>`  | the previous value, or `none`          |
//! | `incr <key> <by>`  | the new value                          |
//! | `total`            | sum of every value                     |
//! | `len`              | number of entries                      |
//! | `shards`           | current shard count                    |
//! | `stats`            | server counters, one `name value`/line |
//! | `ctl <command...>` | forwarded to the control plane         |
//! | `quit`             | closes the connection                  |
//!
//! `ctl` is the piece that makes the mid-run retune scenario real: an
//! operator (or the bench driver) connects over the same TCP port the
//! data path uses and quarantines, heals, or retunes a live shard lock
//! while gets and puts keep flowing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_control::{BreakerHub, ControlPlane};
use adaptive_service::ShardedStore;

use crate::mutex::AsyncAdaptiveMutex;
use crate::rt::{self, Runtime};

/// How a [`serve_store`] server is built.
pub struct StoreServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`StoreServerHandle::addr`]).
    pub addr: String,
    /// Worker threads of the serving runtime.
    pub workers: usize,
    /// Control plane reachable through the `ctl` command; `None`
    /// makes `ctl` answer `err no control plane`.
    pub plane: Option<ControlPlane>,
    /// Hub to register the server's own stats lock with (as
    /// `tcp-server.stats`), so the circuit breakers supervise the
    /// async mutex alongside the shard locks.
    pub hub: Option<Arc<BreakerHub>>,
}

impl Default for StoreServerConfig {
    fn default() -> StoreServerConfig {
        StoreServerConfig { addr: "127.0.0.1:0".into(), workers: 2, plane: None, hub: None }
    }
}

/// Server-side counters, guarded by an [`AsyncAdaptiveMutex`] — the
/// server's own metadata lock is a live specimen of the lock under
/// study (every command takes it once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Commands served (any outcome).
    pub ops: u64,
    /// `get` commands.
    pub gets: u64,
    /// `put` commands.
    pub puts: u64,
    /// `incr` commands.
    pub incrs: u64,
    /// `ctl` commands forwarded to the control plane.
    pub ctls: u64,
    /// Commands answered with `err`.
    pub errors: u64,
}

/// A running TCP store server. Dropping it (or calling
/// [`StoreServerHandle::shutdown`]) stops the acceptor, drains live
/// connections briefly, and joins the runtime.
pub struct StoreServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicU32>,
    stats: Arc<AsyncAdaptiveMutex<ServerStats>>,
    runtime: Option<Runtime>,
}

impl StoreServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    /// Snapshot of the server counters (taken through the async lock).
    pub fn stats(&self) -> ServerStats {
        match &self.runtime {
            Some(rt) => *rt.block_on(self.stats.lock()),
            None => ServerStats::default(),
        }
    }

    /// The server's stats lock, for registering with additional
    /// supervisors or probing its adaptation directly.
    pub fn stats_lock(&self) -> Arc<AsyncAdaptiveMutex<ServerStats>> {
        Arc::clone(&self.stats)
    }

    /// Stop accepting, wait up to `grace` for in-flight connections to
    /// drain, then join the runtime. Returns whether the drain
    /// completed (false = connections were cut off).
    pub fn shutdown(mut self, grace: Duration) -> bool {
        self.stop.store(true, Ordering::Release);
        let deadline = Instant::now() + grace;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drained = self.active.load(Ordering::Acquire) == 0;
        self.runtime.take(); // joins the workers
        drained
    }
}

impl Drop for StoreServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Serve `store` over TCP on its own runtime. Returns once the
/// listener is bound; serving continues until the handle is shut down.
pub fn serve_store(
    store: Arc<ShardedStore>,
    config: StoreServerConfig,
) -> std::io::Result<StoreServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let runtime = Runtime::multi_thread(config.workers);
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicU32::new(0));
    let stats = Arc::new(AsyncAdaptiveMutex::new(ServerStats::default()));
    if let Some(hub) = &config.hub {
        hub.register("tcp-server.stats", stats.clone());
    }
    let shared = Arc::new(ServerShared {
        store,
        plane: config.plane,
        stop: Arc::clone(&stop),
        active: Arc::clone(&active),
        stats: Arc::clone(&stats),
    });
    runtime.handle().spawn(accept_loop(listener, shared));
    Ok(StoreServerHandle { addr, stop, active, stats, runtime: Some(runtime) })
}

/// Everything a connection task needs.
struct ServerShared {
    store: Arc<ShardedStore>,
    plane: Option<ControlPlane>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicU32>,
    stats: Arc<AsyncAdaptiveMutex<ServerStats>>,
}

async fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                shared.active.fetch_add(1, Ordering::AcqRel);
                shared.stats.lock().await.connections += 1;
                let shared2 = Arc::clone(&shared);
                rt::spawn(async move {
                    let _ = serve_connection(stream, &shared2).await;
                    shared2.active.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // No pending connection: park until the next poll tick.
                rt::sleep(Duration::from_millis(1)).await;
            }
            Err(_) => {
                rt::sleep(Duration::from_millis(1)).await;
            }
        }
    }
}

/// Retry a nonblocking socket op across the poll-then-park ladder: a
/// bounded run of yields first (another task on this worker may be
/// about to produce the bytes we need), then timer-paced sleeps. The
/// server's stop flag aborts the wait so shutdown cannot hang on an
/// idle connection.
async fn retry_would_block<T>(
    stop: &AtomicBool,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    const YIELD_BUDGET: u32 = 16;
    let mut attempts = 0u32;
    loop {
        match op() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Acquire) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server shutting down",
                    ));
                }
                if attempts < YIELD_BUDGET {
                    attempts += 1;
                    rt::yield_now().await;
                } else {
                    rt::sleep(Duration::from_micros(500)).await;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

/// A nonblocking stream plus its carry buffer of unconsumed bytes.
struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Conn {
    /// Read one `\n`-terminated line (without the terminator); `None`
    /// at EOF.
    async fn read_line(&mut self, stop: &AtomicBool) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.carry.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            let n = retry_would_block(stop, || self.stream.read(&mut chunk)).await?;
            if n == 0 {
                return Ok(None); // EOF (any carry without \n is discarded)
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
    }

    async fn write_all(&mut self, mut bytes: &[u8], stop: &AtomicBool) -> std::io::Result<()> {
        while !bytes.is_empty() {
            let n = retry_would_block(stop, || self.stream.write(bytes)).await?;
            bytes = &bytes[n..];
        }
        Ok(())
    }
}

/// Render a response in the socket protocol's frame.
fn render_frame(response: &Result<String, String>) -> String {
    let mut out = String::new();
    match response {
        Ok(body) => {
            out.push_str("ok\n");
            for line in body.lines() {
                if line.starts_with('.') {
                    out.push('.');
                }
                out.push_str(line);
                out.push('\n');
            }
        }
        Err(e) => {
            out.push_str("err ");
            out.push_str(e);
            out.push('\n');
        }
    }
    out.push_str(".\n");
    out
}

async fn serve_connection(stream: TcpStream, shared: &ServerShared) -> std::io::Result<()> {
    let mut conn = Conn { stream, carry: Vec::new() };
    loop {
        let Some(line) = conn.read_line(&shared.stop).await? else {
            return Ok(());
        };
        let line = line.trim().to_string();
        if line == "quit" {
            return Ok(());
        }
        if line.is_empty() {
            continue;
        }
        let response = execute(&line, shared).await;
        {
            let mut s = shared.stats.lock().await;
            s.ops += 1;
            if response.is_err() {
                s.errors += 1;
            }
        }
        let frame = render_frame(&response);
        conn.write_all(frame.as_bytes(), &shared.stop).await?;
    }
}

async fn execute(line: &str, shared: &ServerShared) -> Result<String, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or_default();
    let parse = |s: Option<&str>, what: &str| -> Result<u64, String> {
        s.ok_or_else(|| format!("missing {what}"))?
            .parse::<u64>()
            .map_err(|_| format!("bad {what}"))
    };
    match cmd {
        "get" => {
            let key = parse(parts.next(), "key")?;
            shared.stats.lock().await.gets += 1;
            Ok(match shared.store.get(key) {
                Some(v) => v.to_string(),
                None => "none".into(),
            })
        }
        "put" => {
            let key = parse(parts.next(), "key")?;
            let val = parse(parts.next(), "value")?;
            shared.stats.lock().await.puts += 1;
            Ok(match shared.store.put(key, val) {
                Some(prev) => prev.to_string(),
                None => "none".into(),
            })
        }
        "incr" => {
            let key = parse(parts.next(), "key")?;
            let by = parse(parts.next(), "by")?;
            shared.stats.lock().await.incrs += 1;
            Ok(shared.store.increment(key, by).to_string())
        }
        "total" => Ok(shared.store.total().to_string()),
        "len" => Ok(shared.store.len().to_string()),
        "shards" => Ok(shared.store.shard_count().to_string()),
        "stats" => {
            let s = *shared.stats.lock().await;
            Ok(format!(
                "connections {}\nops {}\ngets {}\nputs {}\nincrs {}\nctls {}\nerrors {}",
                s.connections, s.ops, s.gets, s.puts, s.incrs, s.ctls, s.errors
            ))
        }
        "ctl" => {
            shared.stats.lock().await.ctls += 1;
            let rest = line["ctl".len()..].trim();
            if rest.is_empty() {
                return Err("missing control command".into());
            }
            match &shared.plane {
                Some(plane) => plane.execute(rest),
                None => Err("no control plane".into()),
            }
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// A minimal blocking client for the TCP store protocol — the bench
/// driver's and tests' counterpart to `adaptive_control::SocketClient`,
/// over TCP instead of a Unix socket.
pub struct BlockingLineClient {
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
}

impl BlockingLineClient {
    /// Connect to a [`StoreServerHandle::addr`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<BlockingLineClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(BlockingLineClient {
            reader: std::io::BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send one command and read the framed response: `Ok(Ok(body))`,
    /// `Ok(Err(diagnostic))`, or a transport error.
    pub fn send(&mut self, line: &str) -> std::io::Result<Result<String, String>> {
        use std::io::BufRead;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut status = String::new();
        if self.reader.read_line(&mut status)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = status.trim_end().to_string();
        if let Some(e) = status.strip_prefix("err ") {
            // Error frames still end with the `.` terminator.
            self.read_body()?;
            return Ok(Err(e.to_string()));
        }
        if status != "ok" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status:?}"),
            ));
        }
        Ok(Ok(self.read_body()?))
    }

    fn read_body(&mut self) -> std::io::Result<String> {
        use std::io::BufRead;
        let mut body = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated response frame",
                ));
            }
            let l = l.trim_end_matches('\n');
            if l == "." {
                break;
            }
            body.push(l.strip_prefix('.').unwrap_or(l).to_string());
        }
        Ok(body.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_control::ControlPlane;
    use adaptive_service::{ServiceConfig, ShardedStore};

    fn test_store() -> Arc<ShardedStore> {
        Arc::new(ShardedStore::new(ServiceConfig {
            initial_depth: 2,
            ..ServiceConfig::default()
        }))
    }

    #[test]
    fn tcp_round_trips_the_data_commands() {
        let store = test_store();
        let server = serve_store(store, StoreServerConfig::default()).expect("bind");
        let mut c = BlockingLineClient::connect(server.addr()).expect("connect");
        assert_eq!(c.send("get 7").unwrap().unwrap(), "none");
        assert_eq!(c.send("put 7 40").unwrap().unwrap(), "none");
        assert_eq!(c.send("incr 7 2").unwrap().unwrap(), "42");
        assert_eq!(c.send("get 7").unwrap().unwrap(), "42");
        assert_eq!(c.send("put 9 8").unwrap().unwrap(), "none");
        assert_eq!(c.send("total").unwrap().unwrap(), "50");
        assert_eq!(c.send("len").unwrap().unwrap(), "2");
        assert_eq!(c.send("shards").unwrap().unwrap(), "4");
        let err = c.send("frobnicate").unwrap();
        assert!(err.is_err());
        let stats = c.send("stats").unwrap().unwrap();
        assert!(stats.contains("gets 2"), "stats body: {stats}");
        assert!(stats.contains("errors 1"), "stats body: {stats}");
        assert!(server.shutdown(Duration::from_secs(2)));
    }

    #[test]
    fn concurrent_clients_conserve_every_increment() {
        let store = test_store();
        let server = serve_store(Arc::clone(&store), StoreServerConfig::default()).expect("bind");
        let addr = server.addr();
        let clients: u32 = 4;
        let per_client: u32 = 50;
        let threads: Vec<_> = (0..clients)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = BlockingLineClient::connect(addr).expect("connect");
                    for i in 0..per_client {
                        let key = (t * 7 + i) % 5;
                        c.send(&format!("incr {key} 1")).unwrap().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        assert_eq!(store.total(), u128::from(clients * per_client), "lost increments");
        let stats = server.stats();
        assert_eq!(stats.incrs, u64::from(clients * per_client));
        assert_eq!(stats.connections, u64::from(clients));
        assert!(server.shutdown(Duration::from_secs(2)));
    }

    #[test]
    fn ctl_reaches_a_live_shard_lock_through_tcp() {
        let store = test_store();
        let hub = Arc::new(BreakerHub::default());
        store.register_with_hub(Arc::clone(&hub));
        let server = serve_store(
            Arc::clone(&store),
            StoreServerConfig {
                plane: Some(ControlPlane::new(Arc::clone(&hub))),
                hub: Some(Arc::clone(&hub)),
                ..StoreServerConfig::default()
            },
        )
        .expect("bind");
        let mut c = BlockingLineClient::connect(server.addr()).expect("connect");
        let targets = c.send("ctl targets").unwrap().unwrap();
        assert!(targets.contains("shard-0"), "targets body: {targets}");
        assert!(
            targets.contains("tcp-server.stats"),
            "server stats lock must be hub-registered: {targets}"
        );
        c.send("ctl retune shard-0 spin 0").unwrap().unwrap();
        let health = c.send("ctl health shard-0").unwrap().unwrap();
        assert!(!health.is_empty());
        let err = c.send("ctl retune shard-0 spin soon").unwrap();
        assert!(err.is_err(), "plane diagnostics must travel back as err frames");
        assert!(server.shutdown(Duration::from_secs(2)));
    }

    #[test]
    fn dot_stuffed_bodies_survive_the_tcp_frame() {
        // `ctl snapshot` bodies are long and may contain arbitrary
        // lines; round-trip one through the real socket.
        let store = test_store();
        let hub = Arc::new(BreakerHub::default());
        store.register_with_hub(Arc::clone(&hub));
        let server = serve_store(
            Arc::clone(&store),
            StoreServerConfig {
                plane: Some(ControlPlane::new(Arc::clone(&hub))),
                ..StoreServerConfig::default()
            },
        )
        .expect("bind");
        let mut c = BlockingLineClient::connect(server.addr()).expect("connect");
        let snap = c.send("ctl snapshot").unwrap().unwrap();
        assert!(snap.lines().count() > 10, "multi-line body survives framing");
        assert!(server.shutdown(Duration::from_secs(2)));
    }
}
