//! # asyncx
//!
//! The paper's adaptive waiting policy, reformulated for the regime
//! modern services run in: tasks on an executor, where "blocking" means
//! yielding a *task*, not a core. The spin-vs-block tradeoff the paper
//! tuned with `{spin, delay, timeout}` reappears here as **poll vs
//! park** with different constants:
//!
//! * **poll** — re-try the lock across bounded yields to the executor
//!   (no waker registration, no handoff protocol); cheap when holds are
//!   short, pure scheduler waste when they are not;
//! * **park** — register a waker in the lock's queue and sleep until a
//!   releaser grants the lock directly (the native mutex's handoff,
//!   with a waker where the thread parker used to be).
//!
//! [`AsyncAdaptiveMutex`] carries the same sampled-contention feedback
//! loop, attribute set ([`NativeWaitingPolicy`]), poisoning,
//! quarantine, and control-plane registration as
//! `adaptive_native::AdaptiveMutex` — the policy types are shared, so
//! one operator surface retunes both.
//!
//! Modules:
//!
//! * [`rt`] — a minimal hand-rolled executor (multi-thread and
//!   current-thread flavors, timers, `yield_now`/`sleep`/`timeout`);
//!   the workspace vendors no async runtime, and the regime under study
//!   needs only this much;
//! * [`mutex`] — the async adaptive mutex itself;
//! * [`net`] — the TCP front end serving the sharded adaptive store
//!   over the control plane's line protocol.
//!
//! [`NativeWaitingPolicy`]: adaptive_native::NativeWaitingPolicy

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod mutex;
pub mod net;
pub mod rt;

pub use mutex::{
    AsyncAdaptiveMutex, AsyncMutexGuard, AsyncPollAdapt, LockFuture, POLL_BUDGET_CAP,
};
pub use net::{serve_store, BlockingLineClient, StoreServerConfig, StoreServerHandle};
pub use rt::{
    sleep, sleep_until, spawn, timeout, yield_now, Elapsed, Flavor, Handle, JoinHandle, Runtime,
};
