//! A minimal hand-rolled async runtime.
//!
//! The workspace vendors no async executor, and the point of the async
//! backend is the *locking* regime — "blocking" that yields a task, not
//! a core — so the runtime here is deliberately small: an injector run
//! queue shared by N worker threads (or serviced inline by `block_on`
//! for the current-thread flavor), a timer heap folded into the
//! workers' condvar waits, and the three combinators the mutex and the
//! benchmarks need ([`yield_now`], [`sleep`], [`timeout`]).
//!
//! Two flavors, mirroring the shapes services actually deploy:
//!
//! * [`Runtime::multi_thread`] — N OS worker threads pull from one
//!   injector queue. Wakes go back through the queue; an idle worker
//!   parks on the condvar with a deadline at the next pending timer.
//! * [`Runtime::current_thread`] — no worker threads; the thread inside
//!   [`Runtime::block_on`] alternates between the root future and the
//!   run queue. This is the flavor where synchronous spinning in a task
//!   can *never* succeed (the lock holder shares the only thread), which
//!   is exactly the regime the poll-vs-park adaptation has to detect.
//!
//! Tasks are reference-counted state machines (`Idle → Scheduled →
//! Running → {Idle, Done}` with a `Notified` overlap state), so a wake
//! that lands mid-poll re-schedules instead of being lost, and a wake
//! of an already-queued task is a no-op — the standard executor
//! contract, in ~100 lines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Task lifecycle states (see module docs).
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// A spawned future plus its scheduling state.
struct Task {
    /// The future, checked out by whichever worker is polling it.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    state: AtomicU8,
    shared: Arc<Shared>,
}

impl Task {
    /// Move `Scheduled → Running` and poll; afterwards either retire
    /// (`Done`), go idle, or re-enqueue if a wake landed mid-poll.
    fn run(self: &Arc<Task>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self
            .future
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(fut) = slot.as_mut() else {
            // Already completed (a stale wake raced retirement).
            self.state.store(DONE, Ordering::Release);
            return;
        };
        // A panicking task must not kill the worker thread: the panic is
        // captured by the JoinHandle wrapper future (which re-raises it
        // at the join point), so a poll-level panic here means the task
        // body escaped that wrapper — treat it as completion.
        let polled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Pending) => {
                drop(slot);
                // `Running → Idle` unless a wake upgraded us to
                // `Notified`, in which case we owe ourselves a re-run.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(SCHEDULED, Ordering::Release);
                    self.shared.enqueue(Arc::clone(self));
                }
            }
            Ok(Poll::Ready(())) | Err(_) => {
                *slot = None;
                drop(slot);
                self.state.store(DONE, Ordering::Release);
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.shared.enqueue(Arc::clone(self));
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or retired.
                _ => return,
            }
        }
    }
}

/// One pending timer: fire `waker` at `deadline`. Ordered by deadline
/// (then sequence number, so equal deadlines stay FIFO in the heap).
struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// State shared by every handle, worker, and task of one runtime.
struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    timers: Mutex<BinaryHeap<Reverse<TimerEntry>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    timer_seq: AtomicU64,
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(task);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<Arc<Task>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }

    /// Wake every timer whose deadline has passed; returns the next
    /// pending deadline, if any.
    fn fire_due_timers(&self) -> Option<Instant> {
        let mut due = Vec::new();
        let next = {
            let mut timers = self
                .timers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let now = Instant::now();
            while let Some(Reverse(head)) = timers.peek() {
                if head.deadline > now {
                    break;
                }
                let Some(Reverse(entry)) = timers.pop() else {
                    break;
                };
                due.push(entry.waker);
            }
            timers.peek().map(|Reverse(e)| e.deadline)
        };
        // Wake outside the timer lock: a waker may immediately try to
        // register a new timer.
        for waker in due {
            waker.wake();
        }
        next
    }

    fn register_timer(&self, deadline: Instant, waker: Waker) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        self.timers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Reverse(TimerEntry { deadline, seq, waker }));
        // A worker may be parked past this deadline; re-arm its wait.
        self.cv.notify_one();
    }

    /// One scheduler turn: fire timers, run one task if any. Returns
    /// whether a task ran. When idle, waits on the condvar until
    /// `deadline_cap` or the next timer, whichever is sooner — unless
    /// `wait` is false (the current-thread driver interleaves the root
    /// future and supplies its own waiting).
    fn turn(&self, wait: bool) -> bool {
        let next_timer = self.fire_due_timers();
        if let Some(task) = self.pop() {
            task.run();
            return true;
        }
        if wait && !self.shutdown.load(Ordering::Acquire) {
            let guard = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if guard.is_empty() {
                let timeout = next_timer
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(50));
                let _ = self
                    .cv
                    .wait_timeout(guard, timeout.min(Duration::from_millis(50)));
            }
        }
        false
    }
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<Handle>> = const { std::cell::RefCell::new(None) };
}

/// Sets the thread-local current handle for a scope, restoring the
/// previous one on drop (so nested `block_on`s unwind correctly).
struct EnterGuard(Option<Handle>);

fn enter(handle: Handle) -> EnterGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(handle));
    EnterGuard(prev)
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// A cloneable reference to a runtime: spawn tasks and register timers
/// from anywhere that holds one.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The handle of the runtime driving the current thread.
    ///
    /// # Panics
    ///
    /// Outside a runtime (no `block_on` or worker on this thread).
    pub fn current() -> Handle {
        Handle::try_current().expect("not inside an asyncx runtime")
    }

    /// Like [`Handle::current`], but `None` outside a runtime.
    pub fn try_current() -> Option<Handle> {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Spawn a future onto the runtime; returns a [`JoinHandle`] that
    /// resolves to the future's output (re-raising its panic, if any).
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let join = Arc::new(JoinState {
            inner: Mutex::new(JoinInner { result: None, waker: None }),
            done: AtomicBool::new(false),
        });
        let join2 = Arc::clone(&join);
        let wrapped = async move {
            // Catch the panic at the await points too, not just inside
            // one poll: wrap the whole future so the payload travels to
            // the join point instead of killing a worker.
            let result = CatchUnwind { inner: future }.await;
            let waker = {
                let mut inner = join2
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner.result = Some(result);
                inner.waker.take()
            };
            join2.done.store(true, Ordering::Release);
            if let Some(w) = waker {
                w.wake();
            }
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            state: AtomicU8::new(SCHEDULED),
            shared: Arc::clone(&self.shared),
        });
        self.shared.enqueue(task);
        JoinHandle { state: join }
    }

    /// Arrange for `waker` to be woken at `deadline` (fire-once; a
    /// stale registration costs one spurious wake). This is the hook
    /// the async mutex's park-timeout path uses directly, bypassing
    /// [`Sleep`] so the deadline lives outside any future of its own.
    pub fn register_timer_at(&self, deadline: Instant, waker: Waker) {
        self.shared.register_timer(deadline, waker);
    }
}

/// Spawn onto the current thread's runtime (see [`Handle::spawn`]).
///
/// # Panics
///
/// Outside a runtime.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    Handle::current().spawn(future)
}

/// Catches a panic that unwinds out of any poll of `inner`.
struct CatchUnwind<F> {
    inner: F,
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = std::thread::Result<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural projection — `inner` is never moved out.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.inner) };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Err(payload) => Poll::Ready(Err(payload)),
        }
    }
}

struct JoinInner<T> {
    result: Option<std::thread::Result<T>>,
    waker: Option<Waker>,
}

struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
    done: AtomicBool,
}

/// Awaitable completion of a spawned task.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (without consuming the result).
    pub fn is_finished(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = self
            .state
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(result) = inner.result.take() {
            drop(inner);
            match result {
                Ok(v) => Poll::Ready(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// How many worker threads a runtime drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// No workers: `block_on` services the run queue inline.
    CurrentThread,
    /// This many dedicated worker threads.
    MultiThread(usize),
}

/// The runtime: a run queue, a timer heap, and zero or more workers.
pub struct Runtime {
    shared: Arc<Shared>,
    flavor: Flavor,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// A runtime with `workers` dedicated worker threads (min 1).
    pub fn multi_thread(workers: usize) -> Runtime {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            timers: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            timer_seq: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asyncx-worker-{i}"))
                    .spawn(move || {
                        let _enter = enter(Handle { shared: Arc::clone(&shared) });
                        while !shared.shutdown.load(Ordering::Acquire) {
                            shared.turn(true);
                        }
                    })
                    .expect("spawn asyncx worker")
            })
            .collect();
        Runtime { shared, flavor: Flavor::MultiThread(workers), workers: threads }
    }

    /// A single-threaded runtime: tasks run interleaved with the root
    /// future on the thread that calls [`Runtime::block_on`].
    pub fn current_thread() -> Runtime {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            timers: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            timer_seq: AtomicU64::new(0),
        });
        Runtime { shared, flavor: Flavor::CurrentThread, workers: Vec::new() }
    }

    /// This runtime's flavor.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// A cloneable [`Handle`] for spawning from outside the runtime.
    pub fn handle(&self) -> Handle {
        Handle { shared: Arc::clone(&self.shared) }
    }

    /// Drive `root` to completion on the calling thread.
    ///
    /// Multi-thread flavor: spawned tasks run on the workers; this
    /// thread only polls `root` and parks between its wakes.
    /// Current-thread flavor: this thread alternates between `root` and
    /// the run queue (and services the timer heap).
    pub fn block_on<F: Future>(&self, root: F) -> F::Output {
        let _enter = enter(self.handle());
        let root_wake = Arc::new(RootWaker {
            woken: AtomicBool::new(true),
            thread: std::thread::current(),
            shared: Arc::clone(&self.shared),
        });
        let waker = Waker::from(Arc::clone(&root_wake));
        let mut cx = Context::from_waker(&waker);
        let mut root = std::pin::pin!(root);
        loop {
            if root_wake.woken.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(v) = root.as_mut().poll(&mut cx) {
                    return v;
                }
            }
            match self.flavor {
                Flavor::CurrentThread => {
                    // Run one queued task; when idle, sleep until the
                    // next timer or a wake (the condvar is notified by
                    // enqueues and timer registrations; root wakes
                    // notify it too via RootWaker).
                    let ran = self.shared.turn(false);
                    if !ran && !root_wake.woken.load(Ordering::Acquire) {
                        let next = self.shared.fire_due_timers();
                        let guard = self
                            .shared
                            .queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if guard.is_empty() && !root_wake.woken.load(Ordering::Acquire) {
                            let timeout = next
                                .map(|d| d.saturating_duration_since(Instant::now()))
                                .unwrap_or(Duration::from_millis(50));
                            let _ = self
                                .shared
                                .cv
                                .wait_timeout(guard, timeout.min(Duration::from_millis(50)));
                        }
                    }
                }
                Flavor::MultiThread(_) => {
                    if !root_wake.woken.load(Ordering::Acquire) {
                        // Bounded park: a timer registered by the root
                        // future could otherwise be serviced late if
                        // every worker is mid-poll.
                        std::thread::park_timeout(Duration::from_millis(50));
                    }
                }
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Retire whatever never ran so task-held resources drop.
        self.shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.shared
            .timers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Wakes the `block_on` thread.
struct RootWaker {
    woken: AtomicBool,
    thread: std::thread::Thread,
    shared: Arc<Shared>,
}

impl Wake for RootWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        // Current-thread block_on sleeps on the runtime condvar;
        // multi-thread block_on parks the thread. Cover both.
        self.shared.cv.notify_all();
        self.thread.unpark();
    }
}

/// Yield once: re-schedule the current task at the back of the run
/// queue and return `Pending`. This is the async analogue of the
/// paper's *delay* between lock probes — it costs a task switch, not a
/// core.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future of [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Sleep for `duration` (timer-heap based; resolution is the workers'
/// park granularity, ~1 ms worst case on an idle runtime).
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Sleep until `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// Future of [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        // Re-register on every poll: timer entries are fire-once and
        // wakers may change between polls. A stale entry costs one
        // spurious wake, nothing more.
        let handle = Handle::current();
        handle.register_timer_at(self.deadline, cx.waker().clone());
        Poll::Pending
    }
}

/// Error of [`timeout`]: the deadline elapsed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Race `future` against a deadline. On timeout the future is dropped
/// mid-wait — exactly the cancellation path the async mutex must keep
/// safe (see `tests/proptest_async_cancel.rs`).
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout { sleep: sleep(duration), future }
}

/// Future of [`timeout`].
pub struct Timeout<F> {
    sleep: Sleep,
    future: F,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural projection; neither field is moved out.
        let this = unsafe { self.get_unchecked_mut() };
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(v) = future.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn both_flavors() -> [Runtime; 2] {
        [Runtime::current_thread(), Runtime::multi_thread(2)]
    }

    #[test]
    fn block_on_returns_the_root_value() {
        for rt in both_flavors() {
            assert_eq!(rt.block_on(async { 41 + 1 }), 42);
        }
    }

    #[test]
    fn spawned_tasks_run_and_join() {
        for rt in both_flavors() {
            let n = rt.block_on(async {
                let handles: Vec<_> = (0..8u64).map(|i| spawn(async move { i * 2 })).collect();
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                sum
            });
            assert_eq!(n, 56);
        }
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        for rt in both_flavors() {
            let counter = Arc::new(AtomicUsize::new(0));
            rt.block_on(async {
                let c = Arc::clone(&counter);
                let a = spawn(async move {
                    for _ in 0..100 {
                        c.fetch_add(1, Ordering::Relaxed);
                        yield_now().await;
                    }
                });
                let c = Arc::clone(&counter);
                let b = spawn(async move {
                    for _ in 0..100 {
                        c.fetch_add(1, Ordering::Relaxed);
                        yield_now().await;
                    }
                });
                a.await;
                b.await;
            });
            assert_eq!(counter.load(Ordering::Relaxed), 200);
        }
    }

    #[test]
    fn sleep_actually_sleeps() {
        for rt in both_flavors() {
            let t0 = Instant::now();
            rt.block_on(async {
                sleep(Duration::from_millis(20)).await;
            });
            assert!(t0.elapsed() >= Duration::from_millis(20));
        }
    }

    #[test]
    fn timeout_cancels_a_slow_future_and_passes_a_fast_one() {
        for rt in both_flavors() {
            let (slow, fast) = rt.block_on(async {
                let slow = timeout(Duration::from_millis(10), sleep(Duration::from_secs(30))).await;
                let fast = timeout(Duration::from_secs(30), async { 7 }).await;
                (slow, fast)
            });
            assert_eq!(slow, Err(Elapsed));
            assert_eq!(fast, Ok(7));
        }
    }

    #[test]
    fn task_panics_surface_at_the_join_point_not_in_the_worker() {
        for rt in both_flavors() {
            // The panic must not kill a worker: a second task spawned
            // after the panicking one still runs to completion, and
            // awaiting the panicked handle re-raises the payload.
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.block_on(async {
                    let doomed = spawn(async {
                        panic!("task body panic");
                    });
                    let healthy = spawn(async { 11 });
                    assert_eq!(healthy.await, 11, "worker survived the panic");
                    doomed.await
                })
            }));
            assert!(res.is_err(), "join must re-raise the task panic");
        }
    }

    #[test]
    fn wake_during_poll_reschedules_instead_of_losing_the_wake() {
        // A future that wakes itself and stays Pending exactly once: if
        // the mid-poll wake were lost, the task would hang and the join
        // below would never resolve.
        struct SelfWake {
            polls: usize,
        }
        impl Future for SelfWake {
            type Output = usize;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
                self.polls += 1;
                if self.polls < 3 {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                } else {
                    Poll::Ready(self.polls)
                }
            }
        }
        for rt in both_flavors() {
            let polls = rt.block_on(async { spawn(SelfWake { polls: 0 }).await });
            assert_eq!(polls, 3);
        }
    }

    #[test]
    fn handle_spawns_from_outside_the_runtime() {
        let rt = Runtime::multi_thread(1);
        let h = rt.handle().spawn(async { "out-of-band" });
        assert_eq!(rt.block_on(h), "out-of-band");
    }

    #[test]
    fn nested_block_on_restores_the_outer_handle() {
        let outer = Runtime::current_thread();
        let got = outer.block_on(async {
            let inner = Runtime::current_thread();
            let v = inner.block_on(async { 5 });
            // Back on the outer runtime: spawning must still work.
            let h = spawn(async move { v + 1 });
            h.await
        });
        assert_eq!(got, 6);
    }
}
