//! The async adaptive mutex: the paper's waiting-policy attribute set,
//! reformulated as **poll vs park**.
//!
//! On real threads the tradeoff is spin (keep the core, win short
//! holds) vs block (pay two context switches, win long holds). On an
//! executor the same fork reappears with different constants:
//!
//! * **poll** — retry the lock across *yields to the executor*. Each
//!   failed probe re-schedules the task at the back of the run queue
//!   (one task switch, no waker registration, no handoff protocol) and
//!   tries again next poll. The `spin` attribute is the re-poll budget;
//!   the `delay` attribute is a bounded synchronous pause
//!   (`spin_loop` hints) before each retry — the only true spinning
//!   left, useful exactly when the holder runs on another worker.
//! * **park** — push a waker node onto the lock's FIFO queue and go to
//!   sleep. A releaser *grants the lock directly* to the head waiter
//!   (the native mutex's direct handoff, with `Waker::wake` where
//!   `Thread::unpark` used to be) — the lock never appears free in
//!   between, so pollers cannot barge past a granted waiter.
//! * **timeout** — a parked waiter abandons its node when the `timeout`
//!   attribute elapses and retries as a fresh arrival, exactly like the
//!   native timed wait: the grant/abandon race on the node's status
//!   word has one winner.
//!
//! Which side wins is a measured property, so the same sampled feedback
//! loop as [`adaptive_native::AdaptiveMutex`] drives it: every
//! `sample_period`-th release observes the waiting count (and the
//! longest recent wait), feeds the pluggable policy
//! ([`BoxedNativePolicy`] — the *same* policy type the native mutex
//! takes), and applies its decision to the live attributes. Poisoning,
//! quarantine with exponential backoff, probation, and operator retune
//! all carry over unchanged, so one control plane manages both mutexes.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use adaptive_core::AdaptationPolicy;
use adaptive_native::{
    BoxedNativePolicy, FixedPolicy, LockHealth, MutexStats, NativeDecision, NativeObservation,
    NativeWaitingPolicy, Poisoned, SPIN_FOREVER,
};

use crate::rt;

/// Cap on the poll budget the default adaptive policy will grant
/// itself. An operator (or a fixed policy) may still install
/// [`SPIN_FOREVER`]; the cap only bounds *automatic* escalation, so a
/// misread sample cannot commit the lock to unbounded scheduler churn.
pub const POLL_BUDGET_CAP: u32 = 256;

/// Quarantine length in monitor samples: `8 << level`, like the native
/// mutex.
const QUARANTINE_BASE_TICKS: u64 = 8;
/// Cap on the quarantine backoff shift.
const QUARANTINE_MAX_SHIFT: u32 = 10;
/// Clean policy decisions required to forget past quarantines.
const PROBATION_DECIDES: u32 = 64;

/// Sentinel for "no timeout" in the `timeout_nanos` attribute.
const TIMEOUT_NONE: u64 = u64::MAX;

fn encode_timeout(t: Option<Duration>) -> u64 {
    match t {
        None => TIMEOUT_NONE,
        Some(d) => d.as_nanos().clamp(1, (TIMEOUT_NONE - 1) as u128) as u64,
    }
}

/// Waiter node status word values (same protocol as the native
/// parker's [`WaitNode`]: grant and abandon race on one CAS).
const WAITING: u32 = 0;
const GRANTED: u32 = 1;
const ABANDONED: u32 = 2;

/// One parked task's entry in the waiter queue.
struct Waiter {
    status: AtomicU32,
    waker: Mutex<Option<Waker>>,
}

impl Waiter {
    fn new() -> Waiter {
        Waiter { status: AtomicU32::new(WAITING), waker: Mutex::new(None) }
    }

    /// Store the current waker. Called by the waiting task on every
    /// poll *before* it re-checks `status`, pairing with the granter's
    /// status-then-waker order: whichever way the race falls, either
    /// the granter wakes the fresh waker or the waiter sees `GRANTED`.
    fn set_waker(&self, waker: &Waker) {
        let mut slot = self.waker.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match slot.as_ref() {
            Some(old) if old.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }

    /// Releaser side: `WAITING → GRANTED`, then wake. Returns `false`
    /// if the waiter abandoned first.
    fn try_grant(&self) -> bool {
        if self
            .status
            .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let waker = self
            .waker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Waiter side: `WAITING → ABANDONED` (timeout or cancellation).
    /// Returns `false` if a grant won the race — the caller owns the
    /// lock.
    fn try_abandon(&self) -> bool {
        self.status
            .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn is_granted(&self) -> bool {
        self.status.load(Ordering::Acquire) == GRANTED
    }
}

/// Live waiting-policy attributes (all runtime-mutable).
struct Attrs {
    /// Re-poll budget before parking; [`SPIN_FOREVER`] never parks.
    spin_limit: AtomicU32,
    /// Synchronous `spin_loop` hints before each in-poll retry.
    delay: AtomicU32,
    /// Park bound in nanoseconds; [`TIMEOUT_NONE`] = wait until granted.
    timeout_nanos: AtomicU64,
}

/// The sampled feedback loop's mutable half, behind a `try_lock` so a
/// release that loses the race simply skips its observation (same
/// single-observer discipline as the native mutex's busy flag).
struct Feedback {
    policy: BoxedNativePolicy,
    /// Monitor samples to swallow before adaptation resumes.
    quarantine_ticks: u64,
    /// Backoff level: next quarantine lasts `8 << level` samples.
    quarantine_level: u32,
    /// Clean decisions left until `quarantine_level` resets.
    probation: u32,
}

/// Counters (plain atomics: the async hot path is already a task-switch
/// affair, so striping would buy nothing measurable).
#[derive(Default)]
struct Counters {
    contended: AtomicU64,
    polls: AtomicU64,
    parked: AtomicU64,
    handoffs: AtomicU64,
    reconfigurations: AtomicU64,
    try_failures: AtomicU64,
    timeouts: AtomicU64,
    cancellations: AtomicU64,
    cancelled_grants: AtomicU64,
    poison_events: AtomicU64,
    poison_clears: AtomicU64,
    policy_panics: AtomicU64,
    quarantines: AtomicU64,
    heals: AtomicU64,
}

/// Counter snapshot of an [`AsyncAdaptiveMutex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncMutexStats {
    /// Total acquisitions (fast path + handoffs).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held on arrival.
    pub contended: u64,
    /// Re-poll probes (each cost one task switch).
    pub polls: u64,
    /// Times a task registered a waker and parked.
    pub parked: u64,
    /// Direct grants from a releaser to the head waiter.
    pub handoffs: u64,
    /// Attribute changes actually applied (live retunes included).
    pub reconfigurations: u64,
    /// Failed `try_lock` calls.
    pub try_failures: u64,
    /// Parked waits that hit the `timeout` attribute and retried.
    pub timeouts: u64,
    /// Lock futures dropped while waiting (cancelled mid-wait).
    pub cancellations: u64,
    /// Cancellations that raced a grant and had to re-release the lock.
    pub cancelled_grants: u64,
    /// Holders that panicked (poisoning the mutex).
    pub poison_events: u64,
    /// Successful [`AsyncAdaptiveMutex::clear_poison`] calls.
    pub poison_clears: u64,
    /// Policy `decide` panics (each triggers a quarantine).
    pub policy_panics: u64,
    /// Quarantines entered.
    pub quarantines: u64,
    /// Explicit heals.
    pub heals: u64,
}

impl AsyncMutexStats {
    /// Project onto the native [`MutexStats`] shape (the control
    /// plane's lingua franca). Async-only counters fold into their
    /// closest native meaning: `parked` keeps its name, re-polls have
    /// no native twin and are dropped, and the engine-zoo counters are
    /// zero (the async mutex has one engine).
    pub fn as_native(&self) -> MutexStats {
        MutexStats {
            acquisitions: self.acquisitions,
            contended: self.contended,
            parked: self.parked,
            handoffs: self.handoffs,
            reconfigurations: self.reconfigurations,
            try_failures: self.try_failures,
            timeouts: self.timeouts,
            poison_events: self.poison_events,
            poison_clears: self.poison_clears,
            policy_panics: self.policy_panics,
            quarantines: self.quarantines,
            heals: self.heals,
            algorithm_switches: 0,
            combined_ops: 0,
        }
    }
}

/// An async mutex whose waiting policy — poll budget, pre-retry delay,
/// park timeout — is retuned at runtime by a sampled-contention
/// feedback loop. See the module docs for the protocol.
pub struct AsyncAdaptiveMutex<T> {
    /// 0 = free, 1 = held. A granted handoff keeps it at 1.
    locked: AtomicU32,
    attrs: Attrs,
    /// Tasks currently waiting (polling or parked) — the monitor's
    /// `no-of-waiting-threads`, counted in tasks.
    waiters: AtomicU32,
    /// FIFO waker queue. The release path sets `locked = 0` only while
    /// holding this lock, and the park path re-tries the acquire while
    /// holding it, so a release and a park cannot miss each other.
    queue: Mutex<VecDeque<Arc<Waiter>>>,
    /// Serialized by the lock itself (bumped while held).
    acquisitions: AtomicU64,
    /// Monitor sampling period in acquisitions; `u64::MAX` disables.
    sample_period: u64,
    /// Longest contended wait (ns) since the last sample.
    max_wait: AtomicU64,
    feedback: Mutex<Feedback>,
    quarantined: AtomicBool,
    poisoned: AtomicBool,
    stats: Counters,
    value: UnsafeCell<T>,
}

// SAFETY: the value is only reachable through a guard, and a guard
// exists only while `locked` (or a granted handoff) proves exclusive
// ownership; everything else is atomics and mutexes.
unsafe impl<T: Send> Send for AsyncAdaptiveMutex<T> {}
unsafe impl<T: Send> Sync for AsyncAdaptiveMutex<T> {}

impl<T> AsyncAdaptiveMutex<T> {
    /// A mutex with the default adaptive policy ([`AsyncPollAdapt`])
    /// sampling every other release, starting from a 32-poll budget.
    pub fn new(value: T) -> AsyncAdaptiveMutex<T> {
        AsyncAdaptiveMutex::with_policy(value, Box::new(AsyncPollAdapt::default()), 2)
    }

    /// A mutex with a fixed poll budget (no adaptation): `0` parks on
    /// the first failed probe (*pure async wait*), [`SPIN_FOREVER`]
    /// never parks.
    pub fn with_poll_budget(value: T, budget: u32) -> AsyncAdaptiveMutex<T> {
        let m = AsyncAdaptiveMutex::with_policy(
            value,
            Box::new(FixedPolicy(NativeDecision::SetSpins(budget))),
            u64::MAX,
        );
        m.attrs.spin_limit.store(budget, Ordering::Relaxed);
        m
    }

    /// A mutex with an explicit policy and monitor sampling period
    /// (in acquisitions; `u64::MAX` disables sampling).
    pub fn with_policy(
        value: T,
        policy: BoxedNativePolicy,
        sample_period: u64,
    ) -> AsyncAdaptiveMutex<T> {
        AsyncAdaptiveMutex {
            locked: AtomicU32::new(0),
            attrs: Attrs {
                spin_limit: AtomicU32::new(32),
                delay: AtomicU32::new(0),
                timeout_nanos: AtomicU64::new(TIMEOUT_NONE),
            },
            waiters: AtomicU32::new(0),
            queue: Mutex::new(VecDeque::new()),
            acquisitions: AtomicU64::new(0),
            sample_period: sample_period.max(1),
            max_wait: AtomicU64::new(0),
            feedback: Mutex::new(Feedback {
                policy,
                quarantine_ticks: 0,
                quarantine_level: 0,
                probation: 0,
            }),
            quarantined: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            stats: Counters::default(),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock. The returned future is **cancellation-safe**:
    /// dropping it mid-wait abandons its queue node (or, if a grant
    /// raced the drop, re-releases the lock) — no waker is lost and no
    /// other waiter is stranded.
    ///
    /// # Panics
    ///
    /// The resolved guard panics at acquisition if the mutex is
    /// poisoned; use [`AsyncAdaptiveMutex::lock_checked`] to handle
    /// poison explicitly.
    pub fn lock(&self) -> LockFuture<'_, T> {
        LockFuture { inner: Acquire::new(self) }
    }

    /// Like [`AsyncAdaptiveMutex::lock`], but poison resolves to
    /// `Err(Poisoned)` carrying the guard instead of panicking.
    pub fn lock_checked(&self) -> LockCheckedFuture<'_, T> {
        LockCheckedFuture { inner: Acquire::new(self) }
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self) -> Option<AsyncMutexGuard<'_, T>> {
        if self.try_acquire() {
            Some(self.make_guard())
        } else {
            self.stats.try_failures.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    fn try_acquire(&self) -> bool {
        self.locked
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Build a guard for a lock we already own, charging the
    /// acquisition and deciding whether this release should sample.
    fn make_guard(&self) -> AsyncMutexGuard<'_, T> {
        // Plain load + store: serialized by the lock we hold.
        let n = self.acquisitions.load(Ordering::Relaxed) + 1;
        self.acquisitions.store(n, Ordering::Relaxed);
        let adapt = self.sample_period != u64::MAX && n.is_multiple_of(self.sample_period);
        AsyncMutexGuard { mutex: self, adapt }
    }

    /// Release the lock: grant it directly to the oldest live waiter,
    /// or mark it free. Setting `locked = 0` happens under the queue
    /// lock, which the park path also holds while re-trying its
    /// acquire — so a concurrent park either sees the free lock or is
    /// seen by the next release.
    fn release(&self) {
        loop {
            let next = {
                let mut q = self
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match q.pop_front() {
                    Some(w) => w,
                    None => {
                        self.locked.store(0, Ordering::Release);
                        return;
                    }
                }
            };
            // Grant outside the queue lock: `wake` may run arbitrary
            // executor code. An abandoned (timed-out / cancelled) node
            // just gets pruned here; try the next one.
            if next.try_grant() {
                self.stats.handoffs.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Run the sampled feedback loop once (called by a sampling
    /// release, after the lock is dropped).
    fn adapt(&self) {
        // Single-observer: a release that loses this race skips its
        // sample, same as the native busy flag.
        let Ok(mut fb) = self.feedback.try_lock() else { return };
        if fb.quarantine_ticks > 0 {
            fb.quarantine_ticks -= 1;
            if fb.quarantine_ticks == 0 {
                self.quarantined.store(false, Ordering::Release);
                fb.probation = PROBATION_DECIDES;
            }
            return;
        }
        let obs = NativeObservation {
            waiting: u64::from(self.waiters.load(Ordering::Relaxed)),
            max_wait_nanos: self.max_wait.swap(0, Ordering::Relaxed),
        };
        let decision = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fb.policy.decide(obs)
        }));
        match decision {
            Ok(d) => {
                if fb.probation > 0 {
                    fb.probation -= 1;
                    if fb.probation == 0 {
                        fb.quarantine_level = 0;
                    }
                }
                if let Some(d) = d {
                    self.apply(d);
                }
            }
            Err(_) => {
                self.stats.policy_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine_locked(&mut fb);
            }
        }
    }

    /// Apply a policy decision to the live attributes.
    fn apply(&self, decision: NativeDecision) {
        let changed = match decision {
            NativeDecision::PureSpin => self.store_spin(SPIN_FOREVER),
            NativeDecision::PureBlocking => self.store_spin(0),
            NativeDecision::SetSpins(k) => self.store_spin(k),
            NativeDecision::SetPolicy(p) => {
                let a = self.store_spin(p.spin);
                let b = self.store_delay(p.delay);
                let c = self.store_timeout(encode_timeout(p.timeout));
                a | b | c
            }
            // The async mutex has a single engine; an engine-migration
            // decision (from a policy shared with the native mutex) is
            // a no-op here, not an error.
            NativeDecision::SetAlgorithm(_) => false,
        };
        if changed {
            self.stats.reconfigurations.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn store_spin(&self, v: u32) -> bool {
        store_if_changed_u32(&self.attrs.spin_limit, v)
    }

    fn store_delay(&self, v: u32) -> bool {
        store_if_changed_u32(&self.attrs.delay, v)
    }

    fn store_timeout(&self, v: u64) -> bool {
        store_if_changed_u64(&self.attrs.timeout_nanos, v)
    }

    /// Snap to the safe endpoint (pure park) and disable adaptation for
    /// `8 << level` samples, doubling the backoff each time.
    pub fn quarantine(&self) {
        let mut fb = self
            .feedback
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.quarantine_locked(&mut fb);
    }

    fn quarantine_locked(&self, fb: &mut Feedback) {
        let shift = fb.quarantine_level.min(QUARANTINE_MAX_SHIFT);
        fb.quarantine_ticks = QUARANTINE_BASE_TICKS << shift;
        fb.quarantine_level = (fb.quarantine_level + 1).min(QUARANTINE_MAX_SHIFT);
        fb.probation = 0;
        self.quarantined.store(true, Ordering::Release);
        self.stats.quarantines.fetch_add(1, Ordering::Relaxed);
        if self.store_spin(0) {
            self.stats.reconfigurations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// End a quarantine immediately; adaptation resumes on probation.
    /// Returns whether one was in force.
    pub fn heal(&self) -> bool {
        let mut fb = self
            .feedback
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if fb.quarantine_ticks == 0 && !self.quarantined.load(Ordering::Acquire) {
            return false;
        }
        fb.quarantine_ticks = 0;
        fb.probation = PROBATION_DECIDES;
        self.quarantined.store(false, Ordering::Release);
        self.stats.heals.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Whether adaptation is currently suspended by a quarantine.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Whether a holder has panicked since the last clear.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Clear the poison flag; returns whether it was set.
    pub fn clear_poison(&self) -> bool {
        let was = self.poisoned.swap(false, Ordering::AcqRel);
        if was {
            self.stats.poison_clears.fetch_add(1, Ordering::Relaxed);
        }
        was
    }

    /// Install new waiting-policy attributes (operator retune; the
    /// feedback loop keeps adapting from here unless quarantined).
    pub fn set_waiting_policy(&self, policy: NativeWaitingPolicy) {
        let a = self.store_spin(policy.spin);
        let b = self.store_delay(policy.delay);
        let c = self.store_timeout(encode_timeout(policy.timeout));
        if a | b | c {
            self.stats.reconfigurations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current waiting-policy attributes.
    pub fn waiting_policy(&self) -> NativeWaitingPolicy {
        let t = self.attrs.timeout_nanos.load(Ordering::Relaxed);
        NativeWaitingPolicy {
            spin: self.attrs.spin_limit.load(Ordering::Relaxed),
            delay: self.attrs.delay.load(Ordering::Relaxed),
            timeout: (t != TIMEOUT_NONE).then(|| Duration::from_nanos(t)),
        }
    }

    /// Current poll budget (the `spin` attribute).
    pub fn spin_limit(&self) -> u32 {
        self.attrs.spin_limit.load(Ordering::Relaxed)
    }

    /// Tasks currently waiting (polling or parked).
    pub fn waiting_now(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Whether the lock is currently held (instantly stale).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed) != 0
    }

    /// Whether the parked-waiter queue is non-empty (instantly stale).
    pub fn has_queued_waiters(&self) -> bool {
        !self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AsyncMutexStats {
        let c = &self.stats;
        let r = |x: &AtomicU64| x.load(Ordering::Relaxed);
        AsyncMutexStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: r(&c.contended),
            polls: r(&c.polls),
            parked: r(&c.parked),
            handoffs: r(&c.handoffs),
            reconfigurations: r(&c.reconfigurations),
            try_failures: r(&c.try_failures),
            timeouts: r(&c.timeouts),
            cancellations: r(&c.cancellations),
            cancelled_grants: r(&c.cancelled_grants),
            poison_events: r(&c.poison_events),
            poison_clears: r(&c.poison_clears),
            policy_panics: r(&c.policy_panics),
            quarantines: r(&c.quarantines),
            heals: r(&c.heals),
        }
    }

    /// Liveness health in the shared [`LockHealth`] shape.
    pub fn health(&self) -> LockHealth {
        LockHealth {
            waiting: self.waiting_now(),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            handoffs: self.stats.handoffs.load(Ordering::Relaxed),
            locked: self.is_locked(),
            queued: self.has_queued_waiters(),
            poisoned: self.is_poisoned(),
            quarantined: self.is_quarantined(),
            policy_panics: self.stats.policy_panics.load(Ordering::Relaxed),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AsyncAdaptiveMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("AsyncAdaptiveMutex");
        d.field("spin_limit", &self.spin_limit());
        d.field("waiting", &self.waiting_now());
        match self.try_lock() {
            Some(g) => d.field("value", &*g).finish(),
            None => d.field("value", &"<locked>").finish(),
        }
    }
}

/// The shared acquisition state machine behind both lock futures.
struct Acquire<'a, T> {
    mutex: &'a AsyncAdaptiveMutex<T>,
    /// Re-polls consumed against the budget.
    polls: u32,
    /// Whether we are counted in `waiters` (and when we started).
    started: Option<Instant>,
    /// Our parked node, if we registered one.
    node: Option<Arc<Waiter>>,
    /// Park deadline from the `timeout` attribute, set at park time.
    deadline: Option<Instant>,
}

impl<'a, T> Acquire<'a, T> {
    fn new(mutex: &'a AsyncAdaptiveMutex<T>) -> Acquire<'a, T> {
        Acquire { mutex, polls: 0, started: None, node: None, deadline: None }
    }

    /// We own the lock: settle accounting and build the guard.
    fn acquired(&mut self) -> AsyncMutexGuard<'a, T> {
        self.node = None;
        self.deadline = None;
        if let Some(t0) = self.started.take() {
            let m = self.mutex;
            m.waiters.fetch_sub(1, Ordering::Relaxed);
            let waited = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            m.max_wait.fetch_max(waited, Ordering::Relaxed);
        }
        self.mutex.make_guard()
    }

    fn poll_acquire(&mut self, cx: &mut Context<'_>) -> Poll<AsyncMutexGuard<'a, T>> {
        let m = self.mutex;

        // A parked wait in progress: status word first (via the waker
        // protocol: store waker, then check).
        if let Some(node) = self.node.clone() {
            node.set_waker(cx.waker());
            if node.is_granted() {
                return Poll::Ready(self.acquired());
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    if node.try_abandon() {
                        // Timed out: retry as a fresh arrival with a
                        // fresh poll budget (the native timed path's
                        // abandon-and-return, made a retry because an
                        // async caller cannot be handed a timeout
                        // error from inside `lock()`).
                        m.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.node = None;
                        self.deadline = None;
                        self.polls = 0;
                    } else {
                        // The grant won the race: we own the lock.
                        return Poll::Ready(self.acquired());
                    }
                } else {
                    self.arm_timer(deadline, cx);
                    return Poll::Pending;
                }
            } else {
                return Poll::Pending;
            }
        }

        // Fast path.
        if m.try_acquire() {
            return Poll::Ready(self.acquired());
        }

        // Contended: count ourselves as a waiter once.
        if self.started.is_none() {
            self.started = Some(Instant::now());
            m.waiters.fetch_add(1, Ordering::Relaxed);
            m.stats.contended.fetch_add(1, Ordering::Relaxed);
        }

        // Poll phase: burn one re-poll if the budget allows.
        let spin_limit = m.attrs.spin_limit.load(Ordering::Relaxed);
        if self.polls < spin_limit {
            self.polls = self.polls.saturating_add(1);
            m.stats.polls.fetch_add(1, Ordering::Relaxed);
            // The bounded *synchronous* spin: `delay` hints, then one
            // retry before yielding. Pays off only when the holder
            // runs concurrently on another worker.
            let delay = m.attrs.delay.load(Ordering::Relaxed);
            for _ in 0..delay {
                std::hint::spin_loop();
            }
            if m.try_acquire() {
                return Poll::Ready(self.acquired());
            }
            // Yield: back of the run queue, retry next poll.
            cx.waker().wake_by_ref();
            return Poll::Pending;
        }

        // Park phase: publish a waker node. The queue lock serializes
        // us against the release path's `locked = 0`, so we re-try the
        // acquire under it — either we get the lock or the next
        // release sees our node.
        let node = Arc::new(Waiter::new());
        node.set_waker(cx.waker());
        {
            let mut q = m.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if m.try_acquire() {
                return Poll::Ready(self.acquired());
            }
            q.push_back(Arc::clone(&node));
        }
        m.stats.parked.fetch_add(1, Ordering::Relaxed);
        self.node = Some(node);
        let t = m.attrs.timeout_nanos.load(Ordering::Relaxed);
        if t != TIMEOUT_NONE {
            let deadline = Instant::now() + Duration::from_nanos(t);
            self.deadline = Some(deadline);
            self.arm_timer(deadline, cx);
        }
        Poll::Pending
    }

    /// Arrange a wake at `deadline` so the timeout is observed even
    /// though nobody grants us. Outside a runtime (manual polling)
    /// there is no timer to arm; the caller's own re-polls carry the
    /// deadline check instead.
    fn arm_timer(&self, deadline: Instant, cx: &mut Context<'_>) {
        if let Some(handle) = rt::Handle::try_current() {
            handle.register_timer_at(deadline, cx.waker().clone());
        }
    }
}

impl<T> Drop for Acquire<'_, T> {
    fn drop(&mut self) {
        let m = self.mutex;
        if let Some(node) = self.node.take() {
            if node.try_abandon() {
                // Cancelled while parked: the node stays queued and is
                // pruned by the next release. Nothing is owed.
                m.stats.cancellations.fetch_add(1, Ordering::Relaxed);
            } else {
                // A grant raced the drop (`select!` lost after the
                // handoff landed): we own a lock nobody will ever
                // guard — release it or every waiter behind us hangs.
                m.stats.cancelled_grants.fetch_add(1, Ordering::Relaxed);
                m.release();
            }
        } else if self.started.is_some() {
            m.stats.cancellations.fetch_add(1, Ordering::Relaxed);
        }
        if self.started.take().is_some() {
            m.waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Future of [`AsyncAdaptiveMutex::lock`].
pub struct LockFuture<'a, T> {
    inner: Acquire<'a, T>,
}

impl<'a, T> Future for LockFuture<'a, T> {
    type Output = AsyncMutexGuard<'a, T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: `Acquire` is not self-referential; we never move it.
        let this = unsafe { self.get_unchecked_mut() };
        match this.inner.poll_acquire(cx) {
            Poll::Ready(guard) => {
                assert!(
                    !guard.mutex.is_poisoned(),
                    "adaptive mutex poisoned: a holder panicked (use lock_checked to recover)"
                );
                Poll::Ready(guard)
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future of [`AsyncAdaptiveMutex::lock_checked`].
pub struct LockCheckedFuture<'a, T> {
    inner: Acquire<'a, T>,
}

impl<'a, T> Future for LockCheckedFuture<'a, T> {
    type Output = Result<AsyncMutexGuard<'a, T>, Poisoned<AsyncMutexGuard<'a, T>>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: as for `LockFuture`.
        let this = unsafe { self.get_unchecked_mut() };
        match this.inner.poll_acquire(cx) {
            Poll::Ready(guard) => Poll::Ready(if guard.mutex.is_poisoned() {
                Err(Poisoned::new(guard))
            } else {
                Ok(guard)
            }),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// RAII guard of an acquired [`AsyncAdaptiveMutex`]. May be held across
/// `.await` points (it is `Send` when `T` is).
pub struct AsyncMutexGuard<'a, T> {
    mutex: &'a AsyncAdaptiveMutex<T>,
    /// Whether this release runs the feedback loop.
    adapt: bool,
}

impl<T> Deref for AsyncMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> DerefMut for AsyncMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self`.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for AsyncMutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The critical section died mid-flight (the panic is
            // unwinding through the task): poison and release without
            // running the policy, exactly like the native guard.
            self.mutex.poisoned.store(true, Ordering::Release);
            self.mutex.stats.poison_events.fetch_add(1, Ordering::Relaxed);
            self.mutex.release();
        } else {
            self.mutex.release();
            if self.adapt {
                self.mutex.adapt();
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AsyncMutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// The default poll-vs-park policy: `simple-adapt` re-derived for poll
/// budgets.
///
/// The native crossover constants do not transfer — a parked *task*
/// costs a waker round-trip (~a queue push and a re-schedule), not two
/// context switches, while every re-poll costs a full task switch of
/// its own. So the budget moves in poll units: no waiters → widen
/// toward [`POLL_BUDGET_CAP`] (polling is winning); a short queue →
/// creep up; a deep queue → halve toward zero (park, the scheduler is
/// churning through pollers who cannot win).
pub struct AsyncPollAdapt {
    /// Queue depth up to which polling is still considered winnable.
    threshold: u64,
    /// Budget increment per favourable sample.
    step: u32,
    budget: u32,
}

impl AsyncPollAdapt {
    /// A policy with an explicit threshold and step.
    pub fn new(threshold: u64, step: u32) -> AsyncPollAdapt {
        AsyncPollAdapt { threshold, step, budget: 32 }
    }
}

impl Default for AsyncPollAdapt {
    fn default() -> AsyncPollAdapt {
        AsyncPollAdapt::new(3, 16)
    }
}

impl AdaptationPolicy<NativeObservation> for AsyncPollAdapt {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        let before = self.budget;
        if obs.waiting <= self.threshold {
            // Few (or no) waiters: polls usually win the next release.
            self.budget = self.budget.saturating_add(self.step).min(POLL_BUDGET_CAP);
        } else {
            // Deep queue: every poller burns a task switch per release;
            // collapse toward parking.
            self.budget /= 2;
            if self.budget < self.step {
                self.budget = 0;
            }
        }
        (self.budget != before).then_some(NativeDecision::SetSpins(self.budget))
    }

    fn name(&self) -> &'static str {
        "async-poll-adapt"
    }
}

/// Same store-if-different discipline as the native attribute cells.
fn store_if_changed_u32(cell: &AtomicU32, v: u32) -> bool {
    if cell.load(Ordering::Relaxed) == v {
        false
    } else {
        cell.store(v, Ordering::Relaxed);
        true
    }
}

fn store_if_changed_u64(cell: &AtomicU64, v: u64) -> bool {
    if cell.load(Ordering::Relaxed) == v {
        false
    } else {
        cell.store(v, Ordering::Relaxed);
        true
    }
}

// ---------------------------------------------------------------------
// Control-plane integration: the async mutex is a first-class target.
// ---------------------------------------------------------------------

impl<T: Send> adaptive_native::HealthProbe for AsyncAdaptiveMutex<T> {
    fn health(&self) -> LockHealth {
        AsyncAdaptiveMutex::health(self)
    }

    fn quarantine(&self) {
        AsyncAdaptiveMutex::quarantine(self);
    }

    fn nudge(&self) -> bool {
        // Acquire/release re-runs the grant path, rescuing any waiter
        // whose wake was lost; try_lock so a busy lock is left alone.
        match self.try_lock() {
            Some(guard) => {
                drop(guard);
                true
            }
            None => false,
        }
    }
}

impl<T: Send> adaptive_control::ControlTarget for AsyncAdaptiveMutex<T> {
    fn health(&self) -> LockHealth {
        AsyncAdaptiveMutex::health(self)
    }

    fn stats(&self) -> MutexStats {
        AsyncAdaptiveMutex::stats(self).as_native()
    }

    fn quarantine(&self) {
        AsyncAdaptiveMutex::quarantine(self);
    }

    fn heal(&self) -> bool {
        AsyncAdaptiveMutex::heal(self)
    }

    fn nudge(&self) -> bool {
        adaptive_native::HealthProbe::nudge(self)
    }

    fn clear_poison(&self) -> bool {
        AsyncAdaptiveMutex::clear_poison(self)
    }

    fn waiting_policy(&self) -> NativeWaitingPolicy {
        AsyncAdaptiveMutex::waiting_policy(self)
    }

    fn set_waiting_policy(&self, policy: NativeWaitingPolicy) {
        AsyncAdaptiveMutex::set_waiting_policy(self, policy);
    }

    fn algorithm(&self) -> adaptive_native::LockAlgorithm {
        // One engine: the waker-queue spin-park analogue.
        adaptive_native::LockAlgorithm::SpinPark
    }

    fn set_algorithm(&self, _algo: adaptive_native::LockAlgorithm) {
        // No engine zoo on the async side; an operator `set-algorithm`
        // is accepted and ignored (the health line still reports
        // spin-park), mirroring `NativeDecision::SetAlgorithm`.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::{self, Runtime};
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    struct NoopWake;
    impl Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }

    fn noop_cx_waker() -> Waker {
        Waker::from(Arc::new(NoopWake))
    }

    fn both_flavors() -> [Runtime; 2] {
        [Runtime::current_thread(), Runtime::multi_thread(2)]
    }

    #[test]
    fn uncontended_lock_resolves_immediately() {
        let rt = Runtime::current_thread();
        let m = AsyncAdaptiveMutex::new(5u32);
        rt.block_on(async {
            {
                let mut g = m.lock().await;
                *g += 1;
            }
            assert_eq!(*m.lock().await, 6);
        });
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_counter_loses_no_updates_on_both_flavors() {
        for rt in both_flavors() {
            let m = Arc::new(AsyncAdaptiveMutex::new(0u64));
            let (tasks, iters) = (8u64, 200u64);
            rt.block_on(async {
                let handles: Vec<_> = (0..tasks)
                    .map(|_| {
                        let m = Arc::clone(&m);
                        rt::spawn(async move {
                            for _ in 0..iters {
                                *m.lock().await += 1;
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.await;
                }
            });
            assert_eq!(*rt.block_on(m.lock()), tasks * iters);
            assert_eq!(m.waiting_now(), 0, "leaked waiter count");
            let s = m.stats();
            assert_eq!(s.acquisitions, tasks * iters + 1);
        }
    }

    #[test]
    fn pure_async_wait_parks_and_hands_off() {
        let rt = Runtime::multi_thread(2);
        let m = Arc::new(AsyncAdaptiveMutex::with_poll_budget(0u64, 0));
        rt.block_on(async {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    rt::spawn(async move {
                        for _ in 0..100 {
                            // Hold across a yield so other tasks must
                            // observe the lock held and park.
                            let mut g = m.lock().await;
                            *g += 1;
                            rt::yield_now().await;
                            drop(g);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.await;
            }
        });
        let s = m.stats();
        assert_eq!(*rt.block_on(m.lock()), 400);
        assert!(s.parked > 0, "budget 0 must park on contention");
        assert!(s.handoffs > 0, "parked waiters must be served by handoff");
        assert_eq!(s.polls, 0, "budget 0 must never re-poll");
    }

    #[test]
    fn adaptation_widens_budget_when_uncontended() {
        let rt = Runtime::current_thread();
        let m = AsyncAdaptiveMutex::new(());
        rt.block_on(async {
            for _ in 0..64 {
                drop(m.lock().await);
            }
        });
        assert!(
            m.spin_limit() > 32,
            "uncontended usage must widen the poll budget (got {})",
            m.spin_limit()
        );
        assert!(m.stats().reconfigurations > 0);
    }

    #[test]
    fn deep_queue_collapses_budget_toward_parking() {
        let mut policy = AsyncPollAdapt::default();
        // Feed it a storm of deep-queue samples.
        let mut last = None;
        for _ in 0..16 {
            if let Some(d) = policy.decide(NativeObservation { waiting: 12, max_wait_nanos: 0 }) {
                last = Some(d);
            }
        }
        assert_eq!(last, Some(NativeDecision::SetSpins(0)), "deep queue must end at pure park");
    }

    #[test]
    fn cancelled_wait_is_pruned_not_stranded() {
        // Deterministic manual-poll version of the select!-loses race:
        // a parked waiter is dropped *before* any grant.
        let m = Arc::new(AsyncAdaptiveMutex::with_poll_budget(0u32, 0));
        let g = m.try_lock().expect("uncontended");
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(m.lock());
        assert!(fut.as_mut().poll(&mut cx).is_pending(), "budget 0 parks immediately");
        assert_eq!(m.waiting_now(), 1);
        drop(fut); // cancelled while parked
        assert_eq!(m.waiting_now(), 0, "cancellation must uncount the waiter");
        drop(g); // release prunes the abandoned node, lock ends free
        assert!(m.try_lock().is_some(), "lock must be free after pruning");
        assert_eq!(m.stats().cancellations, 1);
    }

    #[test]
    fn grant_racing_cancellation_re_releases_the_lock() {
        // The nasty half of cancellation safety: the grant lands, THEN
        // the future is dropped without being polled. The drop must
        // re-release, or every later waiter hangs.
        let m = Arc::new(AsyncAdaptiveMutex::with_poll_budget(0u32, 0));
        let g = m.try_lock().expect("uncontended");
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(m.lock());
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        drop(g); // handoff: the parked node is GRANTED, lock stays held
        assert_eq!(m.stats().handoffs, 1);
        drop(fut); // never polled again — must release on drop
        assert!(m.try_lock().is_some(), "granted-but-dropped must free the lock");
        assert_eq!(m.stats().cancelled_grants, 1);
        assert_eq!(m.waiting_now(), 0);
    }

    #[test]
    fn poisoning_and_recovery() {
        let rt = Runtime::multi_thread(1);
        let m = Arc::new(AsyncAdaptiveMutex::new(0u32));
        let m2 = Arc::clone(&m);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.block_on(async move {
                let death = rt::spawn(async move {
                    let _g = m2.lock().await;
                    panic!("critical section dies");
                });
                death.await
            })
        }));
        assert!(res.is_err(), "join re-raises the holder's panic");
        assert!(m.is_poisoned(), "dying holder must poison");
        let recovered = rt.block_on(async {
            match m.lock_checked().await {
                Ok(_) => false,
                Err(poisoned) => {
                    let g = poisoned.into_inner();
                    drop(g);
                    m.clear_poison()
                }
            }
        });
        assert!(recovered);
        assert!(!m.is_poisoned());
        assert_eq!(m.stats().poison_events, 1);
        assert_eq!(m.stats().poison_clears, 1);
    }

    #[test]
    fn quarantine_snaps_to_pure_park_and_heals_on_command() {
        let m = AsyncAdaptiveMutex::new(());
        assert!(m.spin_limit() > 0);
        m.quarantine();
        assert!(m.is_quarantined());
        assert_eq!(m.spin_limit(), 0, "quarantine must snap to pure park");
        assert!(m.heal());
        assert!(!m.is_quarantined());
        assert!(!m.heal(), "second heal is a no-op");
        let s = m.stats();
        assert_eq!((s.quarantines, s.heals), (1, 1));
    }

    #[test]
    fn policy_panic_quarantines_the_lock() {
        struct Bomb;
        impl AdaptationPolicy<NativeObservation> for Bomb {
            type Decision = NativeDecision;
            fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
                panic!("policy dies");
            }
        }
        let rt = Runtime::current_thread();
        let m = AsyncAdaptiveMutex::with_policy((), Box::new(Bomb), 1);
        rt.block_on(async {
            drop(m.lock().await);
        });
        assert!(m.is_quarantined(), "a panicking policy must be quarantined");
        assert_eq!(m.stats().policy_panics, 1);
    }

    #[test]
    fn live_retune_changes_the_budget_under_load() {
        let m = AsyncAdaptiveMutex::with_poll_budget(0u32, 64);
        assert_eq!(m.spin_limit(), 64);
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        assert_eq!(m.spin_limit(), 0);
        assert_eq!(m.waiting_policy().spin, 0);
        m.set_waiting_policy(NativeWaitingPolicy {
            spin: 8,
            delay: 4,
            timeout: Some(Duration::from_micros(50)),
        });
        let p = m.waiting_policy();
        assert_eq!((p.spin, p.delay), (8, 4));
        assert_eq!(p.timeout, Some(Duration::from_micros(50)));
    }

    #[test]
    fn park_timeout_abandons_and_retries() {
        let rt = Runtime::multi_thread(2);
        let m = Arc::new(AsyncAdaptiveMutex::with_poll_budget(0u64, 0));
        m.set_waiting_policy(NativeWaitingPolicy {
            spin: 0,
            delay: 0,
            timeout: Some(Duration::from_millis(5)),
        });
        let hold = Duration::from_millis(40);
        let m2 = Arc::clone(&m);
        let m3 = Arc::clone(&m);
        rt.block_on(async move {
            let holder = rt::spawn(async move {
                let _g = m2.lock().await;
                // Hold synchronously well past several timeout windows.
                std::thread::sleep(hold);
            });
            // Give the holder a head start, then wait through timeouts.
            rt::sleep(Duration::from_millis(2)).await;
            let t0 = Instant::now();
            let _g = m3.lock().await;
            assert!(t0.elapsed() >= Duration::from_millis(20), "acquired before release?");
            drop(_g);
            holder.await;
        });
        assert!(m.stats().timeouts > 0, "bounded parks must have timed out and retried");
        assert_eq!(m.waiting_now(), 0);
    }

    #[test]
    fn control_target_round_trip() {
        use adaptive_control::ControlTarget;
        let m: Arc<AsyncAdaptiveMutex<Vec<u8>>> = Arc::new(AsyncAdaptiveMutex::new(vec![1]));
        let t: Arc<dyn ControlTarget> = m.clone();
        assert!(!t.health().locked);
        t.set_waiting_policy(NativeWaitingPolicy::pure_spin());
        assert_eq!(m.waiting_policy().spin, SPIN_FOREVER);
        t.quarantine();
        assert!(t.health().quarantined);
        assert!(t.heal());
        assert!(t.nudge());
        assert_eq!(t.algorithm(), adaptive_native::LockAlgorithm::SpinPark);
        t.set_algorithm(adaptive_native::LockAlgorithm::Ticket);
        assert_eq!(t.algorithm(), adaptive_native::LockAlgorithm::SpinPark, "no zoo: ignored");
        assert!(t.stats().acquisitions >= 1);
    }

    #[test]
    fn fairness_of_handoff_under_saturation() {
        // Pure-park mode is FIFO by construction: per-task op counts
        // under saturation must stay close.
        let rt = Runtime::multi_thread(2);
        let m = Arc::new(AsyncAdaptiveMutex::with_poll_budget((), 0));
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        rt.block_on(async {
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let m = Arc::clone(&m);
                    let counts = Arc::clone(&counts);
                    let stop = Arc::clone(&stop);
                    rt::spawn(async move {
                        while !stop.load(Ordering::Relaxed) {
                            let _g = m.lock().await;
                            counts[i].fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            rt::sleep(Duration::from_millis(50)).await;
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.await;
            }
        });
        let ops: Vec<usize> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let min = ops.iter().copied().min().unwrap_or(0);
        let max = ops.iter().copied().max().unwrap_or(0);
        assert!(min > 0, "a task starved entirely: {ops:?}");
        assert!(
            (max as f64) / (min as f64) < 50.0,
            "handoff fairness collapsed: {ops:?}"
        );
    }
}
