//! The three parallel TSP implementations of Section 4.
//!
//! * **Centralized** — one global work queue and one global best-tour
//!   value (both on node 0): consistent and optimally pruned, but every
//!   queue operation is a remote reference for 9 of 10 searchers and
//!   `qlock` is hot.
//! * **Distributed** — per-processor queues connected in a ring (steal
//!   from the next non-empty queue), per-processor best-tour copies
//!   propagated on improvement: mostly-local work, weaker ordering, some
//!   useless expansions.
//! * **Balanced** — distributed plus the paper's load-balancing rule:
//!   before taking work, move one subproblem from the next processor's
//!   queue into the local queue, then take the local best.
//!
//! Every implementation uses the paper's four locks: `qlock` (per
//! queue), `glob-act-lock` (active-searcher count), `glob-low-lock`
//! (best tour), and `globlock` (global bookkeeping).

use std::sync::Arc;

use adaptive_locks::{Lock, LockStats, PatternSample};
use butterfly_sim::{ctx, Duration, NodeId, ProcId, SimCell};
use cthreads::fork;

use crate::instance::TspInstance;
use crate::lmsk::{Expansion, SearchStats, SubProblem};
use crate::shared::{ActiveCounter, BestTour, LockImpl, WorkQueue};

/// Which shared-abstraction structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Global queue + global best value.
    Centralized,
    /// Ring of per-processor queues + per-processor best copies.
    Distributed,
    /// Distributed with the load-balancing take rule.
    Balanced,
}

impl Variant {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Centralized => "centralized",
            Variant::Distributed => "distributed",
            Variant::Balanced => "distributed+lb",
        }
    }

    /// All three variants, in the paper's order.
    pub const ALL: [Variant; 3] = [Variant::Centralized, Variant::Distributed, Variant::Balanced];
}

/// Tunables of a parallel TSP run.
#[derive(Debug, Clone)]
pub struct TspConfig {
    /// Number of searcher threads (one per processor, starting at 0).
    pub searchers: usize,
    /// Lock implementation backing all four lock roles.
    pub lock_impl: LockImpl,
    /// Simulated cost of expanding one matrix cell (node expansion is
    /// `O(alive^2)` matrix work).
    pub expand_ns_per_cell: u64,
    /// Simulated references charged per subproblem moved through a queue.
    pub transfer_refs: u32,
    /// Balanced only: how many subproblems the load-balancing rule pulls
    /// from the neighbor queue per take, in one batched transfer (one
    /// `qlock` cycle on each side instead of one per item).
    pub balance_batch: usize,
    /// How long an out-of-work searcher sleeps between re-checks.
    pub idle_backoff: Duration,
    /// Record locking patterns for `qlock` and `glob-act-lock`
    /// (Figures 4–9).
    pub trace_locks: bool,
}

impl Default for TspConfig {
    fn default() -> Self {
        TspConfig {
            searchers: 10,
            lock_impl: LockImpl::Blocking,
            // ~577 us per 32-city root-level expansion, matching the
            // paper's sequential-time-per-node on the GP1000.
            expand_ns_per_cell: 560,
            // The queue holds subproblem *pointers*; push/pop moves a
            // descriptor, not the matrix (which is read during the
            // charged expansion work).
            transfer_refs: 1,
            balance_batch: 1,
            idle_backoff: Duration::micros(300),
            trace_locks: false,
        }
    }
}

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Minimum tour cost found (must equal the sequential optimum for
    /// the centralized variant; the distributed variants also find the
    /// optimum — they only ever do *extra* work, never skip the best
    /// leaf).
    pub best: u32,
    /// Aggregated search statistics over all searchers.
    pub stats: SearchStats,
    /// Virtual time from fork to last join.
    pub elapsed: Duration,
    /// `qlock` locking pattern (all queues merged, time-ordered).
    pub qlock_trace: Vec<PatternSample>,
    /// `glob-act-lock` locking pattern.
    pub act_trace: Vec<PatternSample>,
    /// Merged `qlock` statistics.
    pub qlock_stats: LockStats,
    /// `glob-act-lock` statistics.
    pub act_stats: LockStats,
}

struct App {
    cfg: TspConfig,
    variant: Variant,
    queues: Vec<Arc<WorkQueue>>,
    qlocks: Vec<Arc<dyn Lock>>,
    /// Centralized: the single global value. Distributed: per-searcher
    /// local copies.
    best: Vec<Arc<BestTour>>,
    active: ActiveCounter,
    globlock: Arc<dyn Lock>,
    tours_found: SimCell<u64>,
}

impl App {
    fn queue_of(&self, me: usize) -> usize {
        if self.variant == Variant::Centralized {
            0
        } else {
            me
        }
    }

    fn read_best(&self, me: usize) -> u32 {
        let idx = if self.variant == Variant::Centralized { 0 } else { me };
        self.best[idx].read()
    }

    fn publish_best(&self, me: usize, cost: u32) {
        match self.variant {
            Variant::Centralized => {
                self.best[0].offer(cost);
            }
            _ => {
                // Update the local copy, then propagate around the ring.
                let s = self.best.len();
                for k in 0..s {
                    let idx = (me + k) % s;
                    let copy = &self.best[idx];
                    copy.lock.lock();
                    copy.force_min(cost);
                    copy.lock.unlock();
                }
            }
        }
    }

    fn push_work(&self, me: usize, sp: SubProblem) {
        let q = self.queue_of(me);
        self.qlocks[q].lock();
        self.queues[q].push(sp);
        self.qlocks[q].unlock();
    }

    /// Push several subproblems in one `qlock` critical section (both
    /// children of an expansion enter the queue together).
    fn push_work_batch(&self, me: usize, sps: Vec<SubProblem>) {
        if sps.is_empty() {
            return;
        }
        let q = self.queue_of(me);
        self.qlocks[q].lock();
        self.queues[q].push_batch(sps);
        self.qlocks[q].unlock();
    }

    fn pop_from(&self, q: usize) -> Option<SubProblem> {
        self.qlocks[q].lock();
        let sp = self.queues[q].pop();
        self.qlocks[q].unlock();
        sp
    }

    fn take_work(&self, me: usize) -> Option<SubProblem> {
        match self.variant {
            Variant::Centralized => self.pop_from(0),
            Variant::Distributed => {
                if let Some(sp) = self.pop_from(me) {
                    return Some(sp);
                }
                // Ring scan: first non-empty remote queue.
                let s = self.queues.len();
                for k in 1..s {
                    let q = (me + k) % s;
                    if !self.queues[q].looks_empty() {
                        if let Some(sp) = self.pop_from(q) {
                            return Some(sp);
                        }
                    }
                }
                None
            }
            Variant::Balanced => {
                // Load balancing: pull a batch of subproblems from the
                // next processor's queue into the local queue (one
                // `qlock` cycle per side), then take the local best.
                let s = self.queues.len();
                let next = (me + 1) % s;
                if s > 1 && !self.queues[next].looks_empty() {
                    let batch = {
                        self.qlocks[next].lock();
                        let batch = self.queues[next].pop_batch(self.cfg.balance_batch.max(1));
                        self.qlocks[next].unlock();
                        batch
                    };
                    if !batch.is_empty() {
                        self.push_work_batch(me, batch);
                    }
                }
                if let Some(sp) = self.pop_from(me) {
                    return Some(sp);
                }
                // Fall back to the ring scan.
                for k in 1..s {
                    let q = (me + k) % s;
                    if !self.queues[q].looks_empty() {
                        if let Some(sp) = self.pop_from(q) {
                            return Some(sp);
                        }
                    }
                }
                None
            }
        }
    }

    /// Any work visible anywhere? (charged probes)
    fn work_visible(&self) -> bool {
        self.queues.iter().any(|q| !q.looks_empty())
    }

    fn record_tour(&self) {
        self.globlock.lock();
        self.tours_found.update(|t| *t += 1);
        self.globlock.unlock();
    }
}

fn searcher(app: &App, me: usize) -> SearchStats {
    let mut stats = SearchStats::default();
    'outer: loop {
        match app.take_work(me) {
            Some(sp) => {
                if sp.bound >= app.read_best(me) {
                    stats.pruned += 1;
                    continue;
                }
                // The node expansion computation itself.
                ctx::advance(Duration::nanos(
                    app.cfg.expand_ns_per_cell * sp.work_cells(),
                ));
                stats.expanded += 1;
                match sp.expand() {
                    Expansion::Tour { cost, .. } => {
                        stats.tours += 1;
                        app.record_tour();
                        app.publish_best(me, cost);
                    }
                    Expansion::Children(children) => {
                        let best = app.read_best(me);
                        let mut batch = Vec::with_capacity(children.len());
                        for c in children {
                            if c.bound < best {
                                stats.generated += 1;
                                batch.push(c);
                            } else {
                                stats.pruned += 1;
                            }
                        }
                        app.push_work_batch(me, batch);
                    }
                    Expansion::Dead => {}
                }
            }
            None => {
                // Out of work: go inactive and wait for either new work
                // or global termination ("a searcher terminates when at
                // least one tour has been found and there is no more
                // node in the work queue").
                app.active.add(-1);
                loop {
                    if app.work_visible() {
                        app.active.add(1);
                        continue 'outer;
                    }
                    if app.active.read() == 0
                        && app.tours_found.read() > 0
                        && !app.work_visible()
                    {
                        break 'outer;
                    }
                    ctx::sleep(app.cfg.idle_backoff);
                }
            }
        }
    }
    stats
}

fn merged_trace(locks: &[Arc<dyn Lock>]) -> Vec<PatternSample> {
    let mut all: Vec<PatternSample> = locks.iter().flat_map(|l| l.take_trace()).collect();
    all.sort_by_key(|s| s.at);
    all
}

fn merged_stats(locks: &[Arc<dyn Lock>]) -> LockStats {
    locks.iter().map(|l| l.stats()).fold(LockStats::default(), |a, s| LockStats {
        acquisitions: a.acquisitions + s.acquisitions,
        contended: a.contended + s.contended,
        releases: a.releases + s.releases,
        handoffs: a.handoffs + s.handoffs,
        total_wait_nanos: a.total_wait_nanos + s.total_wait_nanos,
        max_waiting: a.max_waiting.max(s.max_waiting),
        reconfigurations: a.reconfigurations + s.reconfigurations,
    })
}

/// Run one parallel TSP solve. Must be called from inside a simulation
/// with at least `cfg.searchers` processors.
pub fn solve_parallel(inst: &TspInstance, variant: Variant, cfg: TspConfig) -> ParallelResult {
    assert!(cfg.searchers >= 1, "need at least one searcher");
    assert!(
        cfg.searchers <= ctx::num_processors(),
        "one searcher per processor: {} searchers > {} processors",
        cfg.searchers,
        ctx::num_processors()
    );
    let s = cfg.searchers;
    let home = NodeId(0);

    let (queues, qlocks): (Vec<_>, Vec<_>) = match variant {
        Variant::Centralized => (
            vec![Arc::new(WorkQueue::new(home, cfg.transfer_refs))],
            vec![cfg.lock_impl.build(home)],
        ),
        _ => (0..s)
            .map(|i| {
                (
                    Arc::new(WorkQueue::new(NodeId(i), cfg.transfer_refs)),
                    cfg.lock_impl.build(NodeId(i)),
                )
            })
            .unzip(),
    };

    let best = match variant {
        Variant::Centralized => vec![Arc::new(BestTour::new(home, cfg.lock_impl))],
        _ => (0..s)
            .map(|i| Arc::new(BestTour::new(NodeId(i), cfg.lock_impl)))
            .collect(),
    };

    let app = Arc::new(App {
        variant,
        queues,
        qlocks,
        best,
        active: ActiveCounter::new(home, cfg.lock_impl, s as i64),
        globlock: cfg.lock_impl.build(home),
        tours_found: SimCell::new_on(home, 0),
        cfg,
    });

    if app.cfg.trace_locks {
        for l in &app.qlocks {
            l.enable_tracing();
        }
        app.active.lock.enable_tracing();
    }

    // Seed the search: the main thread enqueues the root.
    let t0 = ctx::now();
    app.push_work(0, SubProblem::root(inst));

    // Fork one searcher per processor and wait for all of them.
    let handles: Vec<_> = (0..s)
        .map(|i| {
            let app = Arc::clone(&app);
            fork(ProcId(i), format!("searcher{i}"), move || searcher(&app, i))
        })
        .collect();
    let mut stats = SearchStats::default();
    for h in handles {
        let st = h.join();
        stats.expanded += st.expanded;
        stats.generated += st.generated;
        stats.tours += st.tours;
        stats.pruned += st.pruned;
    }
    let elapsed = ctx::now().since(t0);

    let best = app.best.iter().map(|b| b.peek()).min().expect("nonempty");
    debug_assert!(app.queues.iter().all(|q| q.peek_empty()));

    ParallelResult {
        best,
        stats,
        elapsed,
        qlock_trace: merged_trace(&app.qlocks),
        act_trace: app.active.lock.take_trace(),
        qlock_stats: merged_stats(&app.qlocks),
        act_stats: app.active.lock.stats(),
    }
}

/// The sequential baseline of Table 1, in virtual time: one processor,
/// no locks, a private heap — only the node-expansion work is charged.
/// Must be called inside a simulation.
pub fn solve_sequential_timed(
    inst: &TspInstance,
    expand_ns_per_cell: u64,
) -> (u32, SearchStats, Duration) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let t0 = ctx::now();
    let mut stats = SearchStats::default();
    let mut best = crate::instance::INF;
    let mut heap: BinaryHeap<Reverse<(u32, u64)>> = BinaryHeap::new();
    let mut store: Vec<Option<SubProblem>> = Vec::new();
    let root = SubProblem::root(inst);
    heap.push(Reverse((root.bound, 0)));
    store.push(Some(root));
    while let Some(Reverse((bound, id))) = heap.pop() {
        if bound >= best {
            stats.pruned += 1;
            continue;
        }
        let sp = store[id as usize].take().expect("taken twice");
        ctx::advance(Duration::nanos(expand_ns_per_cell * sp.work_cells()));
        stats.expanded += 1;
        match sp.expand() {
            Expansion::Tour { cost, .. } => {
                stats.tours += 1;
                best = best.min(cost);
            }
            Expansion::Children(children) => {
                for c in children {
                    if c.bound < best {
                        stats.generated += 1;
                        let id = store.len() as u64;
                        heap.push(Reverse((c.bound, id)));
                        store.push(Some(c));
                    } else {
                        stats.pruned += 1;
                    }
                }
            }
            Expansion::Dead => {}
        }
    }
    (best, stats, ctx::now().since(t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lmsk::solve_sequential;
    use butterfly_sim::{self as sim, SimConfig};

    fn run_variant(variant: Variant, lock_impl: LockImpl, n: usize, seed: u64) -> (u32, u32) {
        let inst = TspInstance::random_symmetric(n, 100, seed);
        let oracle = inst.held_karp();
        let cfg = TspConfig {
            searchers: 4,
            lock_impl,
            ..TspConfig::default()
        };
        let (res, _) = sim::run(SimConfig::butterfly(4), move || {
            solve_parallel(&inst, variant, cfg)
        })
        .unwrap();
        assert!(res.stats.expanded > 0);
        assert!(res.stats.tours >= 1);
        assert!(res.elapsed.as_nanos() > 0);
        (res.best, oracle)
    }

    #[test]
    fn centralized_finds_optimum() {
        for seed in [1, 2] {
            let (best, oracle) = run_variant(Variant::Centralized, LockImpl::Blocking, 9, seed);
            assert_eq!(best, oracle, "seed {seed}");
        }
    }

    #[test]
    fn distributed_finds_optimum() {
        for seed in [3, 4] {
            let (best, oracle) = run_variant(Variant::Distributed, LockImpl::Blocking, 9, seed);
            assert_eq!(best, oracle, "seed {seed}");
        }
    }

    #[test]
    fn balanced_finds_optimum() {
        for seed in [5, 6] {
            let (best, oracle) = run_variant(Variant::Balanced, LockImpl::Blocking, 9, seed);
            assert_eq!(best, oracle, "seed {seed}");
        }
    }

    #[test]
    fn balanced_with_batched_transfer_finds_optimum() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        let cfg = TspConfig {
            searchers: 4,
            lock_impl: LockImpl::Blocking,
            balance_batch: 3,
            ..TspConfig::default()
        };
        let (res, _) = sim::run(SimConfig::butterfly(4), move || {
            solve_parallel(&inst, Variant::Balanced, cfg)
        })
        .unwrap();
        assert_eq!(res.best, oracle);
    }

    #[test]
    fn adaptive_locks_find_optimum_too() {
        for variant in Variant::ALL {
            let (best, oracle) = run_variant(
                variant,
                LockImpl::Adaptive { threshold: 3, n: 5 },
                8,
                7,
            );
            assert_eq!(best, oracle, "{variant:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let inst = TspInstance::random_euclidean(10, 300, 17);
        let (seq_best, _) = solve_sequential(&inst);
        let inst2 = inst.clone();
        let (res, _) = sim::run(SimConfig::butterfly(4), move || {
            solve_parallel(
                &inst2,
                Variant::Centralized,
                TspConfig {
                    searchers: 4,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        assert_eq!(res.best, seq_best);
    }

    #[test]
    fn tracing_collects_patterns() {
        let inst = TspInstance::random_symmetric(9, 100, 9);
        let (res, _) = sim::run(SimConfig::butterfly(4), move || {
            solve_parallel(
                &inst,
                Variant::Centralized,
                TspConfig {
                    searchers: 4,
                    trace_locks: true,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        assert!(!res.qlock_trace.is_empty(), "qlock pattern must be recorded");
        assert!(!res.act_trace.is_empty(), "glob-act-lock pattern must be recorded");
        assert!(res.qlock_trace.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(res.qlock_stats.acquisitions > 0);
        assert!(res.act_stats.acquisitions > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let inst = TspInstance::random_symmetric(9, 100, 21);
            sim::run(SimConfig::butterfly(4), move || {
                let r = solve_parallel(
                    &inst,
                    Variant::Distributed,
                    TspConfig {
                        searchers: 4,
                        ..TspConfig::default()
                    },
                );
                (r.best, r.stats.expanded, r.elapsed)
            })
            .unwrap()
            .0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_searcher_degenerates_to_sequential_order() {
        let inst = TspInstance::random_symmetric(8, 100, 31);
        let (seq_best, _) = solve_sequential(&inst);
        let inst2 = inst.clone();
        let (res, _) = sim::run(SimConfig::butterfly(1), move || {
            solve_parallel(
                &inst2,
                Variant::Centralized,
                TspConfig {
                    searchers: 1,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        assert_eq!(res.best, seq_best);
    }
}
