//! TSP instances: seeded random fully-connected graphs (the paper's
//! experiments use a 32-city fully connected graph; the original
//! distance data is unpublished, so instances here are generated from a
//! seed) plus an exact Held–Karp solver used as the correctness oracle
//! for small instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// "Infinite" distance marker (safe against additive overflow).
pub const INF: u32 = u32::MAX / 4;

/// A fully connected TSP instance (distance matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspInstance {
    n: usize,
    dist: Vec<u32>,
}

impl TspInstance {
    /// Build from an explicit row-major distance matrix. Diagonal entries
    /// are forced to [`INF`] (no self-loops).
    ///
    /// # Panics
    ///
    /// Panics unless the matrix is `n x n` with `n >= 3`.
    pub fn from_matrix(n: usize, mut dist: Vec<u32>) -> TspInstance {
        assert!(n >= 3, "TSP needs at least 3 cities");
        assert_eq!(dist.len(), n * n, "distance matrix must be n*n");
        for i in 0..n {
            dist[i * n + i] = INF;
        }
        TspInstance { n, dist }
    }

    /// A seeded random symmetric instance with distances in
    /// `[1, max_dist]`.
    pub fn random_symmetric(n: usize, max_dist: u32, seed: u64) -> TspInstance {
        assert!(max_dist >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = rng.gen_range(1..=max_dist);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        TspInstance::from_matrix(n, dist)
    }

    /// A seeded random *Euclidean* instance: cities on a grid, distances
    /// rounded to integers. Euclidean structure gives branch-and-bound
    /// more pruning to exploit than uniform random distances.
    pub fn random_euclidean(n: usize, grid: u32, seed: u64) -> TspInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..grid) as f64,
                    rng.gen_range(0..grid) as f64,
                )
            })
            .collect();
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let dx = pts[i].0 - pts[j].0;
                    let dy = pts[i].1 - pts[j].1;
                    dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u32 + 1;
                }
            }
        }
        TspInstance::from_matrix(n, dist)
    }

    /// Number of cities.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `i` to `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> u32 {
        self.dist[i * self.n + j]
    }

    /// The flat row-major matrix.
    pub fn matrix(&self) -> &[u32] {
        &self.dist
    }

    /// Cost of a tour given as a city permutation (closing edge
    /// included).
    ///
    /// # Panics
    ///
    /// Panics unless `tour` is a permutation of `0..n`.
    pub fn tour_cost(&self, tour: &[usize]) -> u32 {
        assert_eq!(tour.len(), self.n, "tour must visit every city once");
        let mut seen = vec![false; self.n];
        for &c in tour {
            assert!(!seen[c], "tour repeats city {c}");
            seen[c] = true;
        }
        let mut cost = 0u32;
        for w in tour.windows(2) {
            cost += self.dist(w[0], w[1]);
        }
        cost + self.dist(tour[self.n - 1], tour[0])
    }

    /// Exact minimum tour cost by Held–Karp dynamic programming
    /// (`O(2^n * n^2)`; the correctness oracle for `n <= ~15`).
    ///
    /// # Panics
    ///
    /// Panics for `n > 20` (table would not fit in memory).
    pub fn held_karp(&self) -> u32 {
        let n = self.n;
        assert!(n <= 20, "Held-Karp oracle limited to 20 cities");
        let full = 1usize << (n - 1); // sets over cities 1..n
        let mut dp = vec![INF; full * (n - 1)];
        // dp[mask][j]: shortest path 0 -> ... -> j+1 visiting mask.
        for j in 0..(n - 1) {
            dp[(1 << j) * (n - 1) + j] = self.dist(0, j + 1);
        }
        for mask in 1..full {
            for j in 0..(n - 1) {
                if mask & (1 << j) == 0 {
                    continue;
                }
                let cur = dp[mask * (n - 1) + j];
                if cur >= INF {
                    continue;
                }
                for k in 0..(n - 1) {
                    if mask & (1 << k) != 0 {
                        continue;
                    }
                    let next = mask | (1 << k);
                    let cand = cur + self.dist(j + 1, k + 1);
                    let slot = &mut dp[next * (n - 1) + k];
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
        }
        let mut best = INF;
        for j in 0..(n - 1) {
            let c = dp[(full - 1) * (n - 1) + j] + self.dist(j + 1, 0);
            best = best.min(c);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_symmetric_is_symmetric_with_inf_diagonal() {
        let inst = TspInstance::random_symmetric(8, 100, 42);
        for i in 0..8 {
            assert_eq!(inst.dist(i, i), INF);
            for j in 0..8 {
                assert_eq!(inst.dist(i, j), inst.dist(j, i));
                if i != j {
                    assert!(inst.dist(i, j) >= 1 && inst.dist(i, j) <= 100);
                }
            }
        }
    }

    #[test]
    fn same_seed_same_instance() {
        assert_eq!(
            TspInstance::random_symmetric(10, 50, 7),
            TspInstance::random_symmetric(10, 50, 7)
        );
        assert_ne!(
            TspInstance::random_symmetric(10, 50, 7),
            TspInstance::random_symmetric(10, 50, 8)
        );
    }

    #[test]
    fn tour_cost_sums_edges() {
        // Triangle: 0-1=2, 1-2=3, 2-0=4.
        let inst = TspInstance::from_matrix(3, vec![0, 2, 4, 2, 0, 3, 4, 3, 0]);
        assert_eq!(inst.tour_cost(&[0, 1, 2]), 9);
        assert_eq!(inst.tour_cost(&[2, 1, 0]), 9);
    }

    #[test]
    #[should_panic(expected = "repeats city")]
    fn tour_cost_rejects_non_permutation() {
        let inst = TspInstance::random_symmetric(4, 10, 1);
        let _ = inst.tour_cost(&[0, 1, 1, 2]);
    }

    #[test]
    fn held_karp_matches_brute_force() {
        // Brute force over all permutations for n=7.
        let inst = TspInstance::random_symmetric(7, 100, 13);
        let n = inst.n();
        let mut cities: Vec<usize> = (1..n).collect();
        let mut best = u32::MAX;
        // Heap's algorithm over the tail, city 0 fixed.
        fn permute(inst: &TspInstance, cities: &mut Vec<usize>, k: usize, best: &mut u32) {
            if k == 1 {
                let mut tour = vec![0];
                tour.extend_from_slice(cities);
                *best = (*best).min(inst.tour_cost(&tour));
                return;
            }
            for i in 0..k {
                permute(inst, cities, k - 1, best);
                if k.is_multiple_of(2) {
                    cities.swap(i, k - 1);
                } else {
                    cities.swap(0, k - 1);
                }
            }
        }
        permute(&inst, &mut cities, n - 1, &mut best);
        assert_eq!(inst.held_karp(), best);
    }

    #[test]
    fn held_karp_on_euclidean() {
        let inst = TspInstance::random_euclidean(9, 1000, 5);
        let hk = inst.held_karp();
        assert!(hk > 0 && hk < INF);
        // Any concrete tour is an upper bound.
        let ident: Vec<usize> = (0..9).collect();
        assert!(hk <= inst.tour_cost(&ident));
    }
}
