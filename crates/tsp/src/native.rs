//! Native (OS-thread) parallel LMSK solver.
//!
//! The same branch-and-bound search as the simulator-side
//! [`solve_parallel`](crate::solve_parallel) in its centralized form —
//! a global best-first work queue and a global best tour — but on real
//! threads synchronized through [`adaptive_native::AdaptiveMutex`]. The
//! lock configuration ([`PolicyChoice`]) is the experiment's independent
//! variable, exactly as `LockImpl` is for the simulated solver, so the
//! perf pipeline can compare static and adaptive waiting policies on
//! the paper's actual application.
//!
//! Termination mirrors the simulated solver's protocol: an idle
//! searcher retires from the active count and polls; the search is over
//! when the queue is empty and no searcher is active (an inactive
//! searcher can never produce work, so emptiness is then stable).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use adaptive_native::{AdaptiveMutex, MutexStats, PolicyChoice};

use crate::instance::{TspInstance, INF};
use crate::lmsk::{Expansion, SearchStats, SubProblem};

/// Configuration of the native parallel solver.
#[derive(Debug, Clone, Copy)]
pub struct NativeTspConfig {
    /// Searcher threads.
    pub searchers: usize,
    /// Configuration of the two shared locks (work queue, best tour) —
    /// the independent variable of the TSP perf sweep.
    pub policy: PolicyChoice,
}

impl Default for NativeTspConfig {
    fn default() -> Self {
        NativeTspConfig {
            searchers: 4,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
        }
    }
}

/// Result of a native parallel run.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Optimal tour cost found.
    pub best: u32,
    /// Aggregated search statistics across all searchers.
    pub stats: SearchStats,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Counters of the work-queue lock (the paper's `qlock`).
    pub queue_lock: MutexStats,
    /// Counters of the best-tour lock (the paper's `globlock`).
    pub best_lock: MutexStats,
}

/// Queue entry ordered best-first: smallest bound first, FIFO within a
/// bound (via the global sequence number).
struct QItem {
    bound: u32,
    seq: u64,
    sp: SubProblem,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared {
    queue: AdaptiveMutex<BinaryHeap<QItem>>,
    best: AdaptiveMutex<u32>,
    stats: AdaptiveMutex<SearchStats>,
    /// Queue length mirror, readable without the lock (idle polling).
    qlen: AtomicUsize,
    /// Searchers currently holding or producing work.
    active: AtomicUsize,
    done: AtomicBool,
    seq: AtomicU64,
}

/// Solve `inst` on real threads. The result is exact: every searcher
/// prunes against the shared incumbent, and the search runs to
/// exhaustion.
pub fn solve_native(inst: &TspInstance, cfg: NativeTspConfig) -> NativeResult {
    let searchers = cfg.searchers.max(1);
    let root = SubProblem::root(inst);
    let mut heap = BinaryHeap::new();
    heap.push(QItem {
        bound: root.bound,
        seq: 0,
        sp: root,
    });
    let shared = Shared {
        queue: cfg.policy.build_mutex(heap),
        best: cfg.policy.build_mutex(INF),
        stats: cfg.policy.build_mutex(SearchStats::default()),
        qlen: AtomicUsize::new(1),
        active: AtomicUsize::new(searchers),
        done: AtomicBool::new(false),
        seq: AtomicU64::new(1),
    };

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..searchers {
            scope.spawn(|| searcher(&shared));
        }
    });
    let elapsed = t0.elapsed();

    let result = NativeResult {
        best: *shared.best.lock(),
        stats: *shared.stats.lock(),
        elapsed,
        queue_lock: shared.queue.stats(),
        best_lock: shared.best.stats(),
    };
    result
}

fn searcher(sh: &Shared) {
    let mut local = SearchStats::default();
    'outer: loop {
        let item = {
            let mut q = sh.queue.lock();
            let it = q.pop();
            sh.qlen.store(q.len(), Ordering::Release);
            it
        };
        let Some(item) = item else {
            // Retire from the active count; the last one out with an
            // empty queue ends the search.
            if sh.active.fetch_sub(1, Ordering::AcqRel) == 1
                && sh.qlen.load(Ordering::Acquire) == 0
            {
                sh.done.store(true, Ordering::Release);
            }
            loop {
                if sh.done.load(Ordering::Acquire) {
                    break 'outer;
                }
                if sh.qlen.load(Ordering::Acquire) > 0 {
                    sh.active.fetch_add(1, Ordering::AcqRel);
                    continue 'outer;
                }
                if sh.active.load(Ordering::Acquire) == 0 {
                    sh.done.store(true, Ordering::Release);
                    break 'outer;
                }
                std::thread::yield_now();
            }
        };

        if item.bound >= *sh.best.lock() {
            local.pruned += 1;
            continue;
        }
        local.expanded += 1;
        match item.sp.expand() {
            Expansion::Tour { cost, .. } => {
                local.tours += 1;
                let mut b = sh.best.lock();
                if cost < *b {
                    *b = cost;
                }
            }
            Expansion::Children(children) => {
                let incumbent = *sh.best.lock();
                let fresh: Vec<SubProblem> = children
                    .into_iter()
                    .filter(|c| {
                        if c.bound < incumbent {
                            local.generated += 1;
                            true
                        } else {
                            local.pruned += 1;
                            false
                        }
                    })
                    .collect();
                if !fresh.is_empty() {
                    let mut q = sh.queue.lock();
                    for sp in fresh {
                        q.push(QItem {
                            bound: sp.bound,
                            seq: sh.seq.fetch_add(1, Ordering::Relaxed),
                            sp,
                        });
                    }
                    sh.qlen.store(q.len(), Ordering::Release);
                }
            }
            Expansion::Dead => {}
        }
    }
    let mut agg = sh.stats.lock();
    agg.expanded += local.expanded;
    agg.generated += local.generated;
    agg.tours += local.tours;
    agg.pruned += local.pruned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_solver_matches_held_karp_across_policies() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        for policy in [
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
        ] {
            for searchers in [1, 4] {
                let res = solve_native(&inst, NativeTspConfig { searchers, policy });
                assert_eq!(res.best, oracle, "{} x{searchers}", policy.label());
                assert!(res.stats.expanded > 0);
                assert!(res.stats.tours >= 1);
            }
        }
    }

    #[test]
    fn native_solver_matches_the_simulated_solver() {
        let inst = TspInstance::random_euclidean(10, 500, 21);
        let (seq, _) = crate::solve_sequential(&inst);
        let res = solve_native(&inst, NativeTspConfig::default());
        assert_eq!(res.best, seq);
    }

    #[test]
    fn lock_traffic_is_observable() {
        let inst = TspInstance::random_symmetric(9, 100, 3);
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            },
        );
        // Every pop and push goes through the queue lock.
        assert!(res.queue_lock.acquisitions > res.stats.expanded);
        assert!(res.best_lock.acquisitions > 0);
    }
}
