//! Native (OS-thread) parallel LMSK solver.
//!
//! The same branch-and-bound search as the simulator-side
//! [`solve_parallel`](crate::solve_parallel), on real threads
//! synchronized through [`adaptive_native::AdaptiveMutex`], in all
//! three of the paper's program structures ([`NativeVariant`]):
//!
//! * **Centralized** — one global best-first work queue and one global
//!   best tour; every queue operation serializes on the single `qlock`.
//! * **Distributed** — one work queue per searcher connected in a ring:
//!   a searcher pops from its own queue and, when that is empty, scans
//!   the ring and *steals* a batch (the [`NativeTspConfig::transfer_refs`]
//!   knob) from the first non-empty remote queue. Each searcher keeps a
//!   local best-tour copy; improvements propagate around the ring under
//!   each copy's `glob-low-lock`.
//! * **Balanced** — distributed plus the load-balancing rule: when a
//!   push would grow the local queue past
//!   [`NativeTspConfig::balance_threshold`], part of the batch is pushed
//!   to the shorter of the two ring neighbors instead.
//!
//! The lock configuration ([`PolicyChoice`]) is the experiment's
//! independent variable, exactly as `LockImpl` is for the simulated
//! solver, so the perf pipeline can compare static and adaptive waiting
//! policies on the paper's actual application — and, with the variant
//! axis, reproduce its headline result: once the centralized `qlock` is
//! split into N mostly-local ones, contended acquisitions collapse.
//!
//! Termination mirrors the simulated solver's protocol, generalized to
//! many queues: an idle searcher retires from the active count and
//! polls the queue-length mirrors of *every* queue; the search is over
//! when all queues are empty and no searcher is active (an inactive
//! searcher can never produce work, and a stealing searcher is active,
//! so all-empty is then stable).
//!
//! ## Failure model
//!
//! Each searcher runs under a supervisor ([`searcher_resilient`]) that
//! catches panics escaping the search loop. A panic may poison the
//! shared locks (the holder died mid-critical-section) and may lose the
//! subproblems the searcher had in hand — the one being expanded, or a
//! whole stolen batch in transit between queues; the supervisor clears
//! the poison, resynchronizes the queue-length mirrors, and requeues
//! every in-flight subproblem under a bounded retry budget. Requeuing
//! can duplicate children that were already pushed before the panic —
//! branch-and-bound tolerates duplicates (they are pruned or re-expanded
//! to the same result), so exactness survives. A panic carrying the
//! [`WorkerKilled`] marker retires the worker permanently; its local
//! ring queue is *not* orphaned — the length mirrors keep its work
//! visible, idle peers reactivate and steal it through the ordinary
//! ring scan (counted in [`NativeResult::orphaned`]). If every worker
//! dies with work outstanding, the caller's thread drains the residue
//! of all queues sequentially, so `solve_native` still returns the
//! optimal tour when k < N (or even k = N) workers die.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_native::{
    AdaptiveMutex, CachePadded, FaultHook, FaultPlan, HealthProbe, MutexStats,
    NativeWaitingPolicy, PolicyChoice, Watchdog, WorkerKilled,
};

use crate::instance::{TspInstance, INF};
use crate::lmsk::{Expansion, SearchStats, SubProblem};

/// Which shared-abstraction structure the native solver uses — the
/// real-thread counterpart of the simulator's [`Variant`](crate::Variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeVariant {
    /// Global queue + global best value.
    Centralized,
    /// Ring of per-searcher queues + per-searcher best copies.
    Distributed,
    /// Distributed with the push-side load-balancing rule.
    Balanced,
}

impl NativeVariant {
    /// Label used in reports and BENCH JSON (matches the sim labels).
    pub fn label(self) -> &'static str {
        match self {
            NativeVariant::Centralized => "centralized",
            NativeVariant::Distributed => "distributed",
            NativeVariant::Balanced => "distributed+lb",
        }
    }

    /// All three structures, in the paper's order.
    pub const ALL: [NativeVariant; 3] = [
        NativeVariant::Centralized,
        NativeVariant::Distributed,
        NativeVariant::Balanced,
    ];
}

/// Mid-run waiting-policy reconfiguration plan: searcher 0 retunes every
/// shared lock (all `qlock`s and `glob-low-lock`s) to the next policy in
/// `cycle` each time it completes `every_steps` work items. This is the
/// native analogue of the stress harness's external reconfigurer — the
/// locks must stay correct while their attributes change under load.
#[derive(Debug, Clone)]
pub struct RetunePlan {
    /// Work items between retunes (0 disables the plan).
    pub every_steps: u64,
    /// Waiting policies applied round-robin.
    pub cycle: Vec<NativeWaitingPolicy>,
}

impl RetunePlan {
    /// The default stress cycle: pure spin → combined → pure blocking.
    pub fn full_cycle(every_steps: u64) -> RetunePlan {
        RetunePlan {
            every_steps,
            cycle: vec![
                NativeWaitingPolicy::pure_spin(),
                NativeWaitingPolicy::combined(64),
                NativeWaitingPolicy::pure_blocking(),
            ],
        }
    }
}

/// Configuration of the native parallel solver.
#[derive(Debug, Clone)]
pub struct NativeTspConfig {
    /// Searcher threads.
    pub searchers: usize,
    /// Which program structure to run.
    pub variant: NativeVariant,
    /// Configuration of the shared locks (work queues, best-tour
    /// copies) — the independent variable of the TSP perf sweep.
    pub policy: PolicyChoice,
    /// Subproblems moved per steal or balance transfer — the native
    /// analogue of the simulator's `transfer_refs` batching knob: a
    /// thief takes up to this many items from the victim's queue in one
    /// `qlock` critical section and keeps the surplus locally.
    pub transfer_refs: usize,
    /// Balanced only: a push that would grow the local queue beyond
    /// this length diverts part of the batch to the shorter ring
    /// neighbor.
    pub balance_threshold: usize,
    /// Fault plan to execute against this run (testing): critical-section
    /// panics, worker kills, and mutex-internal faults are drawn from it.
    /// `None` disables injection and its per-step overhead.
    pub faults: Option<Arc<FaultPlan>>,
    /// How many times a subproblem lost to a panic is requeued before it
    /// is dropped (the bounded retry budget).
    pub max_retries: u32,
    /// Optional mid-run waiting-policy reconfiguration (testing).
    pub retune: Option<RetunePlan>,
}

impl Default for NativeTspConfig {
    fn default() -> Self {
        NativeTspConfig {
            searchers: 4,
            variant: NativeVariant::Centralized,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            transfer_refs: 2,
            balance_threshold: 8,
            faults: None,
            max_retries: 3,
            retune: None,
        }
    }
}

/// Result of a native parallel run.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Optimal tour cost found.
    pub best: u32,
    /// Aggregated search statistics across all searchers.
    pub stats: SearchStats,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Per-queue `qlock` counters (one entry for Centralized, one per
    /// searcher for the distributed structures) — the contention
    /// collapse is visible here: a distributed queue is touched by its
    /// owner plus the occasional thief, so its contended count stays
    /// near zero while the centralized queue's grows with searchers.
    ///
    /// These are the only lock-counter snapshots taken per run (once,
    /// after the timed region, `O(stripes)` relaxed loads each); merged
    /// views are computed lazily by [`NativeResult::queue_lock`] /
    /// [`NativeResult::best_lock`] so consumers that only read timing
    /// fields never pay for aggregation.
    pub per_queue_locks: Vec<MutexStats>,
    /// Per-slot counters of the best-tour lock(s) (the paper's
    /// `glob-low-lock`; per-searcher copies in the distributed
    /// structures).
    pub per_best_locks: Vec<MutexStats>,
    /// Successful steals: ring scans that took at least one subproblem
    /// from a remote queue.
    pub steals: u64,
    /// Ring-scan probes that found an apparently non-empty remote queue
    /// empty under its lock (the mirror raced a concurrent pop).
    pub steal_failures: u64,
    /// Subproblems moved between queues: stolen batches plus
    /// load-balance diversions.
    pub transfers: u64,
    /// Load-balance events: pushes diverted to a ring neighbor because
    /// the local queue exceeded the balance threshold.
    pub balance_pushes: u64,
    /// Subproblems a permanently killed worker left in its local ring
    /// queue — work that the survivors must steal (or the caller must
    /// drain) for the search to stay exact.
    pub orphaned: u64,
    /// Panics caught by worker supervisors (transient and fatal).
    pub worker_panics: u64,
    /// Workers that died permanently ([`WorkerKilled`]).
    pub workers_died: u64,
    /// Subproblems requeued after a panic lost them mid-expansion or
    /// mid-steal.
    pub requeued: u64,
    /// Subproblems abandoned after exhausting the retry budget.
    pub dropped: u64,
    /// Times a supervisor cleared a poisoned shared lock.
    pub poison_recoveries: u64,
    /// Subproblems drained sequentially by the caller because every
    /// worker died with work outstanding.
    pub residual_drained: u64,
    /// Waiting-policy retunes applied by the [`RetunePlan`].
    pub retunes: u64,
}

impl NativeResult {
    /// Merged counters of the work-queue lock(s), folded lazily from
    /// [`NativeResult::per_queue_locks`]. Callers that only consume
    /// timing fields never trigger this aggregation.
    pub fn queue_lock(&self) -> MutexStats {
        merge_mutex_stats(self.per_queue_locks.iter())
    }

    /// Merged counters of the best-tour lock(s), folded lazily from
    /// [`NativeResult::per_best_locks`].
    pub fn best_lock(&self) -> MutexStats {
        merge_mutex_stats(self.per_best_locks.iter())
    }
}

/// Queue entry ordered best-first: smallest bound first, FIFO within a
/// bound (via the global sequence number).
struct QItem {
    bound: u32,
    seq: u64,
    /// How many times this subproblem has been requeued after a panic.
    attempts: u32,
    sp: SubProblem,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One work queue and its lock-free length mirror (readable without the
/// `qlock` for idle polling, ring scanning, and balance decisions).
struct QueueSlot {
    lock: Arc<AdaptiveMutex<BinaryHeap<QItem>>>,
    /// Cache-line padded: every idle searcher polls every ring slot's
    /// mirror, so a mirror write must invalidate one line per queue,
    /// not one line shared by several slots of the `Vec`.
    len: CachePadded<AtomicUsize>,
}

impl QueueSlot {
    fn new(policy: PolicyChoice) -> QueueSlot {
        QueueSlot {
            lock: Arc::new(policy.build_mutex(BinaryHeap::new())),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    fn mirror_len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// One best-tour copy: the `glob-low-lock` plus an unlocked read mirror
/// (the paper reads the incumbent without the lock; updates are locked
/// read-modify-writes).
struct BestSlot {
    lock: Arc<AdaptiveMutex<u32>>,
    /// Padded like [`QueueSlot::len`]: every expansion reads the
    /// incumbent mirror, and an improvement must not invalidate a
    /// neighbouring slot's copy.
    cached: CachePadded<AtomicU32>,
}

impl BestSlot {
    fn new(policy: PolicyChoice) -> BestSlot {
        BestSlot {
            lock: Arc::new(policy.build_mutex(INF)),
            cached: CachePadded::new(AtomicU32::new(INF)),
        }
    }
}

/// A subproblem currently in a searcher's hands — being expanded, or
/// part of a stolen batch in transit between queues. Held by the
/// supervisor so a panic cannot lose it.
struct InFlight {
    sp: SubProblem,
    attempts: u32,
}

struct Shared {
    variant: NativeVariant,
    queues: Vec<QueueSlot>,
    best: Vec<BestSlot>,
    stats: Arc<AdaptiveMutex<SearchStats>>,
    /// Searchers currently holding or producing work.
    active: AtomicUsize,
    done: AtomicBool,
    seq: AtomicU64,
    transfer_refs: usize,
    balance_threshold: usize,
    faults: Option<Arc<FaultPlan>>,
    steals: AtomicU64,
    steal_failures: AtomicU64,
    transfers: AtomicU64,
    balance_pushes: AtomicU64,
    orphaned: AtomicU64,
    worker_panics: AtomicU64,
    workers_died: AtomicU64,
    requeued: AtomicU64,
    dropped: AtomicU64,
    poison_recoveries: AtomicU64,
    retunes: AtomicU64,
}

impl Shared {
    /// The queue a searcher treats as local.
    fn home(&self, worker: usize) -> usize {
        if self.variant == NativeVariant::Centralized {
            0
        } else {
            worker % self.queues.len()
        }
    }

    /// Panic here if the fault plan says this critical section dies.
    /// Call only at points where the in-flight bookkeeping can recover
    /// (a popped subproblem is stashed before any injected panic).
    fn maybe_die_in_cs(&self) {
        if let Some(p) = &self.faults {
            p.maybe_panic_in_cs();
        }
    }

    /// Work visible anywhere, via the mirrors (no locks).
    fn work_visible(&self) -> bool {
        self.queues.iter().any(|q| q.mirror_len() > 0)
    }

    /// Read the incumbent visible to `worker` (unlocked mirror read).
    fn read_best(&self, worker: usize) -> u32 {
        let idx = if self.variant == NativeVariant::Centralized {
            0
        } else {
            worker % self.best.len()
        };
        self.best[idx].cached.load(Ordering::Acquire)
    }

    /// Publish an improved tour: update the local copy, then propagate
    /// around the ring — each copy's `glob-low-lock` is taken for the
    /// read-modify-write, and its unlocked mirror is refreshed inside
    /// the critical section.
    fn publish_best(&self, worker: usize, cost: u32) {
        let s = self.best.len();
        let start = if self.variant == NativeVariant::Centralized {
            0
        } else {
            worker % s
        };
        for k in 0..s {
            let slot = &self.best[(start + k) % s];
            let mut b = slot.lock.lock();
            self.maybe_die_in_cs();
            if cost < *b {
                *b = cost;
                slot.cached.store(cost, Ordering::Release);
            }
        }
    }

    /// Push one subproblem into queue `q`, refreshing the mirror.
    fn requeue(&self, q: usize, sp: SubProblem, attempts: u32) {
        let slot = &self.queues[q];
        let mut heap = slot.lock.lock();
        heap.push(QItem {
            bound: sp.bound,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            attempts,
            sp,
        });
        slot.len.store(heap.len(), Ordering::Release);
    }

    /// Push a batch of fresh children produced by `worker`, applying the
    /// Balanced diversion rule. The caller still holds the parent in its
    /// in-flight stash, so an injected panic inside the push critical
    /// section only re-expands the parent (duplicates are pruned).
    fn push_children(&self, worker: usize, mut batch: Vec<SubProblem>) {
        if batch.is_empty() {
            return;
        }
        let home = self.home(worker);
        let s = self.queues.len();
        if self.variant == NativeVariant::Balanced && s > 1 {
            let local_len = self.queues[home].mirror_len();
            if local_len + batch.len() > self.balance_threshold {
                // Divert up to one transfer batch to the shorter ring
                // neighbor, if it is actually shorter than us.
                let next = (home + 1) % s;
                let prev = (home + s - 1) % s;
                let target = if self.queues[next].mirror_len() <= self.queues[prev].mirror_len() {
                    next
                } else {
                    prev
                };
                if self.queues[target].mirror_len() < local_len {
                    let n = self.transfer_refs.clamp(1, batch.len());
                    let diverted: Vec<SubProblem> = batch.drain(..n).collect();
                    self.balance_pushes.fetch_add(1, Ordering::Relaxed);
                    self.transfers.fetch_add(n as u64, Ordering::Relaxed);
                    self.push_batch(target, diverted);
                    if batch.is_empty() {
                        return;
                    }
                }
            }
        }
        self.push_batch(home, batch);
    }

    /// Push `sps` into queue `q` in one `qlock` critical section.
    fn push_batch(&self, q: usize, sps: Vec<SubProblem>) {
        let slot = &self.queues[q];
        let mut heap = slot.lock.lock();
        self.maybe_die_in_cs();
        for sp in sps {
            heap.push(QItem {
                bound: sp.bound,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                attempts: 0,
                sp,
            });
        }
        slot.len.store(heap.len(), Ordering::Release);
    }

    /// Pop the best item of queue `q`. No fault injection here: the
    /// popped item exists only in the returned value until the caller
    /// stashes it.
    fn pop_local(&self, q: usize) -> Option<QItem> {
        let slot = &self.queues[q];
        let mut heap = slot.lock.lock();
        let it = heap.pop();
        slot.len.store(heap.len(), Ordering::Release);
        it
    }

    /// Steal up to `transfer_refs` subproblems from `victim` into the
    /// caller's in-flight stash (so a panic cannot lose them — they are
    /// stashed *inside* the critical section, before the injection
    /// point). Returns whether anything was taken.
    fn steal_from(&self, victim: usize, in_flight: &mut Vec<InFlight>) -> bool {
        let slot = &self.queues[victim];
        let mut heap = slot.lock.lock();
        let before = in_flight.len();
        for _ in 0..self.transfer_refs.max(1) {
            match heap.pop() {
                Some(it) => in_flight.push(InFlight {
                    sp: it.sp,
                    attempts: it.attempts,
                }),
                None => break,
            }
        }
        slot.len.store(heap.len(), Ordering::Release);
        let took = in_flight.len() - before;
        if took > 0 {
            self.maybe_die_in_cs();
            drop(heap);
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.transfers.fetch_add(took as u64, Ordering::Relaxed);
            true
        } else {
            self.steal_failures.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Move everything past `in_flight[0]` into queue `home` in one
    /// critical section. The injection point is *before* the stash is
    /// drained, so a die-in-CS panic here still finds every item in the
    /// stash and the supervisor requeues them all.
    fn bank_surplus(&self, home: usize, in_flight: &mut Vec<InFlight>) {
        if in_flight.len() <= 1 {
            return;
        }
        let slot = &self.queues[home];
        let mut heap = slot.lock.lock();
        self.maybe_die_in_cs();
        for f in in_flight.drain(1..) {
            heap.push(QItem {
                bound: f.sp.bound,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                attempts: f.attempts,
                sp: f.sp,
            });
        }
        slot.len.store(heap.len(), Ordering::Release);
    }

    /// Acquire the next work item for `worker`: on success the item is
    /// at `in_flight[0]` (stash semantics — the supervisor requeues
    /// whatever is in the stash if a panic strikes). Surplus stolen
    /// items are moved to the worker's local queue before returning.
    fn take_work(&self, worker: usize, in_flight: &mut Vec<InFlight>) -> bool {
        debug_assert!(in_flight.is_empty(), "previous item fully processed");
        let home = self.home(worker);
        if let Some(it) = self.pop_local(home) {
            in_flight.push(InFlight {
                sp: it.sp,
                attempts: it.attempts,
            });
            return true;
        }
        if self.variant == NativeVariant::Centralized {
            return false;
        }
        // Ring scan: steal a batch from the first non-empty remote
        // queue. The mirror probe is free; the steal itself locks the
        // victim's qlock once for the whole batch.
        let s = self.queues.len();
        for k in 1..s {
            let victim = (home + k) % s;
            if self.queues[victim].mirror_len() == 0 {
                continue;
            }
            if self.steal_from(victim, in_flight) {
                // Keep the best item in hand; bank the surplus locally.
                self.bank_surplus(home, in_flight);
                return true;
            }
        }
        false
    }

    /// Post-panic repair: clear poison left by the dead holder on any
    /// shared lock and resynchronize every queue-length mirror (the
    /// panic may have struck between a queue edit and the mirror store).
    fn recover_after_panic(&self) {
        for cleared in self
            .queues
            .iter()
            .map(|q| q.lock.clear_poison())
            .chain(self.best.iter().map(|b| b.lock.clear_poison()))
            .chain([self.stats.clear_poison()])
        {
            if cleared {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        for slot in &self.queues {
            let heap = slot.lock.lock();
            slot.len.store(heap.len(), Ordering::Release);
        }
    }

    /// Apply the next retune of `plan` to every shared lock.
    fn apply_retune(&self, plan: &RetunePlan, round: u64) {
        if plan.cycle.is_empty() {
            return;
        }
        let policy = plan.cycle[(round as usize) % plan.cycle.len()];
        for q in &self.queues {
            q.lock.set_waiting_policy(policy);
        }
        for b in &self.best {
            b.lock.set_waiting_policy(policy);
        }
        self.retunes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sum per-lock counters into one merged view.
fn merge_mutex_stats<'a>(stats: impl Iterator<Item = &'a MutexStats>) -> MutexStats {
    stats.fold(MutexStats::default(), |a, s| MutexStats {
        acquisitions: a.acquisitions + s.acquisitions,
        contended: a.contended + s.contended,
        parked: a.parked + s.parked,
        handoffs: a.handoffs + s.handoffs,
        reconfigurations: a.reconfigurations + s.reconfigurations,
        try_failures: a.try_failures + s.try_failures,
        timeouts: a.timeouts + s.timeouts,
        poison_events: a.poison_events + s.poison_events,
        poison_clears: a.poison_clears + s.poison_clears,
        policy_panics: a.policy_panics + s.policy_panics,
        quarantines: a.quarantines + s.quarantines,
        heals: a.heals + s.heals,
        algorithm_switches: a.algorithm_switches + s.algorithm_switches,
        combined_ops: a.combined_ops + s.combined_ops,
    })
}

/// Solve `inst` on real threads. The result is exact: every searcher
/// prunes against its visible incumbent (which only ever lags the true
/// one — extra work, never skipped work), and the search runs to
/// exhaustion of every queue — under fault injection, through requeue
/// and the residual drain (only an exhausted retry budget, counted in
/// [`NativeResult::dropped`], can compromise exactness).
pub fn solve_native(inst: &TspInstance, cfg: NativeTspConfig) -> NativeResult {
    let searchers = cfg.searchers.max(1);
    let queue_count = if cfg.variant == NativeVariant::Centralized {
        1
    } else {
        searchers
    };
    let best_count = queue_count;
    let shared = Shared {
        variant: cfg.variant,
        queues: (0..queue_count).map(|_| QueueSlot::new(cfg.policy)).collect(),
        best: (0..best_count).map(|_| BestSlot::new(cfg.policy)).collect(),
        stats: Arc::new(cfg.policy.build_mutex(SearchStats::default())),
        active: AtomicUsize::new(searchers),
        done: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        transfer_refs: cfg.transfer_refs.max(1),
        balance_threshold: cfg.balance_threshold,
        faults: cfg.faults.clone(),
        steals: AtomicU64::new(0),
        steal_failures: AtomicU64::new(0),
        transfers: AtomicU64::new(0),
        balance_pushes: AtomicU64::new(0),
        orphaned: AtomicU64::new(0),
        worker_panics: AtomicU64::new(0),
        workers_died: AtomicU64::new(0),
        requeued: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        poison_recoveries: AtomicU64::new(0),
        retunes: AtomicU64::new(0),
    };
    shared.requeue(0, SubProblem::root(inst), 0);

    // Under a fault plan, the mutexes themselves consult the plan
    // (dropped/delayed unparks, stalled monitor samples) and a watchdog
    // stands guard over stalls.
    let watchdog = cfg.faults.as_ref().map(|plan| {
        let mut dog = Watchdog::new();
        for (i, q) in shared.queues.iter().enumerate() {
            q.lock.set_fault_hook(Arc::clone(plan) as Arc<dyn FaultHook>);
            dog.watch(format!("tsp.queue{i}"), Arc::clone(&q.lock) as Arc<dyn HealthProbe>);
        }
        for (i, b) in shared.best.iter().enumerate() {
            b.lock.set_fault_hook(Arc::clone(plan) as Arc<dyn FaultHook>);
            dog.watch(format!("tsp.best{i}"), Arc::clone(&b.lock) as Arc<dyn HealthProbe>);
        }
        dog.spawn(Duration::from_millis(100))
    });

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..searchers {
            let sh = &shared;
            let max_retries = cfg.max_retries;
            let retune = cfg.retune.clone();
            scope.spawn(move || {
                searcher_resilient(sh, worker, searchers, max_retries, retune)
            });
        }
    });

    // Every worker died with work outstanding: finish the search here.
    // No injection on this path — it is the recovery of last resort.
    let mut residual_drained = 0u64;
    if !shared.done.load(Ordering::Acquire) && shared.work_visible() {
        residual_drained = drain_residual(&shared);
    }
    let elapsed = t0.elapsed();
    drop(watchdog); // stop and join before reading final stats

    let per_queue_locks: Vec<MutexStats> =
        shared.queues.iter().map(|q| q.lock.stats()).collect();
    let best = shared
        .best
        .iter()
        .map(|b| *b.lock.lock())
        .min()
        .unwrap_or(INF);
    let stats = *shared.stats.lock();
    NativeResult {
        best,
        stats,
        elapsed,
        per_best_locks: shared.best.iter().map(|b| b.lock.stats()).collect(),
        per_queue_locks,
        steals: shared.steals.load(Ordering::Relaxed),
        steal_failures: shared.steal_failures.load(Ordering::Relaxed),
        transfers: shared.transfers.load(Ordering::Relaxed),
        balance_pushes: shared.balance_pushes.load(Ordering::Relaxed),
        orphaned: shared.orphaned.load(Ordering::Relaxed),
        worker_panics: shared.worker_panics.load(Ordering::Relaxed),
        workers_died: shared.workers_died.load(Ordering::Relaxed),
        requeued: shared.requeued.load(Ordering::Relaxed),
        dropped: shared.dropped.load(Ordering::Relaxed),
        poison_recoveries: shared.poison_recoveries.load(Ordering::Relaxed),
        residual_drained,
        retunes: shared.retunes.load(Ordering::Relaxed),
    }
}

/// Supervisor wrapping [`searcher_loop`]: catches panics, repairs the
/// shared state, requeues lost work, and decides whether the worker
/// resumes (transient panic) or retires ([`WorkerKilled`]).
fn searcher_resilient(
    sh: &Shared,
    worker: usize,
    total: usize,
    max_retries: u32,
    retune: Option<RetunePlan>,
) {
    let doom = sh.faults.as_ref().and_then(|p| p.worker_doom(worker, total));
    let mut steps = 0u64;
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut local = SearchStats::default();
    // Whether the worker currently counts itself in `sh.active`; a death
    // in the idle loop (already retired) must not decrement again.
    let active = std::cell::Cell::new(true);
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            searcher_loop(
                sh,
                &mut in_flight,
                &mut local,
                &mut steps,
                &active,
                doom,
                worker,
                retune.as_ref(),
            )
        }));
        match outcome {
            Ok(()) => break, // clean termination
            Err(payload) => {
                sh.worker_panics.fetch_add(1, Ordering::Relaxed);
                sh.recover_after_panic();
                // Requeue everything the panic caught in our hands: the
                // item under expansion and/or a stolen batch in transit.
                let home = sh.home(worker);
                for lost in in_flight.drain(..) {
                    if lost.attempts < max_retries {
                        sh.requeue(home, lost.sp, lost.attempts + 1);
                        sh.requeued.fetch_add(1, Ordering::Relaxed);
                    } else {
                        sh.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if payload.is::<WorkerKilled>() {
                    sh.workers_died.fetch_add(1, Ordering::Relaxed);
                    // Whatever sits in our local ring queue is now
                    // orphaned: visible through the mirrors, stolen by
                    // peers or drained by the caller — never lost.
                    if sh.variant != NativeVariant::Centralized {
                        let left = sh.queues[home].mirror_len() as u64;
                        sh.orphaned.fetch_add(left, Ordering::Relaxed);
                    }
                    // Retire permanently. The requeue above ran first, so
                    // idle peers see the work before they see the retirement.
                    if active.get()
                        && sh.active.fetch_sub(1, Ordering::AcqRel) == 1
                        && !sh.work_visible()
                    {
                        sh.done.store(true, Ordering::Release);
                    }
                    break;
                }
                // Transient panic: the worker stays active and resumes.
            }
        }
    }
    let mut agg = sh.stats.lock();
    agg.expanded += local.expanded;
    agg.generated += local.generated;
    agg.tours += local.tours;
    agg.pruned += local.pruned;
}

#[allow(clippy::too_many_arguments)] // internal: the worker's full context
fn searcher_loop(
    sh: &Shared,
    in_flight: &mut Vec<InFlight>,
    local: &mut SearchStats,
    steps: &mut u64,
    active: &std::cell::Cell<bool>,
    doom: Option<u64>,
    worker: usize,
    retune: Option<&RetunePlan>,
) {
    'outer: loop {
        // A doomed worker dies here, between work items: no locks held,
        // nothing in flight.
        if doom.is_some_and(|after| *steps >= after) {
            std::panic::panic_any(WorkerKilled { worker });
        }
        if worker == 0 {
            if let Some(plan) = retune {
                if plan.every_steps > 0 && *steps > 0 && (*steps).is_multiple_of(plan.every_steps)
                {
                    sh.apply_retune(plan, *steps / plan.every_steps);
                }
            }
        }
        debug_assert!(in_flight.is_empty(), "previous item fully processed");
        if !sh.take_work(worker, in_flight) {
            // Retire from the active count; the last one out with every
            // queue empty ends the search.
            if sh.active.fetch_sub(1, Ordering::AcqRel) == 1 && !sh.work_visible() {
                sh.done.store(true, Ordering::Release);
            }
            active.set(false);
            loop {
                if sh.done.load(Ordering::Acquire) {
                    // A doomed worker never exits cleanly: if the search
                    // ended before its kill step, it dies at termination
                    // instead, so the doomed count is exact either way.
                    if doom.is_some() {
                        std::panic::panic_any(WorkerKilled { worker });
                    }
                    break 'outer;
                }
                if sh.work_visible() {
                    sh.active.fetch_add(1, Ordering::AcqRel);
                    active.set(true);
                    continue 'outer;
                }
                if sh.active.load(Ordering::Acquire) == 0 {
                    sh.done.store(true, Ordering::Release);
                    if doom.is_some() {
                        std::panic::panic_any(WorkerKilled { worker });
                    }
                    break 'outer;
                }
                std::thread::yield_now();
            }
        }
        // From here until the item is fully expanded it sits in the
        // in-flight stash; a panic anywhere below requeues it.
        let bound = in_flight[0].sp.bound;

        if bound >= sh.read_best(worker) {
            local.pruned += 1;
            in_flight.clear();
            *steps += 1;
            continue;
        }
        local.expanded += 1;
        match in_flight[0].sp.expand() {
            Expansion::Tour { cost, .. } => {
                local.tours += 1;
                if cost < sh.read_best(worker) {
                    sh.publish_best(worker, cost);
                }
            }
            Expansion::Children(children) => {
                let incumbent = sh.read_best(worker);
                let fresh: Vec<SubProblem> = children
                    .into_iter()
                    .filter(|c| {
                        if c.bound < incumbent {
                            local.generated += 1;
                            true
                        } else {
                            local.pruned += 1;
                            false
                        }
                    })
                    .collect();
                sh.push_children(worker, fresh);
            }
            Expansion::Dead => {}
        }
        in_flight.clear();
        *steps += 1;
    }
}

/// Sequential drain of whatever the (all-dead) workers left behind, on
/// the caller's thread, across every queue. Fault-free by construction.
/// Returns the number of items processed.
fn drain_residual(sh: &Shared) -> u64 {
    let mut local = SearchStats::default();
    let mut processed = 0u64;
    let s = sh.queues.len();
    'drain: loop {
        let mut item = None;
        for q in 0..s {
            if let Some(it) = sh.pop_local(q) {
                item = Some(it);
                break;
            }
        }
        let Some(item) = item else { break 'drain };
        processed += 1;
        if item.bound >= sh.read_best(0) {
            local.pruned += 1;
            continue;
        }
        local.expanded += 1;
        match item.sp.expand() {
            Expansion::Tour { cost, .. } => {
                local.tours += 1;
                if cost < sh.read_best(0) {
                    sh.publish_best(0, cost);
                }
            }
            Expansion::Children(children) => {
                let incumbent = sh.read_best(0);
                let fresh: Vec<SubProblem> = children
                    .into_iter()
                    .filter(|c| {
                        if c.bound < incumbent {
                            local.generated += 1;
                            true
                        } else {
                            local.pruned += 1;
                            false
                        }
                    })
                    .collect();
                sh.push_batch(0, fresh);
            }
            Expansion::Dead => {}
        }
    }
    sh.done.store(true, Ordering::Release);
    let mut agg = sh.stats.lock();
    agg.expanded += local.expanded;
    agg.generated += local.generated;
    agg.tours += local.tours;
    agg.pruned += local.pruned;
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::FaultSpec;

    #[test]
    fn native_solver_matches_held_karp_across_policies() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        for policy in [
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::Algorithm(adaptive_native::LockAlgorithm::Ticket),
            PolicyChoice::Algorithm(adaptive_native::LockAlgorithm::Queue),
            PolicyChoice::Algorithm(adaptive_native::LockAlgorithm::Combining),
            PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 },
        ] {
            for searchers in [1, 4] {
                let res = solve_native(
                    &inst,
                    NativeTspConfig {
                        searchers,
                        policy,
                        ..NativeTspConfig::default()
                    },
                );
                assert_eq!(res.best, oracle, "{} x{searchers}", policy.label());
                assert!(res.stats.expanded > 0);
                assert!(res.stats.tours >= 1);
                assert_eq!(res.worker_panics, 0);
            }
        }
    }

    #[test]
    fn all_three_structures_find_the_optimum() {
        let inst = TspInstance::random_symmetric(9, 100, 13);
        let oracle = inst.held_karp();
        for variant in NativeVariant::ALL {
            for searchers in [1, 2, 4] {
                let res = solve_native(
                    &inst,
                    NativeTspConfig {
                        searchers,
                        variant,
                        ..NativeTspConfig::default()
                    },
                );
                assert_eq!(res.best, oracle, "{} x{searchers}", variant.label());
                assert_eq!(
                    res.per_queue_locks.len(),
                    if variant == NativeVariant::Centralized { 1 } else { searchers },
                );
            }
        }
    }

    #[test]
    fn distributed_structures_steal_work_through_the_ring() {
        // The root seeds queue 0; every other searcher must steal to
        // participate at all. The instance needs a search tree that
        // outlasts a scheduler quantum on a single-core host (~1.7k
        // expansions here), or searcher 0 can finish the whole search
        // before the others ever run.
        let inst = TspInstance::random_euclidean(14, 500, 3);
        let (oracle, _) = crate::solve_sequential(&inst);
        for variant in [NativeVariant::Distributed, NativeVariant::Balanced] {
            let res = solve_native(
                &inst,
                NativeTspConfig {
                    searchers: 4,
                    variant,
                    transfer_refs: 2,
                    ..NativeTspConfig::default()
                },
            );
            assert_eq!(res.best, oracle, "{}", variant.label());
            assert!(res.steals > 0, "{}: ring steals must happen", variant.label());
            assert!(
                res.transfers >= res.steals,
                "{}: each steal moves >= 1 item",
                variant.label()
            );
        }
    }

    #[test]
    fn native_solver_matches_the_simulated_solver() {
        let inst = TspInstance::random_euclidean(10, 500, 21);
        let (seq, _) = crate::solve_sequential(&inst);
        let res = solve_native(&inst, NativeTspConfig::default());
        assert_eq!(res.best, seq);
    }

    #[test]
    fn lock_traffic_is_observable() {
        let inst = TspInstance::random_symmetric(9, 100, 3);
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
                ..NativeTspConfig::default()
            },
        );
        // Every pop and push goes through the queue lock.
        assert!(res.queue_lock().acquisitions > res.stats.expanded);
        assert!(res.best_lock().acquisitions > 0);
        assert_eq!(res.per_queue_locks.len(), 1);
        assert_eq!(
            res.per_queue_locks[0].acquisitions,
            res.queue_lock().acquisitions
        );
    }

    #[test]
    fn retune_plan_fires_mid_run() {
        let inst = TspInstance::random_euclidean(12, 500, 3);
        let oracle = inst.held_karp();
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                variant: NativeVariant::Distributed,
                retune: Some(RetunePlan::full_cycle(8)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle);
        assert!(res.retunes > 0, "the retune plan must actually fire");
    }

    #[test]
    fn solver_survives_cs_panics_exactly() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(17).with_cs_panics(32)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "exactness must survive CS panics");
        assert!(
            plan.report().cs_panics > 0,
            "the plan must actually have fired"
        );
        assert_eq!(res.worker_panics, plan.report().cs_panics);
        assert_eq!(res.dropped, 0, "retry budget must suffice at this rate");
        assert!(res.poison_recoveries > 0, "panics poison, supervisors clear");
    }

    #[test]
    fn solver_survives_worker_deaths_exactly() {
        // Large enough that every searcher participates long past the
        // doomed workers' kill steps.
        let inst = TspInstance::random_symmetric(11, 100, 5);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(23).with_worker_kills(50, 3)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "exactness must survive worker deaths");
        assert_eq!(res.workers_died, 2, "50% of 4 workers, exactly");
    }

    #[test]
    fn solver_survives_total_worker_loss_via_residual_drain() {
        let inst = TspInstance::random_symmetric(10, 100, 11);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(31).with_worker_kills(100, 1)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 3,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "the residual drain must finish the search");
        assert_eq!(res.workers_died, 3, "every worker dies");
        assert!(res.residual_drained > 0, "the caller drained the residue");
    }

    #[test]
    fn distributed_total_worker_loss_drains_every_queue() {
        let inst = TspInstance::random_symmetric(10, 100, 29);
        let oracle = inst.held_karp();
        for variant in [NativeVariant::Distributed, NativeVariant::Balanced] {
            let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(37).with_worker_kills(100, 2)));
            let res = solve_native(
                &inst,
                NativeTspConfig {
                    searchers: 3,
                    variant,
                    faults: Some(Arc::clone(&plan)),
                    ..NativeTspConfig::default()
                },
            );
            assert_eq!(res.best, oracle, "{}: residual drain over the ring", variant.label());
            assert_eq!(res.workers_died, 3);
        }
    }
}
