//! Native (OS-thread) parallel LMSK solver.
//!
//! The same branch-and-bound search as the simulator-side
//! [`solve_parallel`](crate::solve_parallel) in its centralized form —
//! a global best-first work queue and a global best tour — but on real
//! threads synchronized through [`adaptive_native::AdaptiveMutex`]. The
//! lock configuration ([`PolicyChoice`]) is the experiment's independent
//! variable, exactly as `LockImpl` is for the simulated solver, so the
//! perf pipeline can compare static and adaptive waiting policies on
//! the paper's actual application.
//!
//! Termination mirrors the simulated solver's protocol: an idle
//! searcher retires from the active count and polls; the search is over
//! when the queue is empty and no searcher is active (an inactive
//! searcher can never produce work, so emptiness is then stable).
//!
//! ## Failure model
//!
//! Each searcher runs under a supervisor ([`searcher_resilient`]) that
//! catches panics escaping the search loop. A panic may poison the
//! shared locks (the holder died mid-critical-section) and may lose the
//! subproblem the searcher was expanding; the supervisor clears the
//! poison, resynchronizes the queue-length mirror, and requeues the
//! in-flight subproblem under a bounded retry budget. Requeuing can
//! duplicate children that were already pushed before the panic —
//! branch-and-bound tolerates duplicates (they are pruned or re-expanded
//! to the same result), so exactness survives. A panic carrying the
//! [`WorkerKilled`] marker retires the worker permanently; any other
//! panic is treated as transient and the worker resumes. If every
//! worker dies with work outstanding, the caller's thread drains the
//! residue sequentially, so `solve_native` still returns the optimal
//! tour when k < N (or even k = N) workers die.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_native::{
    AdaptiveMutex, FaultHook, FaultPlan, HealthProbe, MutexStats, PolicyChoice, Watchdog,
    WorkerKilled,
};

use crate::instance::{TspInstance, INF};
use crate::lmsk::{Expansion, SearchStats, SubProblem};

/// Configuration of the native parallel solver.
#[derive(Debug, Clone)]
pub struct NativeTspConfig {
    /// Searcher threads.
    pub searchers: usize,
    /// Configuration of the two shared locks (work queue, best tour) —
    /// the independent variable of the TSP perf sweep.
    pub policy: PolicyChoice,
    /// Fault plan to execute against this run (testing): critical-section
    /// panics, worker kills, and mutex-internal faults are drawn from it.
    /// `None` disables injection and its per-step overhead.
    pub faults: Option<Arc<FaultPlan>>,
    /// How many times a subproblem lost to a panic is requeued before it
    /// is dropped (the bounded retry budget).
    pub max_retries: u32,
}

impl Default for NativeTspConfig {
    fn default() -> Self {
        NativeTspConfig {
            searchers: 4,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            faults: None,
            max_retries: 3,
        }
    }
}

/// Result of a native parallel run.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Optimal tour cost found.
    pub best: u32,
    /// Aggregated search statistics across all searchers.
    pub stats: SearchStats,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Counters of the work-queue lock (the paper's `qlock`).
    pub queue_lock: MutexStats,
    /// Counters of the best-tour lock (the paper's `globlock`).
    pub best_lock: MutexStats,
    /// Panics caught by worker supervisors (transient and fatal).
    pub worker_panics: u64,
    /// Workers that died permanently ([`WorkerKilled`]).
    pub workers_died: u64,
    /// Subproblems requeued after a panic lost them mid-expansion.
    pub requeued: u64,
    /// Subproblems abandoned after exhausting the retry budget.
    pub dropped: u64,
    /// Times a supervisor cleared a poisoned shared lock.
    pub poison_recoveries: u64,
    /// Subproblems drained sequentially by the caller because every
    /// worker died with work outstanding.
    pub residual_drained: u64,
}

/// Queue entry ordered best-first: smallest bound first, FIFO within a
/// bound (via the global sequence number).
struct QItem {
    bound: u32,
    seq: u64,
    /// How many times this subproblem has been requeued after a panic.
    attempts: u32,
    sp: SubProblem,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared {
    queue: Arc<AdaptiveMutex<BinaryHeap<QItem>>>,
    best: Arc<AdaptiveMutex<u32>>,
    stats: Arc<AdaptiveMutex<SearchStats>>,
    /// Queue length mirror, readable without the lock (idle polling).
    qlen: AtomicUsize,
    /// Searchers currently holding or producing work.
    active: AtomicUsize,
    done: AtomicBool,
    seq: AtomicU64,
    faults: Option<Arc<FaultPlan>>,
    worker_panics: AtomicU64,
    workers_died: AtomicU64,
    requeued: AtomicU64,
    dropped: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl Shared {
    /// Panic here if the fault plan says this critical section dies.
    /// Call only at points where the in-flight bookkeeping can recover
    /// (a popped subproblem is recorded before any injected panic).
    fn maybe_die_in_cs(&self) {
        if let Some(p) = &self.faults {
            p.maybe_panic_in_cs();
        }
    }

    /// Push one subproblem, mirroring the queue length.
    fn requeue(&self, sp: SubProblem, attempts: u32) {
        let mut q = self.queue.lock();
        q.push(QItem {
            bound: sp.bound,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            attempts,
            sp,
        });
        self.qlen.store(q.len(), Ordering::Release);
    }

    /// Post-panic repair: clear poison left by the dead holder and
    /// resynchronize the queue-length mirror (the panic may have struck
    /// between a queue edit and the mirror store).
    fn recover_after_panic(&self) {
        for cleared in [
            self.queue.clear_poison(),
            self.best.clear_poison(),
            self.stats.clear_poison(),
        ] {
            if cleared {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        let q = self.queue.lock();
        self.qlen.store(q.len(), Ordering::Release);
    }
}

/// Solve `inst` on real threads. The result is exact: every searcher
/// prunes against the shared incumbent, and the search runs to
/// exhaustion — under fault injection, through requeue and the residual
/// drain (only an exhausted retry budget, counted in
/// [`NativeResult::dropped`], can compromise exactness).
pub fn solve_native(inst: &TspInstance, cfg: NativeTspConfig) -> NativeResult {
    let searchers = cfg.searchers.max(1);
    let root = SubProblem::root(inst);
    let mut heap = BinaryHeap::new();
    heap.push(QItem {
        bound: root.bound,
        seq: 0,
        attempts: 0,
        sp: root,
    });
    let shared = Shared {
        queue: Arc::new(cfg.policy.build_mutex(heap)),
        best: Arc::new(cfg.policy.build_mutex(INF)),
        stats: Arc::new(cfg.policy.build_mutex(SearchStats::default())),
        qlen: AtomicUsize::new(1),
        active: AtomicUsize::new(searchers),
        done: AtomicBool::new(false),
        seq: AtomicU64::new(1),
        faults: cfg.faults.clone(),
        worker_panics: AtomicU64::new(0),
        workers_died: AtomicU64::new(0),
        requeued: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        poison_recoveries: AtomicU64::new(0),
    };

    // Under a fault plan, the mutexes themselves consult the plan
    // (dropped/delayed unparks, stalled monitor samples) and a watchdog
    // stands guard over stalls.
    let watchdog = cfg.faults.as_ref().map(|plan| {
        shared.queue.set_fault_hook(Arc::clone(plan) as Arc<dyn FaultHook>);
        shared.best.set_fault_hook(Arc::clone(plan) as Arc<dyn FaultHook>);
        let mut dog = Watchdog::new();
        dog.watch("tsp.queue", Arc::clone(&shared.queue) as Arc<dyn HealthProbe>);
        dog.watch("tsp.best", Arc::clone(&shared.best) as Arc<dyn HealthProbe>);
        dog.spawn(Duration::from_millis(100))
    });

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..searchers {
            let sh = &shared;
            let max_retries = cfg.max_retries;
            scope.spawn(move || searcher_resilient(sh, worker, searchers, max_retries));
        }
    });

    // Every worker died with work outstanding: finish the search here.
    // No injection on this path — it is the recovery of last resort.
    let mut residual_drained = 0u64;
    if !shared.done.load(Ordering::Acquire) && shared.qlen.load(Ordering::Acquire) > 0 {
        residual_drained = drain_residual(&shared);
    }
    let elapsed = t0.elapsed();
    drop(watchdog); // stop and join before reading final stats

    let result = NativeResult {
        best: *shared.best.lock(),
        stats: *shared.stats.lock(),
        elapsed,
        queue_lock: shared.queue.stats(),
        best_lock: shared.best.stats(),
        worker_panics: shared.worker_panics.load(Ordering::Relaxed),
        workers_died: shared.workers_died.load(Ordering::Relaxed),
        requeued: shared.requeued.load(Ordering::Relaxed),
        dropped: shared.dropped.load(Ordering::Relaxed),
        poison_recoveries: shared.poison_recoveries.load(Ordering::Relaxed),
        residual_drained,
    };
    result
}

/// The subproblem a searcher is currently expanding, held by the
/// supervisor so a panic mid-expansion cannot lose it.
struct InFlight {
    sp: SubProblem,
    attempts: u32,
}

/// Supervisor wrapping [`searcher_loop`]: catches panics, repairs the
/// shared state, requeues lost work, and decides whether the worker
/// resumes (transient panic) or retires ([`WorkerKilled`]).
fn searcher_resilient(sh: &Shared, worker: usize, total: usize, max_retries: u32) {
    let doom = sh.faults.as_ref().and_then(|p| p.worker_doom(worker, total));
    let mut steps = 0u64;
    let mut in_flight: Option<InFlight> = None;
    let mut local = SearchStats::default();
    // Whether the worker currently counts itself in `sh.active`; a death
    // in the idle loop (already retired) must not decrement again.
    let active = std::cell::Cell::new(true);
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            searcher_loop(sh, &mut in_flight, &mut local, &mut steps, &active, doom, worker)
        }));
        match outcome {
            Ok(()) => break, // clean termination
            Err(payload) => {
                sh.worker_panics.fetch_add(1, Ordering::Relaxed);
                sh.recover_after_panic();
                if let Some(lost) = in_flight.take() {
                    if lost.attempts < max_retries {
                        sh.requeue(lost.sp, lost.attempts + 1);
                        sh.requeued.fetch_add(1, Ordering::Relaxed);
                    } else {
                        sh.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if payload.is::<WorkerKilled>() {
                    sh.workers_died.fetch_add(1, Ordering::Relaxed);
                    // Retire permanently. The requeue above ran first, so
                    // idle peers see the work before they see the retirement.
                    if active.get()
                        && sh.active.fetch_sub(1, Ordering::AcqRel) == 1
                        && sh.qlen.load(Ordering::Acquire) == 0
                    {
                        sh.done.store(true, Ordering::Release);
                    }
                    break;
                }
                // Transient panic: the worker stays active and resumes.
            }
        }
    }
    let mut agg = sh.stats.lock();
    agg.expanded += local.expanded;
    agg.generated += local.generated;
    agg.tours += local.tours;
    agg.pruned += local.pruned;
}

fn searcher_loop(
    sh: &Shared,
    in_flight: &mut Option<InFlight>,
    local: &mut SearchStats,
    steps: &mut u64,
    active: &std::cell::Cell<bool>,
    doom: Option<u64>,
    worker: usize,
) {
    'outer: loop {
        // A doomed worker dies here, between work items: no locks held,
        // nothing in flight.
        if doom.is_some_and(|after| *steps >= after) {
            std::panic::panic_any(WorkerKilled { worker });
        }
        debug_assert!(in_flight.is_none(), "previous item fully processed");
        let item = {
            let mut q = sh.queue.lock();
            let it = q.pop();
            sh.qlen.store(q.len(), Ordering::Release);
            it
        };
        let Some(item) = item else {
            // Retire from the active count; the last one out with an
            // empty queue ends the search.
            if sh.active.fetch_sub(1, Ordering::AcqRel) == 1
                && sh.qlen.load(Ordering::Acquire) == 0
            {
                sh.done.store(true, Ordering::Release);
            }
            active.set(false);
            loop {
                if sh.done.load(Ordering::Acquire) {
                    // A doomed worker never exits cleanly: if the search
                    // ended before its kill step, it dies at termination
                    // instead, so the doomed count is exact either way.
                    if doom.is_some() {
                        std::panic::panic_any(WorkerKilled { worker });
                    }
                    break 'outer;
                }
                if sh.qlen.load(Ordering::Acquire) > 0 {
                    sh.active.fetch_add(1, Ordering::AcqRel);
                    active.set(true);
                    continue 'outer;
                }
                if sh.active.load(Ordering::Acquire) == 0 {
                    sh.done.store(true, Ordering::Release);
                    if doom.is_some() {
                        std::panic::panic_any(WorkerKilled { worker });
                    }
                    break 'outer;
                }
                std::thread::yield_now();
            }
        };
        // From here until the item is fully expanded, a panic loses it:
        // park it with the supervisor.
        *in_flight = Some(InFlight {
            sp: item.sp,
            attempts: item.attempts,
        });
        let sp = &in_flight
            .as_ref()
            .expect("stored on the previous line")
            .sp;

        let pruned = {
            let b = sh.best.lock();
            sh.maybe_die_in_cs();
            item.bound >= *b
        };
        if pruned {
            local.pruned += 1;
            *in_flight = None;
            *steps += 1;
            continue;
        }
        local.expanded += 1;
        match sp.expand() {
            Expansion::Tour { cost, .. } => {
                local.tours += 1;
                let mut b = sh.best.lock();
                sh.maybe_die_in_cs();
                if cost < *b {
                    *b = cost;
                }
            }
            Expansion::Children(children) => {
                let incumbent = *sh.best.lock();
                let fresh: Vec<SubProblem> = children
                    .into_iter()
                    .filter(|c| {
                        if c.bound < incumbent {
                            local.generated += 1;
                            true
                        } else {
                            local.pruned += 1;
                            false
                        }
                    })
                    .collect();
                if !fresh.is_empty() {
                    let mut q = sh.queue.lock();
                    sh.maybe_die_in_cs();
                    for sp in fresh {
                        q.push(QItem {
                            bound: sp.bound,
                            seq: sh.seq.fetch_add(1, Ordering::Relaxed),
                            attempts: 0,
                            sp,
                        });
                    }
                    sh.qlen.store(q.len(), Ordering::Release);
                }
            }
            Expansion::Dead => {}
        }
        *in_flight = None;
        *steps += 1;
    }
}

/// Sequential drain of whatever the (all-dead) workers left behind, on
/// the caller's thread. Fault-free by construction. Returns the number
/// of items processed.
fn drain_residual(sh: &Shared) -> u64 {
    let mut local = SearchStats::default();
    let mut processed = 0u64;
    loop {
        let item = {
            let mut q = sh.queue.lock();
            let it = q.pop();
            sh.qlen.store(q.len(), Ordering::Release);
            it
        };
        let Some(item) = item else { break };
        processed += 1;
        if item.bound >= *sh.best.lock() {
            local.pruned += 1;
            continue;
        }
        local.expanded += 1;
        match item.sp.expand() {
            Expansion::Tour { cost, .. } => {
                local.tours += 1;
                let mut b = sh.best.lock();
                if cost < *b {
                    *b = cost;
                }
            }
            Expansion::Children(children) => {
                let incumbent = *sh.best.lock();
                for c in children {
                    if c.bound < incumbent {
                        local.generated += 1;
                        let mut q = sh.queue.lock();
                        q.push(QItem {
                            bound: c.bound,
                            seq: sh.seq.fetch_add(1, Ordering::Relaxed),
                            attempts: 0,
                            sp: c,
                        });
                        sh.qlen.store(q.len(), Ordering::Release);
                    } else {
                        local.pruned += 1;
                    }
                }
            }
            Expansion::Dead => {}
        }
    }
    sh.done.store(true, Ordering::Release);
    let mut agg = sh.stats.lock();
    agg.expanded += local.expanded;
    agg.generated += local.generated;
    agg.tours += local.tours;
    agg.pruned += local.pruned;
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::FaultSpec;

    #[test]
    fn native_solver_matches_held_karp_across_policies() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        for policy in [
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
        ] {
            for searchers in [1, 4] {
                let res = solve_native(
                    &inst,
                    NativeTspConfig {
                        searchers,
                        policy,
                        ..NativeTspConfig::default()
                    },
                );
                assert_eq!(res.best, oracle, "{} x{searchers}", policy.label());
                assert!(res.stats.expanded > 0);
                assert!(res.stats.tours >= 1);
                assert_eq!(res.worker_panics, 0);
            }
        }
    }

    #[test]
    fn native_solver_matches_the_simulated_solver() {
        let inst = TspInstance::random_euclidean(10, 500, 21);
        let (seq, _) = crate::solve_sequential(&inst);
        let res = solve_native(&inst, NativeTspConfig::default());
        assert_eq!(res.best, seq);
    }

    #[test]
    fn lock_traffic_is_observable() {
        let inst = TspInstance::random_symmetric(9, 100, 3);
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
                ..NativeTspConfig::default()
            },
        );
        // Every pop and push goes through the queue lock.
        assert!(res.queue_lock.acquisitions > res.stats.expanded);
        assert!(res.best_lock.acquisitions > 0);
    }

    #[test]
    fn solver_survives_cs_panics_exactly() {
        let inst = TspInstance::random_symmetric(9, 100, 7);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(17).with_cs_panics(32)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "exactness must survive CS panics");
        assert!(
            plan.report().cs_panics > 0,
            "the plan must actually have fired"
        );
        assert_eq!(res.worker_panics, plan.report().cs_panics);
        assert_eq!(res.dropped, 0, "retry budget must suffice at this rate");
        assert!(res.poison_recoveries > 0, "panics poison, supervisors clear");
    }

    #[test]
    fn solver_survives_worker_deaths_exactly() {
        // Large enough that every searcher participates long past the
        // doomed workers' kill steps.
        let inst = TspInstance::random_symmetric(11, 100, 5);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(23).with_worker_kills(50, 3)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 4,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "exactness must survive worker deaths");
        assert_eq!(res.workers_died, 2, "50% of 4 workers, exactly");
    }

    #[test]
    fn solver_survives_total_worker_loss_via_residual_drain() {
        let inst = TspInstance::random_symmetric(10, 100, 11);
        let oracle = inst.held_karp();
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(31).with_worker_kills(100, 1)));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 3,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        assert_eq!(res.best, oracle, "the residual drain must finish the search");
        assert_eq!(res.workers_died, 3, "every worker dies");
        assert!(res.residual_drained > 0, "the caller drained the residue");
    }
}
