//! Shared abstractions of the parallel TSP implementations: the work
//! queue(s) of subproblems, the best-tour value, and the four locks the
//! paper names (`qlock`, `glob-act-lock`, `glob-low-lock`, `globlock`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AOrd};
use std::sync::{Arc, Mutex};

use adaptive_locks::{
    AdaptiveLock, BlockingLock, Lock, SimpleAdapt, SpinBackoffLock, SpinLock,
};
use adaptive_native::CachePadded;
use butterfly_sim::{ctx, NodeId, SimCell};

use crate::instance::INF;
use crate::lmsk::SubProblem;

/// Which lock implementation backs the application's four locks — the
/// independent variable of the paper's Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockImpl {
    /// The blocking lock (the paper's baseline columns).
    Blocking,
    /// The adaptive lock with `simple-adapt(threshold, n)`.
    Adaptive {
        /// `Waiting-Threshold`.
        threshold: u64,
        /// Spin increment `n`.
        n: u32,
    },
    /// Pure test-and-test-and-set spinning.
    Spin,
    /// Spin with backoff.
    SpinBackoff,
}

impl LockImpl {
    /// Build one lock of this kind homed on `node`.
    pub fn build(self, node: NodeId) -> Arc<dyn Lock> {
        match self {
            LockImpl::Blocking => Arc::new(BlockingLock::new_on(node)),
            LockImpl::Adaptive { threshold, n } => Arc::new(AdaptiveLock::with_policy(
                node,
                Box::new(SimpleAdapt::new(threshold, n)),
                2,
            )),
            LockImpl::Spin => Arc::new(SpinLock::new_on(node)),
            LockImpl::SpinBackoff => Arc::new(SpinBackoffLock::new_on(node)),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LockImpl::Blocking => "blocking",
            LockImpl::Adaptive { .. } => "adaptive",
            LockImpl::Spin => "spin",
            LockImpl::SpinBackoff => "spin-backoff",
        }
    }
}

/// A heap entry ordered by (bound asc, seq asc) — best-first with
/// deterministic tie-breaking.
struct QEntry {
    bound: u32,
    seq: u64,
    sp: SubProblem,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.bound, self.seq) == (other.bound, other.seq)
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for best(lowest-bound)-first.
        (other.bound, other.seq).cmp(&(self.bound, self.seq))
    }
}

/// A best-first work queue of subproblems homed on one memory node.
///
/// Every push/pop charges `transfer_refs` simulated references against
/// the queue's node — moving a subproblem (a reduced cost matrix) through
/// a remote queue is exactly the remote-memory traffic that makes the
/// centralized TSP slower than the distributed one.
pub struct WorkQueue {
    home: NodeId,
    transfer_refs: u32,
    heap: Mutex<BinaryHeap<QEntry>>,
    seq: AtomicU64,
    /// Lock-free length mirror on its own cache line, maintained by
    /// every heap mutation while the heap mutex is still held. Monitors
    /// and peek paths read it without touching the mutex, and the pad
    /// keeps those polls from bouncing the line the queue's other
    /// fields (or a neighbouring queue) live on.
    len: CachePadded<AtomicUsize>,
}

impl WorkQueue {
    /// An empty queue on `node`.
    pub fn new(node: NodeId, transfer_refs: u32) -> WorkQueue {
        WorkQueue {
            home: node,
            transfer_refs,
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// The queue's home node.
    pub fn home(&self) -> NodeId {
        self.home
    }

    fn charge(&self, op: ctx::MemOp) {
        for _ in 0..self.transfer_refs {
            ctx::charge_mem(op, self.home);
        }
    }

    /// The backing heap, tolerant of poison: every heap operation leaves
    /// the heap itself consistent (the `Mutex` only guards it against
    /// concurrent access), so a panic in some earlier holder does not
    /// invalidate the data.
    fn heap(&self) -> std::sync::MutexGuard<'_, BinaryHeap<QEntry>> {
        self.heap.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Push a subproblem (call with the queue's `qlock` held).
    pub fn push(&self, sp: SubProblem) {
        self.charge(ctx::MemOp::Write);
        let seq = self.seq.fetch_add(1, AOrd::Relaxed);
        let mut heap = self.heap();
        heap.push(QEntry {
            bound: sp.bound,
            seq,
            sp,
        });
        self.len.store(heap.len(), AOrd::Release);
    }

    /// Pop the best subproblem (call with the queue's `qlock` held).
    pub fn pop(&self) -> Option<SubProblem> {
        let e = {
            let mut heap = self.heap();
            let e = heap.pop();
            self.len.store(heap.len(), AOrd::Release);
            e
        };
        if e.is_some() {
            self.charge(ctx::MemOp::Read);
        } else {
            ctx::charge_mem(ctx::MemOp::Read, self.home);
        }
        e.map(|e| e.sp)
    }

    /// Steal-aware batched pop: take up to `max` best subproblems in one
    /// `qlock` critical section. Each item moved charges the queue's
    /// transfer references; an empty probe charges one read. This is the
    /// transfer primitive of the distributed structures — one lock hold
    /// amortized over a whole batch instead of `max` lock cycles.
    pub fn pop_batch(&self, max: usize) -> Vec<SubProblem> {
        let mut out = Vec::new();
        {
            let mut heap = self.heap();
            for _ in 0..max {
                match heap.pop() {
                    Some(e) => out.push(e.sp),
                    None => break,
                }
            }
            self.len.store(heap.len(), AOrd::Release);
        }
        if out.is_empty() {
            ctx::charge_mem(ctx::MemOp::Read, self.home);
        } else {
            for _ in 0..out.len() {
                self.charge(ctx::MemOp::Read);
            }
        }
        out
    }

    /// Batched push: enqueue several subproblems in one `qlock` critical
    /// section, charging transfer references per item.
    pub fn push_batch(&self, sps: Vec<SubProblem>) {
        if sps.is_empty() {
            return;
        }
        for _ in 0..sps.len() {
            self.charge(ctx::MemOp::Write);
        }
        let mut heap = self.heap();
        for sp in sps {
            let seq = self.seq.fetch_add(1, AOrd::Relaxed);
            heap.push(QEntry {
                bound: sp.bound,
                seq,
                sp,
            });
        }
        self.len.store(heap.len(), AOrd::Release);
    }

    /// Remote-visible emptiness probe (one charged read). Reads the
    /// lock-free length mirror — an unlocked single-word read, which is
    /// exactly what the single charged reference models.
    pub fn looks_empty(&self) -> bool {
        ctx::charge_mem(ctx::MemOp::Read, self.home);
        self.len.load(AOrd::Acquire) == 0
    }

    /// Cost-free emptiness peek (for assertions/monitors). Lock-free:
    /// reads the padded length mirror, never the heap mutex.
    pub fn peek_empty(&self) -> bool {
        self.len.load(AOrd::Acquire) == 0
    }

    /// Cost-free length peek. Lock-free, same as [`WorkQueue::peek_empty`].
    pub fn peek_len(&self) -> usize {
        self.len.load(AOrd::Acquire)
    }
}

/// The best-tour value: a simulated word plus its `glob-low-lock`.
/// Reads are unlocked single-word reads; updates take the lock
/// (read-modify-write), which is why the paper observes no contention on
/// this lock.
pub struct BestTour {
    value: SimCell<u32>,
    /// `glob-low-lock`.
    pub lock: Arc<dyn Lock>,
}

impl BestTour {
    /// Fresh incumbent (`INF`) on `node`.
    pub fn new(node: NodeId, lock_impl: LockImpl) -> BestTour {
        BestTour {
            value: SimCell::new_on(node, INF),
            lock: lock_impl.build(node),
        }
    }

    /// Read the incumbent (one charged read, no lock).
    pub fn read(&self) -> u32 {
        self.value.read()
    }

    /// Lower the incumbent to `cost` if it improves it. Returns whether
    /// the update happened.
    pub fn offer(&self, cost: u32) -> bool {
        // Cheap unlocked pre-check, then locked read-modify-write.
        if self.value.read() <= cost {
            return false;
        }
        self.lock.lock();
        let improved = self.value.read() > cost;
        if improved {
            self.value.write(cost);
        }
        self.lock.unlock();
        improved
    }

    /// Overwrite with `cost` if it improves, without taking the lock
    /// (used for propagating into per-processor copies, where the writer
    /// holds its own copy's lock).
    pub fn force_min(&self, cost: u32) {
        if self.value.read() > cost {
            self.value.write(cost);
        }
    }

    /// Cost-free peek.
    pub fn peek(&self) -> u32 {
        self.value.peek()
    }
}

/// Searcher-activity accounting: the "number of active slaves" variable
/// and its `glob-act-lock`.
pub struct ActiveCounter {
    count: SimCell<i64>,
    /// `glob-act-lock`.
    pub lock: Arc<dyn Lock>,
}

impl ActiveCounter {
    /// Counter starting at `initial` on `node`.
    pub fn new(node: NodeId, lock_impl: LockImpl, initial: i64) -> ActiveCounter {
        ActiveCounter {
            count: SimCell::new_on(node, initial),
            lock: lock_impl.build(node),
        }
    }

    /// `count += delta` under the lock.
    pub fn add(&self, delta: i64) -> i64 {
        self.lock.lock();
        let v = self.count.read() + delta;
        self.count.write(v);
        self.lock.unlock();
        v
    }

    /// Read under the lock (the termination check).
    pub fn read(&self) -> i64 {
        self.lock.lock();
        let v = self.count.read();
        self.lock.unlock();
        v
    }

    /// Cost-free peek.
    pub fn peek(&self) -> i64 {
        self.count.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TspInstance;
    use butterfly_sim::{self as sim, SimConfig};

    fn in_sim<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
        sim::run(SimConfig::butterfly(2), f).unwrap().0
    }

    #[test]
    fn queue_is_best_first_with_fifo_ties() {
        let out = in_sim(|| {
            let inst = TspInstance::random_symmetric(6, 100, 1);
            let q = WorkQueue::new(ctx::current_node(), 2);
            // Three roots with hand-set bounds.
            let mut a = SubProblem::root(&inst);
            a.bound = 50;
            let mut b = SubProblem::root(&inst);
            b.bound = 10;
            let mut c = SubProblem::root(&inst);
            c.bound = 50;
            q.push(a);
            q.push(b);
            q.push(c);
            let mut bounds = Vec::new();
            while let Some(sp) = q.pop() {
                bounds.push(sp.bound);
            }
            (bounds, q.peek_empty())
        });
        assert_eq!(out.0, vec![10, 50, 50]);
        assert!(out.1);
    }

    #[test]
    fn queue_charges_transfer_refs() {
        let delta = in_sim(|| {
            let inst = TspInstance::random_symmetric(6, 100, 1);
            let q = WorkQueue::new(ctx::current_node(), 8);
            let before = ctx::cost_meter();
            q.push(SubProblem::root(&inst));
            let after_push = ctx::cost_meter() - before;
            let before = ctx::cost_meter();
            let _ = q.pop();
            let after_pop = ctx::cost_meter() - before;
            (after_push.writes(), after_pop.reads())
        });
        assert_eq!(delta.0, 8);
        assert_eq!(delta.1, 8);
    }

    #[test]
    fn batched_transfer_is_best_first_and_charged_per_item() {
        let out = in_sim(|| {
            let inst = TspInstance::random_symmetric(6, 100, 1);
            let q = WorkQueue::new(ctx::current_node(), 2);
            let mk = |b: u32| {
                let mut sp = SubProblem::root(&inst);
                sp.bound = b;
                sp
            };
            q.push_batch(vec![mk(30), mk(10), mk(20)]);
            let before = ctx::cost_meter();
            let got = q.pop_batch(2);
            let reads = (ctx::cost_meter() - before).reads();
            let bounds: Vec<u32> = got.iter().map(|s| s.bound).collect();
            let rest = q.pop_batch(5).len();
            let empty = q.pop_batch(3).len();
            (bounds, reads, rest, empty)
        });
        assert_eq!(out.0, vec![10, 20], "batch pops best-first");
        assert_eq!(out.1, 4, "2 items x 2 transfer refs");
        assert_eq!(out.2, 1, "short batch returns what is there");
        assert_eq!(out.3, 0, "empty batch is empty");
    }

    #[test]
    fn best_tour_offer_keeps_minimum() {
        let out = in_sim(|| {
            let best = BestTour::new(ctx::current_node(), LockImpl::Spin);
            assert!(best.offer(100));
            assert!(!best.offer(150));
            assert!(best.offer(40));
            best.read()
        });
        assert_eq!(out, 40);
    }

    #[test]
    fn active_counter_tracks_under_lock() {
        let out = in_sim(|| {
            let act = ActiveCounter::new(ctx::current_node(), LockImpl::Blocking, 4);
            act.add(-1);
            act.add(-1);
            act.add(1);
            (act.read(), act.peek())
        });
        assert_eq!(out.0, 3);
        assert_eq!(out.1, 3);
    }

    #[test]
    fn lock_impl_builders_produce_named_locks() {
        in_sim(|| {
            let node = ctx::current_node();
            assert_eq!(LockImpl::Blocking.build(node).name(), "blocking");
            assert_eq!(
                LockImpl::Adaptive { threshold: 3, n: 5 }.build(node).name(),
                "adaptive"
            );
            assert_eq!(LockImpl::Spin.build(node).name(), "spin");
            assert_eq!(LockImpl::SpinBackoff.build(node).name(), "spin-backoff");
            assert_eq!(LockImpl::Blocking.label(), "blocking");
        });
    }
}
