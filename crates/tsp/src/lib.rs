//! # tsp-app
//!
//! The paper's application study (Section 4): the LMSK branch-and-bound
//! Travelling Sales Person program as a collection of cooperating
//! searcher threads on the Butterfly simulator, in the three
//! shared-abstraction structures the paper compares:
//!
//! * [`Variant::Centralized`] — global work queue + global best tour;
//! * [`Variant::Distributed`] — per-processor queues in a ring +
//!   per-processor best-tour copies;
//! * [`Variant::Balanced`] — distributed + load balancing of the work
//!   queues.
//!
//! Each implementation synchronizes through the paper's four locks
//! (`qlock`, `glob-act-lock`, `glob-low-lock`, `globlock`), whose
//! implementation ([`LockImpl`]) is the experiments' independent
//! variable: blocking vs adaptive locks (Tables 1–3), with locking
//! patterns traced for Figures 4–9.
//!
//! ```
//! use butterfly_sim::{self as sim, SimConfig};
//! use tsp_app::{solve_parallel, LockImpl, TspConfig, TspInstance, Variant};
//!
//! let inst = TspInstance::random_symmetric(8, 100, 42);
//! let oracle = inst.held_karp();
//! let (res, _) = sim::run(SimConfig::butterfly(4), move || {
//!     solve_parallel(&inst, Variant::Centralized, TspConfig {
//!         searchers: 4,
//!         lock_impl: LockImpl::Adaptive { threshold: 3, n: 5 },
//!         ..TspConfig::default()
//!     })
//! })
//! .unwrap();
//! assert_eq!(res.best, oracle);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::unwrap_used)]

mod instance;
mod lmsk;
mod native;
mod shared;
mod solver;

pub use instance::{TspInstance, INF};
pub use lmsk::{is_single_cycle, solve_sequential, Expansion, SearchStats, SubProblem};
pub use native::{solve_native, NativeResult, NativeTspConfig, NativeVariant, RetunePlan};
pub use shared::{ActiveCounter, BestTour, LockImpl, WorkQueue};
pub use solver::{solve_parallel, solve_sequential_timed, ParallelResult, TspConfig, Variant};
