//! The chaos soak: long-running contention under a seeded fault storm,
//! supervised by the control plane, graded against hard oracles.
//!
//! One run wires the whole robustness stack together:
//!
//! * `locks` adaptive mutexes, each protecting a monotone counter,
//!   registered by name in a [`BreakerHub`];
//! * `threads` workers hammering seeded-random locks; the [`FaultPlan`]
//!   injects critical-section panics (absorbed by `catch_unwind`,
//!   poisoning the lock) and dooms a deterministic subset of workers to
//!   die mid-storm;
//! * unpark drops/delays and monitor stalls flow through the same plan
//!   via a storm gate (a [`FaultHook`] wrapper) that is open only
//!   during the storm phase;
//! * a command driver issues seeded-random control traffic (`health`,
//!   `retune`, `set-policy`, `set-algorithm`, `quarantine`, `heal`,
//!   `clear-poison`, `snapshot`) through [`ControlPlane::execute`],
//!   concurrently with everything else;
//! * scripted stall episodes wedge a lock (guard held across polls, a
//!   real waiter queued) so the watchdog sees a genuinely frozen lock,
//!   and the run measures how many supervisor polls the breaker needs
//!   to reach `Quarantined`;
//! * after the storm an operator `heal` sweep starts half-open trials,
//!   and a convergence loop polls until every breaker re-arms.
//!
//! The hub is polled *by the coordinator thread itself* (not a
//! background [`BreakerHub::spawn`] loop), so "polls to quarantine" is
//! a deterministic count: the wedge is fully established strictly
//! between two polls, the next poll baselines the frozen frame, and the
//! one after that must take `Closed → Suspect → Quarantined`.
//!
//! [`SoakResult`] carries everything the oracles grade — conservation
//! (counter values vs successful ops), event-chain legality, per-
//! episode polls-to-quarantine, heal coverage, quiescence — and the
//! graders live in `tests/control_soak.rs` and the `bench` `soak`
//! binary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use adaptive_control::{
    validate_events, BreakerEvent, BreakerHub, BreakerState, ControlPlane,
};
use adaptive_native::{AdaptiveMutex, FaultHook, FaultPlan, FaultSpec, PolicyChoice};
use serde::Serialize;
use std::collections::BTreeMap;

/// Configuration of one soak run. Durations are denominated in
/// supervisor polls (`poll_millis` each), so a spec scales between a
/// CI smoke and a long soak by changing one number.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Locks in the registry (each protects its own counter).
    pub locks: usize,
    /// Worker threads (before storm kills).
    pub threads: usize,
    /// Storm length in supervisor polls (stall episodes extend it).
    pub storm_polls: u64,
    /// Calm (fault-free) length in supervisor polls.
    pub calm_polls: u64,
    /// Supervisor poll interval.
    pub poll_millis: u64,
    /// Scripted wedge-a-lock stall episodes to run during the storm.
    pub stall_episodes: usize,
    /// The seeded fault storm (CS panics, unpark drops, monitor
    /// stalls, worker kills).
    pub faults: FaultSpec,
    /// Seed for the command driver's and the workers' own choices
    /// (independent of the fault seed).
    pub command_seed: u64,
    /// Waiting policy the locks are built with.
    pub policy: PolicyChoice,
}

impl SoakSpec {
    /// A CI-sized storm: a few seconds end to end, every fault kind
    /// exercised, deterministic in its two seeds.
    pub fn quick(seed: u64) -> SoakSpec {
        SoakSpec {
            locks: 4,
            threads: 8,
            storm_polls: 24,
            calm_polls: 8,
            poll_millis: 25,
            stall_episodes: 3,
            faults: FaultSpec::seeded(seed)
                .with_cs_panics(64)
                .with_unpark_drops(96)
                .with_monitor_stalls(48)
                .with_worker_kills(25, 400),
            command_seed: seed ^ 0xc0_ffee,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
        }
    }
}

/// One scripted stall episode's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct StallEpisode {
    /// The wedged lock.
    pub target: String,
    /// Supervisor polls from wedge establishment to the breaker
    /// reaching `Quarantined`; `None` if it never did within the
    /// episode's bounded window (an oracle failure).
    pub polls_to_quarantine: Option<u64>,
}

/// Everything a soak run measured, ready for the oracles (and for
/// serialization into the bench report).
#[derive(Debug, Clone, Serialize)]
pub struct SoakResult {
    /// Total supervisor polls taken.
    pub polls: u64,
    /// Successful (non-panicked) critical sections across all workers.
    pub ops: u64,
    /// Sum of the protected counters at quiescence.
    pub counter_total: u64,
    /// Conservation oracle: every lock's counter equals the successful
    /// ops recorded against it.
    pub conservation_ok: bool,
    /// Injected CS panics absorbed by workers.
    pub panics_absorbed: u64,
    /// Workers that the fault plan doomed and that died mid-run.
    pub workers_killed: usize,
    /// Fault-plan tallies: injected CS panics.
    pub faults_cs_panics: u64,
    /// Fault-plan tallies: unparks dropped.
    pub faults_unparks_dropped: u64,
    /// Fault-plan tallies: monitor samples stalled.
    pub faults_monitor_stalls: u64,
    /// Control commands that returned `Ok`.
    pub commands_ok: u64,
    /// Control commands that returned `Err` (the driver only issues
    /// well-formed commands, so the oracle expects zero).
    pub commands_err: u64,
    /// Operator `heal` commands issued by the calm-phase sweep.
    pub heal_commands: u64,
    /// Scripted stall episodes actually run.
    pub episodes: Vec<StallEpisode>,
    /// Episodes skipped because no breaker was `Closed` to wedge.
    pub episodes_skipped: usize,
    /// Extra polls past the calm phase before every breaker re-armed.
    pub convergence_polls: u64,
    /// Targets whose breaker opened (reached `Quarantined`) at least
    /// once.
    pub opened_targets: usize,
    /// Opened targets that later recorded a `Healed` edge.
    pub healed_targets: usize,
    /// Every opened breaker healed and every breaker finished `Closed`.
    pub all_healed: bool,
    /// First event-chain legality violation, if any.
    pub illegal: Option<String>,
    /// Zero lost waiters at quiescence: every lock free and waiter-less
    /// after all threads joined.
    pub quiescent: bool,
    /// Lifecycle transitions recorded (length of [`SoakResult::events`]).
    pub transitions: usize,
    /// Polls spent per breaker state, summed over targets.
    pub dwell: BTreeMap<String, u64>,
    /// The full structured event log, for traces and debugging.
    pub events: Vec<BreakerEvent>,
}

/// Gates a [`FaultPlan`] behind a storm flag: faults flow only while
/// the flag is up, so the calm phase is genuinely fault-free without
/// rebuilding the locks (the hook on a mutex is install-once).
struct StormGate {
    plan: Arc<FaultPlan>,
    active: AtomicBool,
}

impl FaultHook for StormGate {
    fn before_unpark(&self) -> bool {
        self.active.load(Ordering::Relaxed) && FaultHook::before_unpark(&*self.plan)
    }

    fn stall_monitor_sample(&self) -> bool {
        self.active.load(Ordering::Relaxed) && FaultHook::stall_monitor_sample(&*self.plan)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny seeded stream for worker/driver choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A wedged lock: a holder thread keeps the guard while a dedicated
/// waiter blocks behind it, so the watchdog's health frames show
/// `waiting > 0` with frozen progress until [`Wedge::release`].
struct Wedge {
    release: mpsc::Sender<()>,
    holder: std::thread::JoinHandle<()>,
    waiter: std::thread::JoinHandle<()>,
}

fn wedge(lock: &Arc<AdaptiveMutex<u64>>) -> Wedge {
    let (release, release_rx) = mpsc::channel::<()>();
    let (ready, ready_rx) = mpsc::channel::<()>();
    let l = Arc::clone(lock);
    let holder = std::thread::spawn(move || {
        let g = l.lock();
        let _ = ready.send(());
        let _ = release_rx.recv();
        drop(g);
    });
    let _ = ready_rx.recv();
    let l = Arc::clone(lock);
    let waiter = std::thread::spawn(move || drop(l.lock()));
    while lock.waiting_now() == 0 {
        std::thread::yield_now();
    }
    Wedge {
        release,
        holder,
        waiter,
    }
}

impl Wedge {
    fn release(self) {
        let _ = self.release.send(());
        let _ = self.holder.join();
        let _ = self.waiter.join();
    }
}

/// The commands the driver draws from (all well-formed, so every reply
/// should be `Ok`). Destructive lifecycle commands are storm-only; the
/// calm phase keeps observation and recovery traffic flowing.
fn draw_command(rng: &mut Rng, names: &[String], storm: bool) -> String {
    let name = &names[rng.below(names.len())];
    let destructive = ["quarantine", "set-algorithm", "retune", "set-policy"];
    let gentle = ["health", "health-one", "targets", "snapshot", "heal", "clear-poison"];
    let pool = if storm {
        rng.below(destructive.len() + gentle.len())
    } else {
        destructive.len() + rng.below(gentle.len())
    };
    match pool {
        0 => format!("quarantine {name}"),
        1 => {
            let algo = ["spin-park", "ticket", "clh", "flat-combining"][rng.below(4)];
            format!("set-algorithm {name} {algo}")
        }
        2 => {
            let spin = [16u32, 64, 256][rng.below(3)];
            format!("retune {name} spin {spin}")
        }
        3 => {
            let policy = ["spin", "blocking", "combined:64", "combined:16+timeout:5000000"]
                [rng.below(4)];
            format!("set-policy {name} {policy}")
        }
        4 => "health".into(),
        5 => format!("health {name}"),
        6 => "targets".into(),
        7 => "snapshot".into(),
        8 => format!("heal {name}"),
        _ => format!("clear-poison {name}"),
    }
}

/// Run one soak to completion and return its measurements. Panics only
/// on harness-internal errors; oracle violations are *reported* in the
/// result, not asserted, so graders can print context.
pub fn run_soak(spec: &SoakSpec) -> SoakResult {
    let hub = Arc::new(BreakerHub::default());
    let plan = Arc::new(FaultPlan::new(spec.faults));
    let gate = Arc::new(StormGate {
        plan: Arc::clone(&plan),
        active: AtomicBool::new(true),
    });
    // `names[i]` is `locks[i]`'s registry name — built here (not via
    // `hub.names()`) so the index mapping survives lexicographic
    // sorting when `locks >= 10`.
    let names: Vec<String> = (0..spec.locks.max(1)).map(|i| format!("soak.lock{i}")).collect();
    let locks: Vec<Arc<AdaptiveMutex<u64>>> = names
        .iter()
        .map(|name| {
            let m = Arc::new(spec.policy.build_mutex(0u64));
            m.set_fault_hook(Arc::clone(&gate) as Arc<dyn FaultHook>);
            hub.register(name.clone(), m.clone() as Arc<dyn adaptive_control::ControlTarget>);
            m
        })
        .collect();
    let plane = ControlPlane::new(Arc::clone(&hub));

    let stop = AtomicBool::new(false);
    let ok_ops: Vec<AtomicU64> = (0..locks.len()).map(|_| AtomicU64::new(0)).collect();
    let panics_absorbed = AtomicU64::new(0);
    let workers_killed = AtomicU64::new(0);
    let commands_ok = AtomicU64::new(0);
    let commands_err = AtomicU64::new(0);
    let poll_interval = Duration::from_millis(spec.poll_millis.max(1));

    let mut episodes: Vec<StallEpisode> = Vec::new();
    let mut episodes_skipped = 0usize;
    let mut heal_commands = 0u64;
    let mut convergence_polls = 0u64;

    std::thread::scope(|scope| {
        // Workers: hammer seeded-random locks; a doomed worker dies at
        // its kill step (the storm's "worker kill" fault).
        for w in 0..spec.threads {
            let (locks, ok_ops, plan, gate, stop) = (&locks, &ok_ops, &plan, &gate, &stop);
            let (panics_absorbed, workers_killed) = (&panics_absorbed, &workers_killed);
            let mut rng = Rng(spec.command_seed ^ (w as u64).wrapping_mul(0x9e37));
            let doom = plan.worker_doom(w, spec.threads);
            scope.spawn(move || {
                let mut steps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if doom.is_some_and(|at| steps >= at) {
                        workers_killed.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    let k = rng.below(locks.len());
                    let storm = gate.active.load(Ordering::Relaxed);
                    let died = catch_unwind(AssertUnwindSafe(|| {
                        locks[k].with_locked(|v| {
                            if storm {
                                plan.maybe_panic_in_cs();
                            }
                            *v += 1;
                        });
                    }))
                    .is_err();
                    if died {
                        panics_absorbed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ok_ops[k].fetch_add(1, Ordering::Relaxed);
                    }
                    steps += 1;
                    for _ in 0..rng.below(64) {
                        std::hint::spin_loop();
                    }
                }
            });
        }

        // Command driver: seeded well-formed traffic, concurrent with
        // the workers and the supervisor.
        {
            let (plane, names, gate, stop) = (&plane, &names, &gate, &stop);
            let (commands_ok, commands_err) = (&commands_ok, &commands_err);
            let mut rng = Rng(spec.command_seed ^ 0xd21e);
            let pace = Duration::from_millis((spec.poll_millis / 2).max(1));
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let line = draw_command(&mut rng, names, gate.active.load(Ordering::Relaxed));
                    match plane.execute(&line) {
                        Ok(_) => commands_ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => commands_err.fetch_add(1, Ordering::Relaxed),
                    };
                    std::thread::sleep(pace);
                }
            });
        }

        // The coordinator: this thread is the supervisor poll loop.
        let step = |hub: &BreakerHub| {
            std::thread::sleep(poll_interval);
            hub.poll();
        };
        let state_of = |name: &str| {
            hub.states()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s)
        };

        // Storm phase, with stall episodes evenly interleaved. An
        // episode wedges a lock whose breaker is Closed, then keeps
        // polling until the breaker opens (bounded window).
        let gap = (spec.storm_polls / (spec.stall_episodes as u64 + 1)).max(1);
        let mut tick = 0u64;
        let mut next_episode = gap;
        let mut attempts = 0usize;
        while tick < spec.storm_polls || episodes.len() + episodes_skipped < spec.stall_episodes
        {
            step(&hub);
            tick += 1;
            if tick > spec.storm_polls.saturating_mul(3) {
                break; // safety net: never storm forever
            }
            if episodes.len() + episodes_skipped >= spec.stall_episodes || tick < next_episode {
                continue;
            }
            next_episode = tick + gap;
            let closed = names
                .iter()
                .position(|n| state_of(n.as_str()) == Some(BreakerState::Closed));
            let Some(idx) = closed else {
                attempts += 1;
                if attempts > spec.stall_episodes * 4 {
                    episodes_skipped += 1; // storm too hot to find a Closed lock
                }
                continue;
            };
            let name = names[idx].clone();
            let w = wedge(&locks[idx]);
            let p0 = hub.polls();
            // Read the quarantine's arrival off the event log, not a
            // momentary state probe: a concurrent operator `heal` can
            // flip the state back before we look, but the edge stays
            // recorded. `poll >= p0` also credits a driver-forced open
            // that raced the wedge (the breaker was open by wedge time,
            // trivially within bound).
            let quarantined_at = |hub: &BreakerHub| {
                hub.events()
                    .iter()
                    .find(|e| {
                        e.target == name && e.to == BreakerState::Quarantined && e.poll >= p0
                    })
                    .map(|e| e.poll - p0)
            };
            let mut opened = quarantined_at(&hub);
            for _ in 0..6u64 {
                if opened.is_some() {
                    break;
                }
                step(&hub);
                tick += 1;
                opened = quarantined_at(&hub);
            }
            w.release();
            episodes.push(StallEpisode {
                target: name,
                polls_to_quarantine: opened,
            });
        }

        // Calm: faults off, operator heal sweep, then fault-free polls.
        gate.active.store(false, Ordering::Relaxed);
        let heal_sweep = |hub: &BreakerHub, plane: &ControlPlane, healed: &mut u64| {
            for (name, s) in hub.states() {
                if s == BreakerState::Quarantined && plane.execute(&format!("heal {name}")).is_ok()
                {
                    *healed += 1;
                }
            }
        };
        heal_sweep(&hub, &plane, &mut heal_commands);
        for _ in 0..spec.calm_polls {
            step(&hub);
            heal_sweep(&hub, &plane, &mut heal_commands);
        }
        // Convergence: every breaker must re-arm to Closed.
        while hub.states().iter().any(|(_, s)| *s != BreakerState::Closed) {
            if convergence_polls >= 64 {
                break; // stuck-open: reported via all_healed below
            }
            step(&hub);
            convergence_polls += 1;
            heal_sweep(&hub, &plane, &mut heal_commands);
        }

        stop.store(true, Ordering::Relaxed);
    });
    hub.poll(); // final post-quiescence frame

    // Oracles' raw material.
    let per_lock: Vec<(u64, u64)> = locks
        .iter()
        .zip(&ok_ops)
        .map(|(l, ops)| (l.with_locked(|v| *v), ops.load(Ordering::Relaxed)))
        .collect();
    let conservation_ok = per_lock.iter().all(|(counter, ops)| counter == ops);
    let ops: u64 = per_lock.iter().map(|(_, o)| o).sum();
    let counter_total: u64 = per_lock.iter().map(|(c, _)| c).sum();
    let quiescent = locks.iter().all(|l| {
        let free = l.try_lock().is_some();
        free && l.waiting_now() == 0
    });

    let events = hub.events();
    let illegal = validate_events(&events).err();
    let opened: Vec<&String> = names
        .iter()
        .filter(|n| {
            events
                .iter()
                .any(|e| &e.target == *n && e.to == BreakerState::Quarantined)
        })
        .collect();
    let healed_targets = opened
        .iter()
        .filter(|n| {
            events
                .iter()
                .any(|e| &e.target == **n && e.to == BreakerState::Healed)
        })
        .count();
    let all_closed = hub
        .states()
        .iter()
        .all(|(_, s)| *s == BreakerState::Closed);
    let report = plan.report();
    let dwell: BTreeMap<String, u64> = hub
        .dwell_totals()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();

    SoakResult {
        polls: hub.polls(),
        ops,
        counter_total,
        conservation_ok,
        panics_absorbed: panics_absorbed.load(Ordering::Relaxed),
        workers_killed: workers_killed.load(Ordering::Relaxed) as usize,
        faults_cs_panics: report.cs_panics,
        faults_unparks_dropped: report.unparks_dropped,
        faults_monitor_stalls: report.monitor_stalls,
        commands_ok: commands_ok.load(Ordering::Relaxed),
        commands_err: commands_err.load(Ordering::Relaxed),
        heal_commands,
        all_healed: all_closed && healed_targets == opened.len(),
        opened_targets: opened.len(),
        healed_targets,
        episodes,
        episodes_skipped,
        convergence_polls,
        illegal,
        quiescent,
        transitions: events.len(),
        dwell,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_passes_every_oracle() {
        let mut spec = SoakSpec::quick(0x50a1);
        spec.storm_polls = 10;
        spec.calm_polls = 4;
        spec.stall_episodes = 1;
        spec.poll_millis = 10;
        spec.threads = 4;
        let r = run_soak(&spec);
        assert!(r.conservation_ok, "lost update: {r:?}");
        assert!(r.quiescent, "lost waiter: {r:?}");
        assert!(r.illegal.is_none(), "illegal chain: {:?}", r.illegal);
        assert_eq!(r.commands_err, 0, "driver issued only valid commands");
        assert!(r.all_healed, "stuck-open breaker: {r:?}");
        for ep in &r.episodes {
            let polls = ep.polls_to_quarantine.expect("episode quarantined");
            assert!(polls <= 2, "stall took {polls} polls to quarantine");
        }
    }
}
