//! The locking-cycle measurement behind the paper's Tables 6 and 7: the
//! cost of a successive unlock-then-lock on an already locked lock —
//! i.e. how long the lock sits "idle" between a release and the waiting
//! thread's acquisition.
//!
//! Two threads on two processors ping-pong the lock with a hold time
//! long enough that the peer is always waiting at release time; the
//! cycle cost is the gap between each release and the next acquisition
//! by the other thread.

use std::sync::{Arc, Mutex};

use adaptive_locks::Lock;
use butterfly_sim::{self as sim, ctx, Duration, NodeId, ProcId, SimConfig, VirtualTime};
use cthreads::fork;

/// Event log entry: `(time, thread index, is_acquire)`.
type Event = (VirtualTime, usize, bool);

/// Measure the mean locking-cycle duration for a lock built by `build`
/// (homed wherever `build` places it; pass the home node for the
/// local/remote distinction of Tables 6–7).
///
/// Returns the mean release→acquisition gap over `rounds` handoffs per
/// thread.
pub fn measure_cycle<F, L>(processors: usize, build: F, rounds: u32) -> Duration
where
    L: Lock + 'static,
    F: FnOnce() -> L + Send + 'static,
{
    assert!(processors >= 2, "cycle measurement needs two processors");
    let (mean, _) = sim::run(
        SimConfig {
            processors,
            ..SimConfig::default()
        },
        move || {
            let lock: Arc<dyn Lock> = Arc::new(build());
            let log: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
            // Longer than the largest backoff delay so the waiting peer
            // always wins the next acquisition, keeping strict
            // alternation even for unfair locks.
            let think = Duration::micros(160);

            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let (lock, log) = (Arc::clone(&lock), Arc::clone(&log));
                    fork(ProcId(i), format!("pong{i}"), move || {
                        for r in 0..rounds {
                            // Deterministically jittered hold time so the
                            // release lands at varying phases of the
                            // peer's backoff cycle (a fixed hold would
                            // systematically bias backoff-lock cycles).
                            let hold = Duration::micros(300)
                                + Duration::micros(u64::from(r * 37 + i as u32 * 53) % 97);
                            lock.lock();
                            log.lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((ctx::now(), i, true));
                            // Hold long enough that the peer is waiting.
                            ctx::advance(hold);
                            log.lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((ctx::now(), i, false));
                            lock.unlock();
                            ctx::advance(think);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }

            let mut events = Arc::try_unwrap(log)
                .expect("both forked threads joined, so this Arc is unique")
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            events.sort_by_key(|&(t, _, _)| t);
            // Pair each release with the next acquisition by the peer.
            let mut cycles: Vec<u64> = Vec::new();
            let mut pending_release: Option<(VirtualTime, usize)> = None;
            for (t, tid, is_acq) in events {
                if is_acq {
                    if let Some((rt, rtid)) = pending_release.take() {
                        if rtid != tid {
                            cycles.push(t.since(rt).as_nanos());
                        }
                    }
                } else {
                    pending_release = Some((t, tid));
                }
            }
            assert!(
                cycles.len() as u32 >= rounds,
                "too few handoffs observed: {} (alternation broke down)",
                cycles.len()
            );
            Duration(cycles.iter().sum::<u64>() / cycles.len() as u64)
        },
    )
    .expect("cycle simulation runs to completion");
    mean
}

/// Measure the cycle for a lock homed on `home`, where both ping-pong
/// threads run on processors 0 and 1. `home = NodeId(0)` is the "local
/// lock" row (local to one participant), higher nodes give the "remote
/// lock" row.
pub fn measure_cycle_on<F, L>(home: NodeId, build: F, rounds: u32) -> Duration
where
    L: Lock + 'static,
    F: FnOnce(NodeId) -> L + Send + 'static,
{
    let processors = (home.0 + 1).max(2);
    measure_cycle(processors, move || build(home), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_locks::{BlockingLock, ReconfigurableLock, SchedKind, SpinLock, WaitingPolicy};
    use adaptive_locks::LockCosts;

    #[test]
    fn spin_cycle_is_cheaper_than_blocking_cycle() {
        let spin = measure_cycle_on(NodeId(0), SpinLock::new_on, 10);
        let blocking = measure_cycle_on(NodeId(0), BlockingLock::new_on, 10);
        assert!(
            spin < blocking,
            "spin handoff ({spin}) must be cheaper than blocking handoff ({blocking})"
        );
        // The blocking cycle includes an unblock + context switch, so the
        // gap should be substantial (paper: ~10x).
        assert!(blocking.as_nanos() > 2 * spin.as_nanos());
    }

    #[test]
    fn remote_lock_cycle_costs_more_than_local() {
        let local = measure_cycle_on(NodeId(0), SpinLock::new_on, 10);
        let remote = measure_cycle_on(NodeId(2), SpinLock::new_on, 10);
        assert!(remote > local, "remote ({remote}) vs local ({local})");
    }

    #[test]
    fn adaptive_cycle_spans_spin_to_blocking_range() {
        // Table 7: the adaptive lock configured as spin has the cheap
        // cycle, configured as blocking the expensive one.
        let as_spin = measure_cycle_on(
            NodeId(0),
            |n| {
                ReconfigurableLock::with_parts(
                    "adaptive",
                    n,
                    WaitingPolicy::pure_spin(),
                    SchedKind::Fcfs,
                    LockCosts::default(),
                )
            },
            10,
        );
        let as_blocking = measure_cycle_on(
            NodeId(0),
            |n| {
                ReconfigurableLock::with_parts(
                    "adaptive",
                    n,
                    WaitingPolicy::pure_blocking(),
                    SchedKind::Fcfs,
                    LockCosts::default(),
                )
            },
            10,
        );
        assert!(
            as_spin < as_blocking,
            "spin-configured cycle ({as_spin}) must undercut blocking-configured ({as_blocking})"
        );
    }
}
