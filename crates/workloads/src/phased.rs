//! A phase-changing locking pattern: alternating no-contention and
//! heavy-contention phases — the "applications with frequently changing
//! lock patterns" the paper argues adaptivity is for.
//!
//! During solo phases only one thread uses the lock (the right
//! configuration is pure spin: cheapest handoff/latency); during storm
//! phases every thread hammers it with long critical sections (the right
//! configuration is blocking). A static lock is wrong in one of the two
//! phases; the adaptive lock tracks the pattern.

use std::sync::Arc;

use adaptive_locks::{with_lock, Lock};
use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};
use cthreads::{Barrier, fork};
use serde::Serialize;

use crate::spec::LockSpec;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// Processors (== worker threads).
    pub threads: usize,
    /// Solo/storm phase pairs.
    pub phases: u32,
    /// Lock/unlock iterations per thread per storm phase.
    pub storm_iters: u32,
    /// Iterations of the solo thread per solo phase.
    pub solo_iters: u32,
    /// Critical-section length in storm phases (long).
    pub storm_cs: Duration,
    /// Critical-section length in solo phases (short).
    pub solo_cs: Duration,
}

impl Default for PhasedConfig {
    fn default() -> Self {
        PhasedConfig {
            threads: 4,
            phases: 3,
            storm_iters: 20,
            solo_iters: 40,
            storm_cs: Duration::micros(400),
            solo_cs: Duration::micros(5),
        }
    }
}

/// Outcome of one phased run.
#[derive(Debug, Clone, Serialize)]
pub struct PhasedResult {
    /// Lock variant label.
    pub lock: String,
    /// Total execution time (ns).
    pub total_nanos: u64,
    /// Reconfigurations performed by the lock (0 for static locks).
    pub reconfigurations: u64,
}

/// Run the phased workload with one lock variant.
pub fn run_phased(cfg: &PhasedConfig, spec: LockSpec) -> PhasedResult {
    let cfg = cfg.clone();
    let sim_cfg = SimConfig {
        processors: cfg.threads,
        ..SimConfig::default()
    };
    let ((total, reconf), _) = sim::run(sim_cfg, move || {
        let lock: Arc<dyn Lock> = spec.build(ctx::current_node());
        let barrier = Barrier::new_local(cfg.threads);
        let t0 = ctx::now();
        let handles: Vec<_> = (1..cfg.threads)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let barrier = barrier.clone();
                let cfg = cfg.clone();
                fork(ProcId(i), format!("w{i}"), move || {
                    worker(&*lock, &barrier, &cfg, false)
                })
            })
            .collect();
        worker(lock.as_ref(), &barrier, &cfg, true);
        for h in handles {
            h.join();
        }
        (ctx::now().since(t0).as_nanos(), lock.stats().reconfigurations)
    })
    .expect("phased simulation runs to completion");
    PhasedResult {
        lock: spec.label(),
        total_nanos: total,
        reconfigurations: reconf,
    }
}

fn worker(lock: &dyn Lock, barrier: &Barrier, cfg: &PhasedConfig, is_solo: bool) {
    for _ in 0..cfg.phases {
        // Solo phase: only thread 0 touches the lock.
        if is_solo {
            for _ in 0..cfg.solo_iters {
                with_lock(lock, || ctx::advance(cfg.solo_cs));
            }
        }
        barrier.wait();
        // Storm phase: everyone hammers with long critical sections.
        for _ in 0..cfg.storm_iters {
            with_lock(lock, || ctx::advance(cfg.storm_cs));
        }
        barrier.wait();
    }
}

/// Compare the adaptive lock against static spin and blocking on the
/// phased workload.
pub fn compare_phased(cfg: &PhasedConfig) -> Vec<PhasedResult> {
    vec![
        run_phased(cfg, LockSpec::Spin),
        run_phased(cfg, LockSpec::Blocking),
        run_phased(cfg, LockSpec::Adaptive { threshold: 2, n: 5 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_lock_actually_adapts_across_phases() {
        let r = run_phased(&PhasedConfig::default(), LockSpec::Adaptive { threshold: 2, n: 5 });
        assert!(
            r.reconfigurations >= 2,
            "phase changes must trigger reconfigurations (got {})",
            r.reconfigurations
        );
    }

    #[test]
    fn static_locks_never_reconfigure() {
        let spin = run_phased(&PhasedConfig::default(), LockSpec::Spin);
        let blocking = run_phased(&PhasedConfig::default(), LockSpec::Blocking);
        assert_eq!(spin.reconfigurations, 0);
        assert_eq!(blocking.reconfigurations, 0);
    }

    #[test]
    fn comparison_is_complete_and_deterministic() {
        let a = compare_phased(&PhasedConfig::default());
        let b = compare_phased(&PhasedConfig::default());
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_nanos, y.total_nanos, "{}", x.lock);
        }
    }

    #[test]
    fn adaptive_is_competitive_with_best_static() {
        // The point of adaptivity: on a phase-changing pattern the
        // adaptive lock should be within a modest factor of the best
        // static choice (it pays monitoring but never stays wrong).
        let out = compare_phased(&PhasedConfig::default());
        let best_static = out[..2].iter().map(|r| r.total_nanos).min().unwrap();
        let adaptive = out[2].total_nanos;
        assert!(
            adaptive < best_static * 13 / 10,
            "adaptive ({adaptive}) should be within 30% of the best static ({best_static})"
        );
    }
}
