//! The critical-section-length sweep behind the paper's Figure 1:
//! application execution time as a function of critical-section length,
//! for pure spin, pure blocking, and combined locks with different
//! initial spin counts.
//!
//! The regime that makes the figure interesting is *more runnable
//! threads than processors*: a spinning waiter then starves same-
//! processor threads of useful work, while a blocking waiter frees the
//! processor but pays the block/unblock cost. Which side wins depends on
//! the critical-section length — and the best combined lock's spin count
//! sits in between, exactly the paper's motivation for adaptivity.

use std::sync::Arc;

use adaptive_locks::{with_lock, Lock};
use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};
use cthreads::fork;
use serde::Serialize;

use crate::spec::LockSpec;

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Processors in the machine.
    pub processors: usize,
    /// Worker threads (more than `processors` to exercise the paper's
    /// multi-threads-per-processor regime).
    pub threads: usize,
    /// Lock/unlock iterations per thread.
    pub iters: u32,
    /// Uncontended "think" work between critical sections.
    pub think: Duration,
    /// Scheduling quantum (preemption matters when spinning).
    pub quantum: Duration,
    /// Seed for the simulator.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            processors: 4,
            threads: 8,
            iters: 40,
            think: Duration::micros(100),
            quantum: Duration::millis(2),
            seed: 0x51ee9,
        }
    }
}

/// One measured point of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Lock variant label.
    pub lock: String,
    /// Critical-section length (ns).
    pub cs_nanos: u64,
    /// Total application execution time (ns of virtual time).
    pub total_nanos: u64,
}

/// Run the workload once for one lock and one critical-section length;
/// returns total virtual execution time.
pub fn run_once(cfg: &SweepConfig, spec: LockSpec, cs: Duration) -> Duration {
    let cfg = cfg.clone();
    let sim_cfg = SimConfig {
        processors: cfg.processors,
        quantum: Some(cfg.quantum),
        seed: cfg.seed,
        ..SimConfig::default()
    };
    let (elapsed, _) = sim::run(sim_cfg, move || {
        let lock: Arc<dyn Lock> = spec.build(ctx::current_node());
        let t0 = ctx::now();
        let handles: Vec<_> = (0..cfg.threads)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let (iters, think) = (cfg.iters, cfg.think);
                fork(ProcId(i % cfg.processors), format!("w{i}"), move || {
                    for _ in 0..iters {
                        with_lock(lock.as_ref(), || ctx::advance(cs));
                        ctx::advance(think);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        ctx::now().since(t0)
    })
    .expect("sweep simulation runs to completion");
    elapsed
}

/// Run the full sweep: every lock at every critical-section length.
pub fn run_sweep(cfg: &SweepConfig, specs: &[LockSpec], cs_lengths: &[Duration]) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(specs.len() * cs_lengths.len());
    for &spec in specs {
        for &cs in cs_lengths {
            let total = run_once(cfg, spec, cs);
            out.push(SweepPoint {
                lock: spec.label(),
                cs_nanos: cs.as_nanos(),
                total_nanos: total.as_nanos(),
            });
        }
    }
    out
}

/// The paper's Figure 1 lock set: pure spin, pure blocking, and
/// combined(1), combined(10), combined(50).
pub fn figure1_locks() -> Vec<LockSpec> {
    vec![
        LockSpec::Spin,
        LockSpec::Blocking,
        LockSpec::Combined(1),
        LockSpec::Combined(10),
        LockSpec::Combined(50),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepConfig {
        SweepConfig {
            processors: 2,
            threads: 4,
            iters: 15,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn longer_critical_sections_take_longer() {
        let cfg = small();
        let short = run_once(&cfg, LockSpec::Blocking, Duration::micros(10));
        let long = run_once(&cfg, LockSpec::Blocking, Duration::micros(2_000));
        assert!(long > short);
    }

    #[test]
    fn blocking_beats_spin_for_long_sections_with_oversubscription() {
        // The paper's core claim: with more threads than processors and
        // long critical sections, spinning wastes the processor.
        let cfg = small();
        let cs = Duration::millis(3);
        let spin = run_once(&cfg, LockSpec::Spin, cs);
        let block = run_once(&cfg, LockSpec::Blocking, cs);
        assert!(
            block < spin,
            "blocking ({block}) must beat spinning ({spin}) for long critical sections"
        );
    }

    #[test]
    fn spin_beats_blocking_for_tiny_sections() {
        // Short critical sections: the block/unblock and context-switch
        // overhead dominates; spinning wins (one thread per processor so
        // spinning wastes nothing).
        let cfg = SweepConfig {
            processors: 2,
            threads: 2,
            iters: 30,
            think: Duration::micros(5),
            ..SweepConfig::default()
        };
        let cs = Duration::micros(5);
        let spin = run_once(&cfg, LockSpec::Spin, cs);
        let block = run_once(&cfg, LockSpec::Blocking, cs);
        assert!(
            spin < block,
            "spin ({spin}) must beat blocking ({block}) for tiny critical sections"
        );
    }

    #[test]
    fn sweep_produces_all_points() {
        let cfg = small();
        let pts = run_sweep(
            &cfg,
            &[LockSpec::Spin, LockSpec::Combined(10)],
            &[Duration::micros(10), Duration::micros(100)],
        );
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.total_nanos > 0));
        assert_eq!(pts[0].lock, "spin");
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = small();
        let a = run_once(&cfg, LockSpec::Combined(10), Duration::micros(500));
        let b = run_once(&cfg, LockSpec::Combined(10), Duration::micros(500));
        assert_eq!(a, b);
    }

    #[test]
    fn figure1_set_has_five_locks() {
        assert_eq!(figure1_locks().len(), 5);
    }
}
