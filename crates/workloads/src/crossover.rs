//! Crossover location: the critical-section length at which blocking
//! overtakes spinning — the quantity the paper's Figure 1 is really
//! about, and the [MS93] claims Section 2 recalls:
//!
//! * "spin locks consistently outperform blocking locks when the number
//!   of processors exceeds the number of threads";
//! * "when multiple threads on each processor are capable of making
//!   progress, the use of blocking is preferred even for fairly small
//!   critical sections".
//!
//! [`find_crossover`] binary-searches the section length where the two
//! total execution times cross; under one thread per processor it should
//! find none (spin wins everywhere in the measured range), and under
//! oversubscription the crossover should move *down* as the
//! threads-per-processor ratio rises.

use butterfly_sim::Duration;

use crate::csweep::{run_once, SweepConfig};
use crate::spec::LockSpec;

/// Result of a crossover search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossover {
    /// Blocking first beats spin at roughly this section length.
    At(Duration),
    /// Spin won across the whole probed range.
    SpinAlways,
    /// Blocking won across the whole probed range.
    BlockingAlways,
}

/// Locate (to `tolerance`) the critical-section length in
/// `[lo, hi]` where blocking's total time first drops below spin's.
/// Assumes the advantage is monotone in the section length, which holds
/// for this workload family.
pub fn find_crossover(
    cfg: &SweepConfig,
    lo: Duration,
    hi: Duration,
    tolerance: Duration,
) -> Crossover {
    assert!(lo < hi, "empty search interval");
    let spin_wins = |cs: Duration| {
        run_once(cfg, LockSpec::Spin, cs) <= run_once(cfg, LockSpec::Blocking, cs)
    };
    if !spin_wins(lo) {
        return Crossover::BlockingAlways;
    }
    if spin_wins(hi) {
        return Crossover::SpinAlways;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tolerance {
        let mid = Duration((lo.as_nanos() + hi.as_nanos()) / 2);
        if spin_wins(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Crossover::At(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(threads_per_proc: usize) -> SweepConfig {
        SweepConfig {
            processors: 2,
            threads: 2 * threads_per_proc,
            iters: 12,
            think: Duration::micros(50),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn one_thread_per_processor_spin_always_wins() {
        // [MS93] claim 1: processors >= threads -> spin outperforms
        // blocking for every section length.
        let c = find_crossover(
            &base(1),
            Duration::micros(5),
            Duration::millis(5),
            Duration::micros(50),
        );
        assert_eq!(c, Crossover::SpinAlways, "got {c:?}");
    }

    #[test]
    fn oversubscription_creates_a_crossover() {
        // [MS93] claim 2: with multiple runnable threads per processor,
        // blocking wins from some section length on.
        let c = find_crossover(
            &base(2),
            Duration::micros(5),
            Duration::millis(5),
            Duration::micros(100),
        );
        match c {
            Crossover::At(d) => {
                assert!(d > Duration::micros(5) && d < Duration::millis(5));
            }
            other => panic!("expected a crossover under oversubscription, got {other:?}"),
        }
    }

    #[test]
    fn heavier_oversubscription_moves_the_crossover_down() {
        let at = |tpp: usize| match find_crossover(
            &base(tpp),
            Duration::micros(5),
            Duration::millis(5),
            Duration::micros(100),
        ) {
            Crossover::At(d) => d,
            Crossover::BlockingAlways => Duration::micros(5),
            Crossover::SpinAlways => Duration::millis(5),
        };
        let x2 = at(2);
        let x4 = at(4);
        assert!(
            x4 <= x2,
            "more threads per processor must not raise the crossover ({x4} vs {x2})"
        );
    }

    #[test]
    #[should_panic(expected = "empty search interval")]
    fn interval_validation() {
        let _ = find_crossover(
            &base(1),
            Duration::millis(1),
            Duration::micros(1),
            Duration::micros(1),
        );
    }
}
