//! Real-data-structure workloads: a lock-protected counter vs a
//! lock-free CAS baseline, and a lock-protected queue and hashmap.
//!
//! The synthetic contention loop prices the *lock*; these price the
//! lock **around real shared state**, the dlock2 benchmark shapes
//! (SNIPPETS.md Snippet 1). The CAS counter is the lower bound a lock
//! must justify itself against: if a lock-protected counter is 10x
//! slower than `fetch_add`, the critical section had better be doing
//! more than incrementing. The queue and hashmap stand in for the
//! pointer-chasing critical sections real services hold locks over.
//!
//! Native-backend only: the CAS baseline *is* real-hardware atomics —
//! the simulator has no meaningful twin for it — and the point of
//! these rows is pricing engines against real memory effects. Every
//! lock-protected structure runs under every [`PolicyChoice`],
//! including the pinned zoo engines and the live-switching
//! `AlgoAdaptive`, with the same per-thread accounting and fairness
//! reporting as the synthetic suite.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use adaptive_native::PolicyChoice;
use serde::Serialize;

use crate::backend::{busy_iters, run_native_workers, saturating_nanos, ThreadSample};
use crate::fairness::spread_stats;
use crate::measure::LatencyHistogram;

/// Bound on live hashmap keys, so the map measures steady-state
/// insert/remove churn instead of unbounded growth.
const KEYSPACE: u64 = 512;

/// Which shared structure a workload hammers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// `AdaptiveMutex<u64>`: lock, increment, unlock.
    Counter,
    /// `AtomicU64::fetch_add` — the lock-free baseline; ignores the
    /// policy choice (there is no lock).
    CasCounter,
    /// `AdaptiveMutex<VecDeque<u64>>`: alternating push-back / pop-front.
    Queue,
    /// `AdaptiveMutex<HashMap<u64, u64>>`: alternating insert / remove
    /// over a bounded keyspace.
    HashMap,
}

impl StructureKind {
    /// Every structure, lock-protected ones first.
    pub const ALL: [StructureKind; 4] = [
        StructureKind::Counter,
        StructureKind::Queue,
        StructureKind::HashMap,
        StructureKind::CasCounter,
    ];

    /// Label used in report rows and BENCH JSON.
    pub fn label(self) -> &'static str {
        match self {
            StructureKind::Counter => "counter",
            StructureKind::CasCounter => "cas-counter",
            StructureKind::Queue => "queue",
            StructureKind::HashMap => "hashmap",
        }
    }

    /// Whether the structure is guarded by an adaptive lock (false for
    /// the lock-free baseline).
    pub fn lock_protected(self) -> bool {
        self != StructureKind::CasCounter
    }
}

/// One structure workload: `threads` workers each perform `iters` ops
/// on one shared structure, with `ncs_iters` of busy work between ops.
#[derive(Debug, Clone, Copy)]
pub struct StructureSpec {
    /// The shared structure under test.
    pub structure: StructureKind,
    /// Worker threads.
    pub threads: usize,
    /// Structure operations per thread.
    pub iters: u32,
    /// Non-critical-section busy-loop iterations between ops.
    pub ncs_iters: u32,
    /// The lock policy / engine (ignored by [`StructureKind::CasCounter`]).
    pub policy: PolicyChoice,
}

impl Default for StructureSpec {
    fn default() -> Self {
        StructureSpec {
            structure: StructureKind::Counter,
            threads: 4,
            iters: 1_000,
            ncs_iters: 100,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
        }
    }
}

/// One measured structure point (native backend).
#[derive(Debug, Clone, Serialize)]
pub struct StructurePoint {
    /// Always `"native"`; present so structure rows can sit in the same
    /// tables as backend-tagged contention rows.
    pub backend: String,
    /// Structure label.
    pub structure: String,
    /// Lock policy label, or `"lock-free"` for the CAS baseline.
    pub policy: String,
    /// Worker threads.
    pub threads: usize,
    /// Ops per thread.
    pub iters: u32,
    /// Non-critical-section busy-loop iterations between ops.
    pub ncs_iters: u32,
    /// Total execution time from the start-barrier release (ns).
    pub total_nanos: u64,
    /// More worker threads than host hardware parallelism.
    pub oversubscribed: bool,
    /// Structure ops per second.
    pub throughput_per_sec: f64,
    /// Total time over total ops (ns) — pace, not latency.
    pub wall_nanos_per_op: f64,
    /// Mean enter-to-acquired latency (ns); for the CAS baseline, the
    /// cost of the atomic op itself.
    pub mean_latency_nanos: f64,
    /// Median per-op latency (ns), from the merged histogram.
    pub p50_latency_nanos: u64,
    /// 99th-percentile per-op latency (ns).
    pub p99_latency_nanos: u64,
    /// Jain's fairness index over per-thread throughput.
    pub fairness_index: f64,
    /// Slowest thread's throughput.
    pub min_thread_ops_per_sec: f64,
    /// Fastest thread's throughput.
    pub max_thread_ops_per_sec: f64,
    /// `max / min` per-thread throughput.
    pub thread_spread: f64,
}

/// Run one structure workload on OS threads.
///
/// Every variant ends with an always-on structural check (`assert!`,
/// not `debug_assert!`): a release-only lost-update bug in any engine
/// fails the workload instead of producing a fast wrong number.
pub fn run_structure(spec: &StructureSpec) -> StructurePoint {
    let threads = spec.threads.max(1);
    let iters = spec.iters;
    let ncs = spec.ncs_iters;
    let expected = threads as u64 * u64::from(iters);

    let (total_nanos, samples, hist): (u64, Vec<ThreadSample>, LatencyHistogram) =
        match spec.structure {
        StructureKind::Counter => {
            let m = spec.policy.build_mutex(0u64);
            let r = run_native_workers(threads, Duration::ZERO, |_| {
                let mut latency = 0u64;
                let mut hist = LatencyHistogram::new();
                for _ in 0..iters {
                    let enter = Instant::now();
                    m.with_locked(|v| {
                        let waited = saturating_nanos(enter.elapsed());
                        latency += waited;
                        hist.record(waited);
                        *v += 1;
                    });
                    busy_iters(ncs);
                }
                (u64::from(iters), latency, hist)
            });
            assert_eq!(m.into_inner(), expected, "lost update in lock-protected counter");
            r
        }
        StructureKind::CasCounter => {
            let c = AtomicU64::new(0);
            let r = run_native_workers(threads, Duration::ZERO, |_| {
                let mut latency = 0u64;
                let mut hist = LatencyHistogram::new();
                for _ in 0..iters {
                    let enter = Instant::now();
                    c.fetch_add(1, Ordering::Relaxed);
                    let waited = saturating_nanos(enter.elapsed());
                    latency += waited;
                    hist.record(waited);
                    busy_iters(ncs);
                }
                (u64::from(iters), latency, hist)
            });
            assert_eq!(c.load(Ordering::Relaxed), expected, "lost update in CAS counter");
            r
        }
        StructureKind::Queue => {
            let m = spec.policy.build_mutex(VecDeque::<u64>::new());
            let pushes = AtomicU64::new(0);
            let pops = AtomicU64::new(0);
            let r = run_native_workers(threads, Duration::ZERO, |t| {
                let mut latency = 0u64;
                let mut hist = LatencyHistogram::new();
                let (mut my_pushes, mut my_pops) = (0u64, 0u64);
                for i in 0..u64::from(iters) {
                    let enter = Instant::now();
                    if i % 2 == 0 {
                        m.with_locked(|q| {
                            let waited = saturating_nanos(enter.elapsed());
                            latency += waited;
                            hist.record(waited);
                            q.push_back(t as u64);
                        });
                        my_pushes += 1;
                    } else {
                        let popped = m.with_locked(|q| {
                            let waited = saturating_nanos(enter.elapsed());
                            latency += waited;
                            hist.record(waited);
                            q.pop_front().is_some()
                        });
                        if popped {
                            my_pops += 1;
                        }
                    }
                    busy_iters(ncs);
                }
                pushes.fetch_add(my_pushes, Ordering::Relaxed);
                pops.fetch_add(my_pops, Ordering::Relaxed);
                (u64::from(iters), latency, hist)
            });
            let left = m.into_inner().len() as u64;
            assert_eq!(
                left + pops.load(Ordering::Relaxed),
                pushes.load(Ordering::Relaxed),
                "queue lost or duplicated elements"
            );
            r
        }
        StructureKind::HashMap => {
            let m = spec.policy.build_mutex(HashMap::<u64, u64>::new());
            // Signed: threads share the keyspace, so one thread can
            // remove what another inserted and run a negative balance.
            let net = AtomicI64::new(0);
            let r = run_native_workers(threads, Duration::ZERO, |t| {
                let mut latency = 0u64;
                let mut hist = LatencyHistogram::new();
                let mut my_net = 0i64;
                for i in 0..u64::from(iters) {
                    // Spread keys across the bounded keyspace; odd ops
                    // remove what an even op may have inserted.
                    let key = (t as u64).wrapping_mul(0x9e37_79b9).wrapping_add(i / 2) % KEYSPACE;
                    let enter = Instant::now();
                    if i % 2 == 0 {
                        let fresh = m.with_locked(|h| {
                            let waited = saturating_nanos(enter.elapsed());
                            latency += waited;
                            hist.record(waited);
                            h.insert(key, i).is_none()
                        });
                        if fresh {
                            my_net += 1;
                        }
                    } else {
                        let hit = m.with_locked(|h| {
                            let waited = saturating_nanos(enter.elapsed());
                            latency += waited;
                            hist.record(waited);
                            h.remove(&key).is_some()
                        });
                        if hit {
                            my_net -= 1;
                        }
                    }
                    busy_iters(ncs);
                }
                net.fetch_add(my_net, Ordering::Relaxed);
                (u64::from(iters), latency, hist)
            });
            let map = m.into_inner();
            assert!(map.len() as u64 <= KEYSPACE, "hashmap escaped its bounded keyspace");
            assert_eq!(
                map.len() as i64,
                net.load(Ordering::Relaxed),
                "hashmap occupancy disagrees with the workers' net-insert tally"
            );
            r
        }
    };

    let s = spread_stats(&samples);
    StructurePoint {
        backend: "native".into(),
        structure: spec.structure.label().into(),
        policy: if spec.structure.lock_protected() {
            spec.policy.label()
        } else {
            "lock-free".into()
        },
        threads,
        iters,
        ncs_iters: ncs,
        total_nanos,
        oversubscribed: threads > std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput_per_sec: s.total_ops as f64 / (total_nanos.max(1) as f64 / 1e9),
        wall_nanos_per_op: total_nanos as f64 / s.total_ops.max(1) as f64,
        mean_latency_nanos: s.mean_latency_nanos,
        p50_latency_nanos: hist.percentile(50.0),
        p99_latency_nanos: hist.percentile(99.0),
        fairness_index: s.fairness_index,
        min_thread_ops_per_sec: s.min_thread_ops_per_sec,
        max_thread_ops_per_sec: s.max_thread_ops_per_sec,
        thread_spread: s.thread_spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::LockAlgorithm;

    fn quick(structure: StructureKind, policy: PolicyChoice) -> StructureSpec {
        StructureSpec { structure, threads: 3, iters: 40, ncs_iters: 20, policy }
    }

    #[test]
    fn every_structure_runs_and_reports_spread() {
        for structure in StructureKind::ALL {
            let p = run_structure(&quick(structure, PolicyChoice::FixedSpin(32)));
            assert_eq!(p.structure, structure.label());
            assert!(p.total_nanos > 0, "{}", p.structure);
            assert!(p.throughput_per_sec > 0.0);
            assert!(p.fairness_index > 0.0 && p.fairness_index <= 1.0 + 1e-9);
            assert!(p.thread_spread >= 1.0);
        }
    }

    #[test]
    fn lock_structures_run_under_every_engine_and_the_switcher() {
        let mut policies = vec![
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::AlgoAdaptive { high_water: 2, patience: 2 },
        ];
        policies.extend(LockAlgorithm::ALL.map(PolicyChoice::Algorithm));
        for policy in policies {
            for structure in [StructureKind::Counter, StructureKind::Queue, StructureKind::HashMap]
            {
                let p = run_structure(&quick(structure, policy));
                assert!(p.total_nanos > 0, "{} under {}", p.structure, p.policy);
            }
        }
    }

    #[test]
    fn cas_baseline_ignores_the_policy_label() {
        let p = run_structure(&quick(StructureKind::CasCounter, PolicyChoice::PureBlocking));
        assert_eq!(p.policy, "lock-free");
        assert_eq!(p.structure, "cas-counter");
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = StructureKind::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StructureKind::ALL.len());
    }
}
