//! Micro-measurements behind the paper's Tables 4, 5, and 8: latencies
//! of individual lock, unlock, and configuration operations for locks
//! placed in local vs remote memory.

use std::sync::Arc;

use adaptive_locks::{agent, Lock, ReconfigurableLock, SchedKind, WaitingPolicy};
use adaptive_locks::LockCosts;
use butterfly_sim::{self as sim, ctx, Duration, NodeId, SimConfig, SimWord};

use crate::spec::LockSpec;

/// Mean `(lock, unlock)` latency of an uncontended lock homed on `home`,
/// exercised by a thread on processor 0, over `iters` iterations.
pub fn lock_unlock_cost(spec: LockSpec, home: NodeId, iters: u32) -> (Duration, Duration) {
    let processors = home.0 + 1;
    let ((lock_ns, unlock_ns), _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let lock: Arc<dyn Lock> = spec.build(home);
            let (mut lock_total, mut unlock_total) = (0u64, 0u64);
            for _ in 0..iters {
                let t0 = ctx::now();
                lock.lock();
                let t1 = ctx::now();
                lock.unlock();
                let t2 = ctx::now();
                lock_total += t1.since(t0).as_nanos();
                unlock_total += t2.since(t1).as_nanos();
            }
            (lock_total / iters as u64, unlock_total / iters as u64)
        },
    )
    .expect("latency simulation runs to completion");
    (Duration(lock_ns), Duration(unlock_ns))
}

/// Latency of the raw hardware `atomior` primitive against `home`
/// (the paper's first row of Table 4: the primitive everything else is
/// built from, measured without any lock-package overhead).
pub fn atomior_cost(home: NodeId, iters: u32) -> Duration {
    let processors = home.0 + 1;
    let (ns, _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let w = SimWord::new_on(home, 0);
            let t0 = ctx::now();
            for _ in 0..iters {
                w.atomior(1);
                w.store(0);
            }
            // Subtract the paired clear so only the atomior remains.
            let per_pair = ctx::now().since(t0).as_nanos() / iters as u64;
            let t1 = ctx::now();
            for _ in 0..iters {
                w.store(0);
            }
            let per_store = ctx::now().since(t1).as_nanos() / iters as u64;
            per_pair - per_store
        },
    )
    .expect("atomior simulation runs to completion");
    Duration(ns)
}

/// The costs of the adaptation mechanisms (Table 8), measured against a
/// reconfigurable lock homed on `home`:
/// `(acquisition, configure_waiting_policy, configure_scheduler,
/// monitor_one_state_variable)`.
pub fn config_op_costs(home: NodeId) -> (Duration, Duration, Duration, Duration) {
    let processors = home.0 + 1;
    let (out, _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let lock = ReconfigurableLock::with_parts(
                "measured",
                home,
                WaitingPolicy::default(),
                SchedKind::Fcfs,
                LockCosts::default(),
            );
            let me = agent();

            let t0 = ctx::now();
            lock.acquire_attr(me, "spin-time")
                .expect("attribute exists and is uncontended here");
            let acq = ctx::now().since(t0);
            lock.release_attr(me, "spin-time")
                .expect("held by this agent since the acquire above");

            let t0 = ctx::now();
            lock.configure_policy(me, WaitingPolicy::pure_spin())
                .expect("no other agent holds this lock's attributes");
            let cfg_policy = ctx::now().since(t0);

            let t0 = ctx::now();
            lock.configure_scheduler(SchedKind::Handoff);
            let cfg_sched = ctx::now().since(t0);

            let t0 = ctx::now();
            let _ = lock.sense_waiting();
            let monitor = ctx::now().since(t0);

            (acq, cfg_policy, cfg_sched, monitor)
        },
    )
    .expect("config-cost simulation runs to completion");
    out
}

/// The abstract `n1 R n2 W` costs of the two configure operations, read
/// off the transition log (the paper's cost formalism, independent of
/// the latency model).
pub fn config_op_rw_costs() -> (adaptive_core::OpCost, adaptive_core::OpCost) {
    let (out, _) = sim::run(SimConfig::butterfly(1), || {
        let lock = ReconfigurableLock::new_local();
        lock.configure_policy(agent(), WaitingPolicy::pure_spin())
            .expect("no other agent holds this lock's attributes");
        lock.configure_scheduler(SchedKind::Priority);
        let log = lock.transition_log();
        let ts = log.transitions();
        (ts[1].cost, ts[2].cost)
    })
    .expect("cost-model simulation runs to completion");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_core::OpCost;

    #[test]
    fn table4_shape_local() {
        // atomior < spin-lock lock-op < blocking-lock lock-op.
        let home = NodeId(0);
        let atomior = atomior_cost(home, 16);
        let (spin, _) = lock_unlock_cost(LockSpec::Spin, home, 16);
        let (blocking, _) = lock_unlock_cost(LockSpec::Blocking, home, 16);
        let (adaptive, _) = lock_unlock_cost(LockSpec::Adaptive { threshold: 3, n: 5 }, home, 16);
        assert!(atomior < spin, "atomior {atomior} !< spin {spin}");
        assert!(spin < blocking, "spin {spin} !< blocking {blocking}");
        // The paper's point: an uncontended adaptive lock op costs about
        // the same as a spin lock op, far below blocking.
        assert!(adaptive < blocking);
        assert!(adaptive.as_nanos() <= spin.as_nanos() + 2_000);
    }

    #[test]
    fn remote_ops_cost_more_than_local() {
        let (l_lock, l_unlock) = lock_unlock_cost(LockSpec::Spin, NodeId(0), 16);
        let (r_lock, r_unlock) = lock_unlock_cost(LockSpec::Spin, NodeId(2), 16);
        assert!(r_lock > l_lock);
        assert!(r_unlock > l_unlock);
    }

    #[test]
    fn table5_shape_unlock_costs() {
        // Spin unlock is a store; blocking unlock checks for blocked
        // threads (guard + queue) and costs much more. The adaptive
        // lock's unlock sits in between (its slow path takes the guard).
        let home = NodeId(0);
        let (_, spin) = lock_unlock_cost(LockSpec::Spin, home, 16);
        let (_, blocking) = lock_unlock_cost(LockSpec::Blocking, home, 16);
        assert!(
            blocking > spin,
            "blocking unlock {blocking} !> spin unlock {spin}"
        );
    }

    #[test]
    fn table8_shape_config_costs() {
        let (acq, cfg_policy, cfg_sched, monitor) = config_op_costs(NodeId(0));
        // Scheduler reconfiguration (5 writes) > waiting-policy
        // reconfiguration (1R 1W).
        assert!(cfg_sched > cfg_policy, "{cfg_sched} !> {cfg_policy}");
        // Monitoring one state variable carries processing overhead and
        // is the most expensive mechanism, as in the paper.
        assert!(monitor > cfg_sched, "{monitor} !> {cfg_sched}");
        assert!(acq > Duration::ZERO);
    }

    #[test]
    fn rw_cost_model_matches_paper() {
        let (policy, sched) = config_op_rw_costs();
        assert_eq!(policy, OpCost::new(1, 1), "waiting-policy change is 1R 1W");
        assert_eq!(sched, OpCost::new(0, 5), "scheduler change is 5W");
    }

    #[test]
    fn remote_config_ops_cost_more() {
        let local = config_op_costs(NodeId(0));
        let remote = config_op_costs(NodeId(2));
        assert!(remote.0 > local.0);
        assert!(remote.1 > local.1);
        assert!(remote.2 > local.2);
    }
}
