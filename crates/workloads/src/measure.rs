//! Micro-measurements behind the paper's Tables 4, 5, and 8: latencies
//! of individual lock, unlock, and configuration operations for locks
//! placed in local vs remote memory — plus the shared fixed-bucket
//! log-scale [`LatencyHistogram`] every contention/fairness/service row
//! records real percentiles through.

use std::sync::Arc;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding relative error at
/// `1 / 2^SUB_BITS` = 12.5%.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// Values below `2^(SUB_BITS + 1)` get an exact bucket each.
const EXACT: u64 = SUBS * 2;
/// Octaves above the exact region for a u64 value domain.
const OCTAVES: usize = 60;
/// Total bucket count: the exact region plus `SUBS` per octave.
const BUCKETS: usize = EXACT as usize + OCTAVES * SUBS as usize;

/// Fixed-bucket log-scale latency histogram (nanoseconds).
///
/// Constant memory (496 `u64` buckets), O(1) insert, ≤ 12.5% relative
/// error on reported quantiles — the standard HdrHistogram-style shape,
/// sized so every worker thread can own one and merge at the end.
/// Values are recorded exactly below 16 ns and bucketed by
/// `(octave, 1/8th-of-octave)` above.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    total: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new([0u64; BUCKETS]),
            count: 0,
            total: 0,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < EXACT {
            return value as usize;
        }
        // Highest set bit is >= SUB_BITS + 1 here.
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (value >> shift) - SUBS;
        (EXACT + u64::from(shift - 1) * SUBS + sub) as usize
    }

    /// Upper bound (inclusive) of the bucket at `index` — what
    /// percentile queries report.
    fn bucket_upper(index: usize) -> u64 {
        let index = index as u64;
        if index < EXACT {
            return index;
        }
        let shift = (index - EXACT) / SUBS + 1;
        let sub = (index - EXACT) % SUBS;
        ((SUBS + sub + 1) << shift) - 1
    }

    /// Record one latency sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::index_of(nanos)] += 1;
        self.count += 1;
        self.total += u128::from(nanos);
        self.max = self.max.max(nanos);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded samples, in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total as f64 / self.count as f64
    }

    /// Value at or below which `pct`% of samples fall (bucket upper
    /// bound; within 12.5% of the true quantile). Returns 0 on an empty
    /// histogram.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the observed maximum.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

use adaptive_locks::{agent, Lock, ReconfigurableLock, SchedKind, WaitingPolicy};
use adaptive_locks::LockCosts;
use butterfly_sim::{self as sim, ctx, Duration, NodeId, SimConfig, SimWord};

use crate::spec::LockSpec;

/// Mean `(lock, unlock)` latency of an uncontended lock homed on `home`,
/// exercised by a thread on processor 0, over `iters` iterations.
pub fn lock_unlock_cost(spec: LockSpec, home: NodeId, iters: u32) -> (Duration, Duration) {
    let processors = home.0 + 1;
    let ((lock_ns, unlock_ns), _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let lock: Arc<dyn Lock> = spec.build(home);
            let (mut lock_total, mut unlock_total) = (0u64, 0u64);
            for _ in 0..iters {
                let t0 = ctx::now();
                lock.lock();
                let t1 = ctx::now();
                lock.unlock();
                let t2 = ctx::now();
                lock_total += t1.since(t0).as_nanos();
                unlock_total += t2.since(t1).as_nanos();
            }
            (lock_total / iters as u64, unlock_total / iters as u64)
        },
    )
    .expect("latency simulation runs to completion");
    (Duration(lock_ns), Duration(unlock_ns))
}

/// Latency of the raw hardware `atomior` primitive against `home`
/// (the paper's first row of Table 4: the primitive everything else is
/// built from, measured without any lock-package overhead).
pub fn atomior_cost(home: NodeId, iters: u32) -> Duration {
    let processors = home.0 + 1;
    let (ns, _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let w = SimWord::new_on(home, 0);
            let t0 = ctx::now();
            for _ in 0..iters {
                w.atomior(1);
                w.store(0);
            }
            // Subtract the paired clear so only the atomior remains.
            let per_pair = ctx::now().since(t0).as_nanos() / iters as u64;
            let t1 = ctx::now();
            for _ in 0..iters {
                w.store(0);
            }
            let per_store = ctx::now().since(t1).as_nanos() / iters as u64;
            per_pair - per_store
        },
    )
    .expect("atomior simulation runs to completion");
    Duration(ns)
}

/// The costs of the adaptation mechanisms (Table 8), measured against a
/// reconfigurable lock homed on `home`:
/// `(acquisition, configure_waiting_policy, configure_scheduler,
/// monitor_one_state_variable)`.
pub fn config_op_costs(home: NodeId) -> (Duration, Duration, Duration, Duration) {
    let processors = home.0 + 1;
    let (out, _) = sim::run(
        SimConfig {
            processors: processors.max(1),
            ..SimConfig::default()
        },
        move || {
            let lock = ReconfigurableLock::with_parts(
                "measured",
                home,
                WaitingPolicy::default(),
                SchedKind::Fcfs,
                LockCosts::default(),
            );
            let me = agent();

            let t0 = ctx::now();
            lock.acquire_attr(me, "spin-time")
                .expect("attribute exists and is uncontended here");
            let acq = ctx::now().since(t0);
            lock.release_attr(me, "spin-time")
                .expect("held by this agent since the acquire above");

            let t0 = ctx::now();
            lock.configure_policy(me, WaitingPolicy::pure_spin())
                .expect("no other agent holds this lock's attributes");
            let cfg_policy = ctx::now().since(t0);

            let t0 = ctx::now();
            lock.configure_scheduler(SchedKind::Handoff);
            let cfg_sched = ctx::now().since(t0);

            let t0 = ctx::now();
            let _ = lock.sense_waiting();
            let monitor = ctx::now().since(t0);

            (acq, cfg_policy, cfg_sched, monitor)
        },
    )
    .expect("config-cost simulation runs to completion");
    out
}

/// The abstract `n1 R n2 W` costs of the two configure operations, read
/// off the transition log (the paper's cost formalism, independent of
/// the latency model).
pub fn config_op_rw_costs() -> (adaptive_core::OpCost, adaptive_core::OpCost) {
    let (out, _) = sim::run(SimConfig::butterfly(1), || {
        let lock = ReconfigurableLock::new_local();
        lock.configure_policy(agent(), WaitingPolicy::pure_spin())
            .expect("no other agent holds this lock's attributes");
        lock.configure_scheduler(SchedKind::Priority);
        let log = lock.transition_log();
        let ts = log.transitions();
        (ts[1].cost, ts[2].cost)
    })
    .expect("cost-model simulation runs to completion");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_core::OpCost;

    #[test]
    fn table4_shape_local() {
        // atomior < spin-lock lock-op < blocking-lock lock-op.
        let home = NodeId(0);
        let atomior = atomior_cost(home, 16);
        let (spin, _) = lock_unlock_cost(LockSpec::Spin, home, 16);
        let (blocking, _) = lock_unlock_cost(LockSpec::Blocking, home, 16);
        let (adaptive, _) = lock_unlock_cost(LockSpec::Adaptive { threshold: 3, n: 5 }, home, 16);
        assert!(atomior < spin, "atomior {atomior} !< spin {spin}");
        assert!(spin < blocking, "spin {spin} !< blocking {blocking}");
        // The paper's point: an uncontended adaptive lock op costs about
        // the same as a spin lock op, far below blocking.
        assert!(adaptive < blocking);
        assert!(adaptive.as_nanos() <= spin.as_nanos() + 2_000);
    }

    #[test]
    fn remote_ops_cost_more_than_local() {
        let (l_lock, l_unlock) = lock_unlock_cost(LockSpec::Spin, NodeId(0), 16);
        let (r_lock, r_unlock) = lock_unlock_cost(LockSpec::Spin, NodeId(2), 16);
        assert!(r_lock > l_lock);
        assert!(r_unlock > l_unlock);
    }

    #[test]
    fn table5_shape_unlock_costs() {
        // Spin unlock is a store; blocking unlock checks for blocked
        // threads (guard + queue) and costs much more. The adaptive
        // lock's unlock sits in between (its slow path takes the guard).
        let home = NodeId(0);
        let (_, spin) = lock_unlock_cost(LockSpec::Spin, home, 16);
        let (_, blocking) = lock_unlock_cost(LockSpec::Blocking, home, 16);
        assert!(
            blocking > spin,
            "blocking unlock {blocking} !> spin unlock {spin}"
        );
    }

    #[test]
    fn table8_shape_config_costs() {
        let (acq, cfg_policy, cfg_sched, monitor) = config_op_costs(NodeId(0));
        // Scheduler reconfiguration (5 writes) > waiting-policy
        // reconfiguration (1R 1W).
        assert!(cfg_sched > cfg_policy, "{cfg_sched} !> {cfg_policy}");
        // Monitoring one state variable carries processing overhead and
        // is the most expensive mechanism, as in the paper.
        assert!(monitor > cfg_sched, "{monitor} !> {cfg_sched}");
        assert!(acq > Duration::ZERO);
    }

    #[test]
    fn rw_cost_model_matches_paper() {
        let (policy, sched) = config_op_rw_costs();
        assert_eq!(policy, OpCost::new(1, 1), "waiting-policy change is 1R 1W");
        assert_eq!(sched, OpCost::new(0, 5), "scheduler change is 5W");
    }

    #[test]
    fn remote_config_ops_cost_more() {
        let local = config_op_costs(NodeId(0));
        let remote = config_op_costs(NodeId(2));
        assert!(remote.0 > local.0);
        assert!(remote.1 > local.1);
        assert!(remote.2 > local.2);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.percentile(100.0), 15);
        // The first sample (0) is the smallest; p1 lands in bucket 0.
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn histogram_percentiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, 50_000_000, u64::from(u32::MAX) * 7] {
            let mut single = LatencyHistogram::new();
            single.record(v);
            let got = single.percentile(50.0);
            assert!(got >= v, "bucket upper bound {got} must cover {v}");
            assert!(
                (got - v) as f64 <= v as f64 * 0.125 + 1.0,
                "value {v} reported as {got}: > 12.5% error"
            );
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn histogram_percentile_ordering_and_mean() {
        let mut h = LatencyHistogram::new();
        // 90 fast ops at 100ns, 9 at 10µs, 1 at 1ms.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let (p50, p90, p99, p999) = (
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.percentile(99.9),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!((100..200).contains(&p50), "p50 {p50} should sit at ~100ns");
        assert!((10_000..12_000).contains(&p99), "p99 {p99} should sit at ~10µs");
        assert_eq!(p999, 1_000_000);
        let mean = h.mean();
        assert!((mean - 10_990.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for pct in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(pct), both.percentile(pct));
        }
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
