//! Open-loop service load generator: millions of simulated users
//! against the sharded adaptive store.
//!
//! ## Why open-loop
//!
//! A closed-loop driver (each worker fires its next request only after
//! the previous one completes) commits *coordinated omission*: when the
//! service stalls, the driver politely stops offering load, so the
//! stall never shows up in the latency record. Here every worker
//! precomputes an **arrival schedule** — the times its users would have
//! hit the service — and each op's latency is measured from its
//! *scheduled* arrival to completion. A worker that falls behind does
//! not wait for its schedule to catch up; the backlog is charged to the
//! ops that queued behind the stall, exactly as real users would have
//! experienced it.
//!
//! ## Workload shape
//!
//! * **Zipfian key skew** ([`ZipfSampler`], configurable exponent `s`):
//!   rank 0 is the hottest key. The store's router scrambles keys, so
//!   hot ranks land on unrelated shards — heat concentrates on a few
//!   shards, the long tail stays cold, and per-shard lock divergence
//!   has something to diverge over.
//! * **Bursty arrivals**: on/off phases over a jittered paced schedule
//!   ([`arrival_schedule`], deterministic per seed), so each burst
//!   front slams the locks and the off-phase lets adaptation settle.
//! * **Mixed read/write ratio**: reads are `get`, writes are
//!   `increment` — which keeps the *conservation oracle* exact: after
//!   the run, the store's summed counters must equal the number of
//!   writes applied, across every split the run performed.
//!
//! Latencies land in the shared [`LatencyHistogram`], so the row
//! reports real p50/p90/p99/p999, not means.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use adaptive_control::{BreakerHub, ControlPlane};
use adaptive_service::{divergence, scramble, DivergenceVerdict, ServiceConfig, ShardSnapshot, ShardedStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use thread_monitor::SnapshotSink;

use crate::backend::{busy_iters, saturating_nanos};
use crate::measure::LatencyHistogram;

/// Zipfian key sampler over ranks `0..n` (rank 0 hottest), via an
/// exact CDF table — `O(n)` build, `O(log n)` per sample, correct for
/// any exponent `s ≥ 0` (`s = 0` is uniform).
pub struct ZipfSampler {
    cdf: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// Sampler over `n` keys with exponent `s`.
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(s).recip();
            cdf.push(acc);
        }
        ZipfSampler { total: acc, cdf }
    }

    /// Keyspace size.
    pub fn keyspace(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draw one key (0-based rank).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u = rng.gen::<f64>() * self.total;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }
}

/// One service load workload.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLoadSpec {
    /// Concurrent workers (each multiplexing many simulated users).
    pub workers: usize,
    /// Scheduled arrivals per worker.
    pub ops_per_worker: u32,
    /// Distinct keys.
    pub keyspace: u64,
    /// Zipf exponent (0 = uniform; ≥ 1 = heavily skewed).
    pub zipf_s: f64,
    /// Percentage of ops that are reads (`get`); the rest are
    /// `increment` writes.
    pub read_pct: u32,
    /// Busy-loop iterations a read performs inside the shard critical
    /// section — the per-request processing (decode, serialize) a real
    /// service does while the record is pinned; the service-scale
    /// analogue of every other workload's `cs_iters` knob.
    pub read_work_iters: u32,
    /// Busy-loop iterations a write performs inside the shard critical
    /// section (validation before the stored value changes).
    pub write_work_iters: u32,
    /// Offered arrival rate per worker during an on-phase (ops/sec).
    pub rate_per_worker: f64,
    /// Burst on-phase length (ns).
    pub burst_on_nanos: u64,
    /// Burst off-phase length (ns); 0 = steady arrivals.
    pub burst_off_nanos: u64,
    /// Store configuration (shard count, policy, split thresholds).
    pub config: ServiceConfig,
    /// Interval between resharding maintenance passes; zero disables
    /// the maintenance thread entirely.
    pub maintenance_every: Duration,
    /// Register shards with a [`BreakerHub`], run its poll loop, serve
    /// the command router on a Unix socket, and stream snapshot pages
    /// to a sink for the duration of the run.
    pub wire_control: bool,
    /// Schedule/workload seed.
    pub seed: u64,
}

impl Default for ServiceLoadSpec {
    fn default() -> Self {
        ServiceLoadSpec {
            workers: 4,
            ops_per_worker: 10_000,
            keyspace: 100_000,
            zipf_s: 1.1,
            read_pct: 80,
            read_work_iters: 0,
            write_work_iters: 0,
            rate_per_worker: 200_000.0,
            burst_on_nanos: 20_000_000,
            burst_off_nanos: 5_000_000,
            config: ServiceConfig::default(),
            maintenance_every: Duration::from_millis(5),
            wire_control: false,
            seed: 0x5eed,
        }
    }
}

/// One measured service load point.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceLoadPoint {
    /// Shard-lock policy label.
    pub policy: String,
    /// Concurrent workers.
    pub workers: usize,
    /// Completed ops (reads + writes).
    pub ops: u64,
    /// Writes applied (the conservation oracle's expected total).
    pub writes: u64,
    /// Distinct keys offered.
    pub keyspace: u64,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// Read percentage.
    pub read_pct: u32,
    /// Shards at start.
    pub shards_initial: usize,
    /// Shards at end (> initial when resharding fired).
    pub shards_final: usize,
    /// Splits performed during the run.
    pub splits: u64,
    /// Wall time of the measured window (ns).
    pub total_nanos: u64,
    /// More workers than host hardware parallelism.
    pub oversubscribed: bool,
    /// Completed ops per second of wall time.
    pub throughput_per_sec: f64,
    /// Mean enter-to-complete latency (ns), from scheduled arrival.
    pub mean_latency_nanos: f64,
    /// Median latency (ns).
    pub p50_latency_nanos: u64,
    /// 90th-percentile latency (ns).
    pub p90_latency_nanos: u64,
    /// 99th-percentile latency (ns).
    pub p99_latency_nanos: u64,
    /// 99.9th-percentile latency (ns).
    pub p999_latency_nanos: u64,
    /// Worst single op (ns, exact).
    pub max_latency_nanos: u64,
    /// Per-shard end-of-run configuration evidence.
    pub shards: Vec<ShardSnapshot>,
    /// Hot-vs-cold configuration divergence verdict.
    pub divergence: Option<DivergenceVerdict>,
    /// Control-plane wiring evidence (when enabled): targets the socket
    /// command router listed, and the byte length of the last streamed
    /// snapshot page.
    pub control_targets: Option<usize>,
    /// Length of the last snapshot page streamed to the sink.
    pub control_snapshot_bytes: Option<usize>,
}

/// The deterministic arrival schedule for one worker: `ops_per_worker`
/// scheduled enter times (ns from the epoch), nondecreasing, jitter-
/// paced at `rate_per_worker` during on-phases and silent during
/// off-phases. Pure function of `(spec, worker)` — same seed, same
/// schedule.
pub fn arrival_schedule(spec: &ServiceLoadSpec, worker: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ scramble(worker as u64 + 1));
    let mean_gap = 1e9 / spec.rate_per_worker.max(1.0);
    let on = spec.burst_on_nanos.max(1) as f64;
    let period = on + spec.burst_off_nanos as f64;
    let mut t = 0.0f64;
    (0..spec.ops_per_worker)
        .map(|_| {
            // Jittered pacing: gaps in [0.5, 1.5) × mean keep the rate
            // while decorrelating workers' arrival instants.
            t += mean_gap * (0.5 + rng.gen::<f64>());
            if spec.burst_off_nanos > 0 {
                let pos = t % period;
                if pos >= on {
                    // Fell into an off-phase: next user arrives when
                    // the next burst opens.
                    t += period - pos;
                }
            }
            t as u64
        })
        .collect()
}

/// Busy-wait (sleeping through long gaps) until `sched` ns past the
/// epoch. Returns immediately if the moment already passed — the
/// open-loop contract.
fn wait_until(epoch: Instant, sched: u64) {
    loop {
        let now = saturating_nanos(epoch.elapsed());
        if now >= sched {
            return;
        }
        let gap = sched - now;
        if gap > 1_000_000 {
            std::thread::sleep(Duration::from_nanos(gap / 2));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Everything the control satellite wires up for the duration of a run.
struct ControlWiring {
    hub_handle: adaptive_control::HubHandle,
    sink: SnapshotSink,
    #[cfg(unix)]
    socket: Option<adaptive_control::SocketServer>,
    plane: ControlPlane,
}

fn wire_control(store: &Arc<ShardedStore>, seed: u64) -> ControlWiring {
    let hub = Arc::new(BreakerHub::default());
    store.register_with_hub(Arc::clone(&hub));
    let hub_handle = hub.spawn(Duration::from_millis(10));
    let sink_plane = ControlPlane::new(Arc::clone(&hub));
    let sink = SnapshotSink::spawn(Duration::from_millis(10), move || sink_plane.snapshot());
    #[cfg(unix)]
    let socket = {
        let path = std::env::temp_dir().join(format!(
            "adaptive-service-{}-{seed:x}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        adaptive_control::SocketServer::bind(&path, ControlPlane::new(Arc::clone(&hub))).ok()
    };
    ControlWiring {
        hub_handle,
        sink,
        #[cfg(unix)]
        socket,
        plane: ControlPlane::new(hub),
    }
}

/// Run one open-loop service load workload. Panics (always-on assert)
/// if the store's summed counters disagree with the writes applied —
/// conservation across concurrent ops and any mid-run resharding.
pub fn run_service_load(spec: &ServiceLoadSpec) -> ServiceLoadPoint {
    let store = Arc::new(ShardedStore::new(spec.config));
    let shards_initial = store.shard_count();
    let zipf = ZipfSampler::new(spec.keyspace, spec.zipf_s);
    let writes_total = AtomicU64::new(0);

    let control = spec.wire_control.then(|| wire_control(&store, spec.seed));

    // Maintenance ticker: resharding happens here, never inline in an
    // op, so splits tax a background thread instead of a user's tail.
    let stop_maint = Arc::new(AtomicBool::new(false));
    let maint = (!spec.maintenance_every.is_zero()).then(|| {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop_maint);
        let every = spec.maintenance_every;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                store.maintenance();
                std::thread::park_timeout(every);
            }
        })
    });

    let nworkers = spec.workers.max(1);
    let barrier = Barrier::new(nworkers + 1);
    let epoch: OnceLock<Instant> = OnceLock::new();
    let (total_nanos, hist) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nworkers)
            .map(|w| {
                let (barrier, epoch) = (&barrier, &epoch);
                let (store, zipf, writes_total) = (&store, &zipf, &writes_total);
                let schedule = arrival_schedule(spec, w);
                let read_pct = spec.read_pct.min(100);
                let (read_work, write_work) = (spec.read_work_iters, spec.write_work_iters);
                let mut rng = StdRng::seed_from_u64(spec.seed ^ scramble(0x10_000 + w as u64));
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut writes = 0u64;
                    barrier.wait();
                    let t0 = epoch.get().copied().unwrap_or_else(Instant::now);
                    for &sched in &schedule {
                        wait_until(t0, sched);
                        let key = zipf.sample(&mut rng);
                        if rng.gen_range(0..100u32) < read_pct {
                            store.read(key, |v| {
                                busy_iters(read_work);
                                v
                            });
                        } else {
                            store.update(key, |v| {
                                busy_iters(write_work);
                                v.unwrap_or(0).wrapping_add(1)
                            });
                            writes += 1;
                        }
                        let done = saturating_nanos(t0.elapsed());
                        hist.record(done.saturating_sub(sched));
                    }
                    writes_total.fetch_add(writes, Ordering::Relaxed);
                    hist
                })
            })
            .collect();
        let t0 = Instant::now();
        let _ = epoch.set(t0);
        barrier.wait();
        let mut hist = LatencyHistogram::new();
        for h in handles {
            let worker_hist = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            hist.merge(&worker_hist);
        }
        (saturating_nanos(t0.elapsed()), hist)
    });

    stop_maint.store(true, Ordering::Release);
    if let Some(t) = maint {
        t.thread().unpark();
        let _ = t.join();
    }

    let writes = writes_total.load(Ordering::Relaxed);
    // Always-on conservation oracle: every increment must be visible
    // exactly once, across every split the run performed.
    assert_eq!(
        store.total(),
        u128::from(writes),
        "service lost or double-applied writes across concurrent ops/resharding"
    );

    let (control_targets, control_snapshot_bytes) = match &control {
        Some(wiring) => {
            // Prefer counting targets through the socket command router
            // — a full client→socket→plane→hub round trip — falling
            // back to the in-process plane where sockets are absent.
            #[cfg(unix)]
            let targets = wiring
                .socket
                .as_ref()
                .and_then(|s| adaptive_control::SocketClient::connect(s.path()).ok())
                .and_then(|mut c| c.send("targets").ok())
                .and_then(Result::ok)
                .map_or_else(|| wiring.plane.hub().names().len(), |t| t.lines().count());
            #[cfg(not(unix))]
            let targets = wiring.plane.hub().names().len();
            let page = wiring.sink.latest().len();
            (Some(targets), Some(page))
        }
        None => (None, None),
    };
    if let Some(wiring) = control {
        #[cfg(unix)]
        drop(wiring.socket);
        wiring.sink.stop();
        wiring.hub_handle.stop();
    }

    let shards = store.snapshots();
    let verdict = divergence(&shards);
    let ops = nworkers as u64 * u64::from(spec.ops_per_worker);
    ServiceLoadPoint {
        policy: spec.config.policy.label(),
        workers: nworkers,
        ops,
        writes,
        keyspace: spec.keyspace,
        zipf_s: spec.zipf_s,
        read_pct: spec.read_pct.min(100),
        shards_initial,
        shards_final: store.shard_count(),
        splits: store.splits(),
        total_nanos,
        oversubscribed: nworkers > std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput_per_sec: ops as f64 / (total_nanos.max(1) as f64 / 1e9),
        mean_latency_nanos: hist.mean(),
        p50_latency_nanos: hist.percentile(50.0),
        p90_latency_nanos: hist.percentile(90.0),
        p99_latency_nanos: hist.percentile(99.0),
        p999_latency_nanos: hist.percentile(99.9),
        max_latency_nanos: hist.max(),
        shards,
        divergence: verdict,
        control_targets,
        control_snapshot_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_service::ServicePolicy;

    fn quick_spec() -> ServiceLoadSpec {
        ServiceLoadSpec {
            workers: 4,
            ops_per_worker: 1_500,
            keyspace: 512,
            zipf_s: 1.2,
            read_pct: 50,
            read_work_iters: 32,
            write_work_iters: 64,
            rate_per_worker: 500_000.0,
            burst_on_nanos: 2_000_000,
            burst_off_nanos: 500_000,
            config: ServiceConfig {
                initial_depth: 2,
                max_depth: 5,
                split_contended_per_sec: 1.0,
                split_min_acquisitions: 200,
                split_imbalance_factor: 0.0,
                split_sustain: 1,
                policy: ServicePolicy::HotShard { high_water: 2, patience: 2 },
            },
            maintenance_every: Duration::from_millis(2),
            wire_control: false,
            seed: 42,
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_monotone() {
        let spec = quick_spec();
        let a = arrival_schedule(&spec, 0);
        let b = arrival_schedule(&spec, 0);
        assert_eq!(a, b, "same seed and worker must give the same schedule");
        let other_worker = arrival_schedule(&spec, 1);
        assert_ne!(a, other_worker, "workers must not share one schedule");
        let reseeded = arrival_schedule(&ServiceLoadSpec { seed: 43, ..spec }, 0);
        assert_ne!(a, reseeded, "the seed must matter");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be nondecreasing");
        assert_eq!(a.len(), spec.ops_per_worker as usize);
    }

    #[test]
    fn off_phases_leave_silent_gaps() {
        let spec = ServiceLoadSpec {
            burst_on_nanos: 1_000_000,
            burst_off_nanos: 4_000_000,
            rate_per_worker: 1e6,
            ..quick_spec()
        };
        let sched = arrival_schedule(&spec, 0);
        let max_gap = sched.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        assert!(
            max_gap >= spec.burst_off_nanos,
            "bursty schedule must contain an off-phase gap, max was {max_gap}"
        );
        let period = (spec.burst_on_nanos + spec.burst_off_nanos) as f64;
        for &t in &sched {
            let pos = t as f64 % period;
            assert!(
                pos <= spec.burst_on_nanos as f64 + 1.0,
                "arrival at {t} lands inside an off-phase"
            );
        }
    }

    #[test]
    fn zipf_sampler_skews_toward_low_ranks() {
        let zipf = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = zipf.sample(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                head += 1;
            }
        }
        assert!(
            head > n / 2,
            "with s=1.2 the 10 hottest of 1000 keys must absorb most traffic, got {head}/{n}"
        );
        // Uniform control: the same 10 keys get about 1% of traffic.
        let flat = ZipfSampler::new(1000, 0.0);
        let mut head_flat = 0u64;
        for _ in 0..n {
            if flat.sample(&mut rng) < 10 {
                head_flat += 1;
            }
        }
        assert!(head_flat < n / 20, "uniform sampling must not concentrate, got {head_flat}/{n}");
    }

    #[test]
    fn service_load_conserves_writes_and_reports_percentiles() {
        let p = run_service_load(&quick_spec());
        assert_eq!(p.ops, 4 * 1_500);
        assert!(p.writes > 0 && p.writes < p.ops);
        assert!(p.throughput_per_sec > 0.0);
        assert!(p.p50_latency_nanos <= p.p90_latency_nanos);
        assert!(p.p90_latency_nanos <= p.p99_latency_nanos);
        assert!(p.p99_latency_nanos <= p.p999_latency_nanos);
        assert!(p.p999_latency_nanos <= p.max_latency_nanos);
        assert!(!p.shards.is_empty());
        assert!(p.divergence.is_some());
        assert_eq!(p.shards_initial, 4);
        assert!(p.shards_final >= p.shards_initial);
    }

    #[test]
    fn sustained_hot_shard_traffic_switches_its_engine() {
        // Near-total skew: one key absorbs almost everything, so its
        // shard must go hot (flat-combining write batching) while the
        // cold shards keep the spin-park default — the observable
        // per-shard divergence the service exists to demonstrate. The
        // critical section sits in the policy's design regime (a few
        // µs): heat is a *rate* signal, and a CS long enough to pin
        // lock utilization near 100% pushes the sample gap into the
        // no-man's-land between the hot and calm thresholds where the
        // engine would ride scheduler noise instead of load.
        let spec = ServiceLoadSpec {
            workers: 4,
            ops_per_worker: 4_000,
            keyspace: 1_000,
            zipf_s: 5.0,
            read_pct: 0,
            read_work_iters: 0,
            write_work_iters: 250,
            rate_per_worker: 5_000_000.0,
            burst_on_nanos: 10_000_000,
            burst_off_nanos: 0,
            config: ServiceConfig {
                initial_depth: 2,
                max_depth: 2,
                split_contended_per_sec: f64::INFINITY,
                split_min_acquisitions: u64::MAX,
                split_imbalance_factor: 0.0,
                split_sustain: 1,
                policy: ServicePolicy::HotShard { high_water: 2, patience: 2 },
            },
            maintenance_every: Duration::ZERO,
            wire_control: false,
            seed: 7,
        };
        let p = run_service_load(&spec);
        for s in &p.shards {
            eprintln!(
                "{}: acq={} contended={} parked={} combined={} switches={} algo={}",
                s.name, s.acquisitions, s.contended, s.parked, s.combined_ops,
                s.algorithm_switches, s.algorithm
            );
        }
        let verdict = p.divergence.expect("shards exist");
        assert!(
            verdict.engines.contains(&"flat-combining".to_string()),
            "the hot shard never switched to write batching: {verdict:?}"
        );
        assert!(verdict.diverged, "hot and cold shards ended identically: {verdict:?}");
    }

    #[test]
    fn control_wiring_registers_shards_and_streams_snapshots() {
        let spec = ServiceLoadSpec {
            wire_control: true,
            ops_per_worker: 400,
            ..quick_spec()
        };
        let p = run_service_load(&spec);
        let targets = p.control_targets.expect("control wiring was requested");
        assert_eq!(targets, p.shards_final, "every live shard must be hub-registered");
        let page = p.control_snapshot_bytes.expect("sink streamed at least one page");
        assert!(page > 0, "snapshot page must not be empty");
    }
}
