//! Backend-neutral contention workload: one spec, two executions.
//!
//! The paper's lock experiments are defined by a handful of knobs —
//! thread count, critical-section length, think time, waiting policy —
//! not by where they run. [`ContentionSpec`] captures the knobs once;
//! [`run_contention`] executes the same workload either on the
//! butterfly simulator (virtual time, deterministic) or on OS threads
//! through [`adaptive_native::AdaptiveMutex`] (wall time, real
//! hardware), so sim results and native results populate the same
//! tables. [`PolicyChoice`] maps onto the simulator's [`LockSpec`] via
//! [`sim_lock_spec`].

use adaptive_native::PolicyChoice;
use butterfly_sim::Duration as SimDuration;
use serde::Serialize;
use std::time::{Duration, Instant};

use crate::csweep::{self, SweepConfig};
use crate::spec::LockSpec;

/// Where a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The butterfly simulator (virtual time; deterministic).
    Sim,
    /// Real OS threads on the host (wall time).
    Native,
}

impl Backend {
    /// Label used in report rows.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }
}

/// One contended-lock workload: `threads` workers each acquire a single
/// shared lock `iters` times, hold it for `cs_nanos` of work, and think
/// for `think_nanos` between acquisitions.
#[derive(Debug, Clone, Copy)]
pub struct ContentionSpec {
    /// Worker threads.
    pub threads: usize,
    /// Lock/unlock iterations per thread.
    pub iters: u32,
    /// Critical-section length, in nanoseconds (virtual on sim, busy
    /// work on native).
    pub cs_nanos: u64,
    /// Think time between critical sections, in nanoseconds.
    pub think_nanos: u64,
    /// The waiting policy under test.
    pub policy: PolicyChoice,
    /// Simulator seed (ignored by the native backend).
    pub seed: u64,
}

impl Default for ContentionSpec {
    fn default() -> Self {
        ContentionSpec {
            threads: 4,
            iters: 100,
            cs_nanos: 1_000,
            think_nanos: 1_000,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            seed: 0x51ee9,
        }
    }
}

/// One measured point, backend-tagged so sim and native rows can sit in
/// the same table.
#[derive(Debug, Clone, Serialize)]
pub struct ContentionPoint {
    /// Which backend produced the point.
    pub backend: String,
    /// Waiting-policy label.
    pub policy: String,
    /// Worker threads.
    pub threads: usize,
    /// Critical-section length (ns).
    pub cs_nanos: u64,
    /// Total execution time (virtual ns on sim, wall ns on native).
    pub total_nanos: u64,
    /// Native only: more worker threads than host hardware parallelism,
    /// so the point measures scheduler time-slicing, not contention.
    /// Always `false` for the simulator, which models its own processors.
    pub oversubscribed: bool,
    /// Lock acquisitions per second of (virtual or wall) time.
    pub throughput_per_sec: f64,
    /// Mean time per acquisition across all threads (ns).
    pub mean_latency_nanos: f64,
}

/// The simulator lock corresponding to a native policy choice.
pub fn sim_lock_spec(policy: PolicyChoice) -> LockSpec {
    use adaptive_native::LockAlgorithm;
    match policy {
        PolicyChoice::FixedSpin(k) => LockSpec::Combined(k),
        PolicyChoice::PureBlocking => LockSpec::Blocking,
        PolicyChoice::Adaptive { threshold, n } => LockSpec::Adaptive { threshold, n },
        // Each native engine maps to its simulator cousin; the
        // flat-combining engine has no sim twin, so it maps to the
        // plain spin lock its waiters degrade to when nothing combines.
        PolicyChoice::Algorithm(LockAlgorithm::Ticket) => LockSpec::Ticket,
        PolicyChoice::Algorithm(LockAlgorithm::Queue) => LockSpec::Mcs,
        PolicyChoice::Algorithm(LockAlgorithm::Combining) => LockSpec::Spin,
        PolicyChoice::Algorithm(LockAlgorithm::SpinPark) => LockSpec::Combined(64),
        PolicyChoice::AlgoAdaptive { .. } => LockSpec::Adaptive { threshold: 2, n: 32 },
    }
}

/// Run one contention workload on the chosen backend.
pub fn run_contention(backend: Backend, spec: &ContentionSpec) -> ContentionPoint {
    let total_nanos = match backend {
        Backend::Sim => run_sim(spec),
        Backend::Native => run_native(spec),
    };
    let ops = spec.threads as u64 * u64::from(spec.iters);
    ContentionPoint {
        backend: backend.label().into(),
        policy: spec.policy.label(),
        threads: spec.threads,
        cs_nanos: spec.cs_nanos,
        total_nanos,
        oversubscribed: matches!(backend, Backend::Native)
            && spec.threads > std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput_per_sec: ops as f64 / (total_nanos.max(1) as f64 / 1e9),
        mean_latency_nanos: total_nanos as f64 / ops.max(1) as f64,
    }
}

fn run_sim(spec: &ContentionSpec) -> u64 {
    let cfg = SweepConfig {
        processors: spec.threads.max(1),
        threads: spec.threads,
        iters: spec.iters,
        think: SimDuration::nanos(spec.think_nanos),
        seed: spec.seed,
        ..SweepConfig::default()
    };
    csweep::run_once(&cfg, sim_lock_spec(spec.policy), SimDuration::nanos(spec.cs_nanos))
        .as_nanos()
}

fn run_native(spec: &ContentionSpec) -> u64 {
    let mutex = spec.policy.build_mutex(0u64);
    let cs = Duration::from_nanos(spec.cs_nanos);
    let think = Duration::from_nanos(spec.think_nanos);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..spec.threads {
            scope.spawn(|| {
                for _ in 0..spec.iters {
                    // `with_locked` so a combining engine actually
                    // combines; on every other engine it is exactly a
                    // guarded lock().
                    mutex.with_locked(|v| {
                        *v += 1;
                        busy_wait(cs);
                    });
                    busy_wait(think);
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    debug_assert_eq!(
        mutex.into_inner(),
        spec.threads as u64 * u64::from(spec.iters)
    );
    elapsed.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Burn CPU for (at least) `d`, without sleeping — critical-section
/// work must keep the processor, exactly like the simulator's
/// `ctx::advance`.
fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(policy: PolicyChoice) -> ContentionSpec {
        ContentionSpec {
            threads: 3,
            iters: 20,
            cs_nanos: 500,
            think_nanos: 500,
            policy,
            seed: 7,
        }
    }

    #[test]
    fn both_backends_run_the_same_spec() {
        let spec = quick_spec(PolicyChoice::Adaptive { threshold: 2, n: 32 });
        for backend in [Backend::Sim, Backend::Native] {
            let p = run_contention(backend, &spec);
            assert_eq!(p.backend, backend.label());
            assert_eq!(p.policy, "simple-adapt");
            assert_eq!(p.threads, 3);
            assert!(p.total_nanos > 0, "{}", p.backend);
            assert!(p.throughput_per_sec > 0.0);
            assert!(p.mean_latency_nanos > 0.0);
        }
    }

    #[test]
    fn policy_choices_map_onto_sim_lock_specs() {
        use adaptive_native::LockAlgorithm;
        assert_eq!(sim_lock_spec(PolicyChoice::FixedSpin(10)), LockSpec::Combined(10));
        assert_eq!(sim_lock_spec(PolicyChoice::PureBlocking), LockSpec::Blocking);
        assert_eq!(
            sim_lock_spec(PolicyChoice::Adaptive { threshold: 3, n: 5 }),
            LockSpec::Adaptive { threshold: 3, n: 5 }
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Ticket)),
            LockSpec::Ticket
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Queue)),
            LockSpec::Mcs
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Combining)),
            LockSpec::Spin
        );
        assert!(matches!(
            sim_lock_spec(PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 }),
            LockSpec::Adaptive { .. }
        ));
    }

    #[test]
    fn native_points_cover_every_policy() {
        use adaptive_native::LockAlgorithm;
        let mut policies = vec![
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 },
        ];
        policies.extend(LockAlgorithm::ALL.map(PolicyChoice::Algorithm));
        for policy in policies {
            let p = run_contention(Backend::Native, &quick_spec(policy));
            assert!(p.total_nanos > 0, "{}", p.policy);
        }
    }

    #[test]
    fn every_native_policy_also_runs_on_the_simulator() {
        use adaptive_native::LockAlgorithm;
        for policy in LockAlgorithm::ALL.map(PolicyChoice::Algorithm) {
            let p = run_contention(Backend::Sim, &quick_spec(policy));
            assert!(p.total_nanos > 0, "{}", p.policy);
        }
    }

    #[test]
    fn sim_runs_stay_deterministic_through_the_backend() {
        let spec = quick_spec(PolicyChoice::FixedSpin(10));
        let a = run_contention(Backend::Sim, &spec);
        let b = run_contention(Backend::Sim, &spec);
        assert_eq!(a.total_nanos, b.total_nanos);
    }
}
