//! Backend-neutral contention workload: one spec, two executions.
//!
//! The paper's lock experiments are defined by a handful of knobs —
//! thread count, critical-section length, think time, waiting policy —
//! not by where they run. [`ContentionSpec`] captures the knobs once;
//! [`run_contention`] executes the same workload either on the
//! butterfly simulator (virtual time, deterministic) or on OS threads
//! through [`adaptive_native::AdaptiveMutex`] (wall time, real
//! hardware), so sim results and native results populate the same
//! tables. [`PolicyChoice`] maps onto the simulator's [`LockSpec`] via
//! [`sim_lock_spec`].
//!
//! ## Measurement discipline
//!
//! Both executions follow the same rules, so their rows are comparable:
//!
//! * **The clock excludes setup.** Native workers rendezvous on a start
//!   barrier and the clock starts immediately *before* the barrier
//!   release (the same fix `lockbench` carries: started after our own
//!   `wait()` returns, a single-core host can run the workers to
//!   completion before the main thread is rescheduled; started before
//!   spawn, the row measures thread-creation cost instead of lock
//!   behavior). The simulator forks in zero virtual time, so its clock
//!   needs no barrier.
//! * **Per-thread accounting.** Every worker tallies its own completed
//!   ops, its summed *acquisition latency* (enter-to-acquired: from
//!   just before the lock call to the first instruction of the critical
//!   section), and its own elapsed time from the common epoch to its
//!   last completed op. Those feed the fairness fields of every row
//!   ([`ContentionPoint::fairness_index`] and the min/max per-thread
//!   throughput spread) on both backends.
//! * **Honest latency names.** `mean_latency_nanos` is measured
//!   acquisition latency. The old quantity — total wall time divided by
//!   op count, which bakes think time and backend scheduling into a
//!   number that was *called* latency — survives under the honest name
//!   [`ContentionPoint::wall_nanos_per_op`], so JSON consumers migrate
//!   deliberately instead of silently reading a different metric.
//! * **Lost updates fail loudly.** The shared counter is re-checked
//!   against `threads × iters` with an always-on `assert_eq!`, not a
//!   `debug_assert!`: perf sweeps run `--release`, which is exactly
//!   where a release-only engine bug would otherwise pass silently.

use adaptive_native::PolicyChoice;
use butterfly_sim::{self as sim, ctx, Duration as SimDuration, ProcId, SimConfig};
use cthreads::fork;
use serde::Serialize;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use crate::fairness::spread_stats;
use crate::measure::LatencyHistogram;
use crate::spec::LockSpec;

/// Where a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The butterfly simulator (virtual time; deterministic).
    Sim,
    /// Real OS threads on the host (wall time).
    Native,
    /// Tasks on an asyncx multi-thread runtime contending through the
    /// [`asyncx::AsyncAdaptiveMutex`] (wall time). `threads` counts
    /// *tasks*; the runtime drives them on `min(threads, host
    /// parallelism)` workers.
    #[cfg(feature = "async-backend")]
    Async,
}

impl Backend {
    /// Label used in report rows.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
            #[cfg(feature = "async-backend")]
            Backend::Async => "async",
        }
    }
}

/// One contended-lock workload: `threads` workers each acquire a single
/// shared lock `iters` times, hold it for `cs_nanos` of work, and think
/// for `think_nanos` between acquisitions.
#[derive(Debug, Clone, Copy)]
pub struct ContentionSpec {
    /// Worker threads.
    pub threads: usize,
    /// Lock/unlock iterations per thread.
    pub iters: u32,
    /// Critical-section length, in nanoseconds (virtual on sim, busy
    /// work on native).
    pub cs_nanos: u64,
    /// Think time between critical sections, in nanoseconds.
    pub think_nanos: u64,
    /// The waiting policy under test.
    pub policy: PolicyChoice,
    /// Simulator seed (ignored by the native backend).
    pub seed: u64,
}

impl Default for ContentionSpec {
    fn default() -> Self {
        ContentionSpec {
            threads: 4,
            iters: 100,
            cs_nanos: 1_000,
            think_nanos: 1_000,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            seed: 0x51ee9,
        }
    }
}

/// One measured point, backend-tagged so sim and native rows can sit in
/// the same table.
#[derive(Debug, Clone, Serialize)]
pub struct ContentionPoint {
    /// Which backend produced the point.
    pub backend: String,
    /// Waiting-policy label.
    pub policy: String,
    /// Worker threads.
    pub threads: usize,
    /// Critical-section length (ns).
    pub cs_nanos: u64,
    /// Total execution time (virtual ns on sim, wall ns on native),
    /// measured from the start-barrier release — thread spawn excluded.
    pub total_nanos: u64,
    /// Native only: more worker threads than host hardware parallelism,
    /// so the point measures scheduler time-slicing, not contention.
    /// Always `false` for the simulator, which models its own processors.
    pub oversubscribed: bool,
    /// Lock acquisitions per second of (virtual or wall) time.
    pub throughput_per_sec: f64,
    /// Total time divided by total ops (ns). This is *not* latency — it
    /// includes think time and scheduling — but it is the per-op pace
    /// the old `mean_latency_nanos` field actually reported, kept under
    /// an honest name.
    pub wall_nanos_per_op: f64,
    /// Mean measured acquisition latency (enter-to-acquired, ns),
    /// averaged over every op of every thread.
    pub mean_latency_nanos: f64,
    /// Median acquisition latency (ns), from the merged per-op
    /// histogram — what a typical op saw, immune to tail pull.
    pub p50_latency_nanos: u64,
    /// 99th-percentile acquisition latency (ns) — the tail the mean
    /// hides.
    pub p99_latency_nanos: u64,
    /// Jain's fairness index over per-thread throughput (1.0 = every
    /// thread got identical service; 1/threads = one thread got it all).
    pub fairness_index: f64,
    /// Slowest thread's throughput (its ops over its own elapsed time).
    pub min_thread_ops_per_sec: f64,
    /// Fastest thread's throughput.
    pub max_thread_ops_per_sec: f64,
    /// `max_thread_ops_per_sec / min_thread_ops_per_sec` — the per-row
    /// spread; 1.0 is perfectly even service.
    pub thread_spread: f64,
}

/// The simulator lock corresponding to a native policy choice.
pub fn sim_lock_spec(policy: PolicyChoice) -> LockSpec {
    use adaptive_native::LockAlgorithm;
    match policy {
        PolicyChoice::FixedSpin(k) => LockSpec::Combined(k),
        PolicyChoice::PureBlocking => LockSpec::Blocking,
        PolicyChoice::Adaptive { threshold, n } => LockSpec::Adaptive { threshold, n },
        // Each native engine maps to its simulator cousin; the
        // flat-combining engine has no sim twin, so it maps to the
        // plain spin lock its waiters degrade to when nothing combines.
        PolicyChoice::Algorithm(LockAlgorithm::Ticket) => LockSpec::Ticket,
        PolicyChoice::Algorithm(LockAlgorithm::Queue) => LockSpec::Mcs,
        PolicyChoice::Algorithm(LockAlgorithm::Combining) => LockSpec::Spin,
        PolicyChoice::Algorithm(LockAlgorithm::SpinPark) => LockSpec::Combined(64),
        PolicyChoice::AlgoAdaptive { .. } | PolicyChoice::FairAdaptive { .. } => {
            LockSpec::Adaptive { threshold: 2, n: 32 }
        }
    }
}

/// What a worker does per op: critical-section work and think-time
/// work, each either a calibrated wall-clock burn (`Nanos`) or a raw
/// busy-loop iteration count (`Iters`, the dlock2-style unit). On the
/// simulator both advance virtual time, one virtual nanosecond per
/// iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Work {
    /// Busy-wait for this many wall nanoseconds (virtual on sim).
    Nanos(u64),
    /// Spin this many loop iterations (≈1 virtual ns each on sim).
    Iters(u32),
}

impl Work {
    fn run(self) {
        match self {
            Work::Nanos(n) => busy_wait(Duration::from_nanos(n)),
            Work::Iters(n) => busy_iters(n),
        }
    }

    fn sim_duration(self) -> SimDuration {
        match self {
            Work::Nanos(n) => SimDuration::nanos(n),
            Work::Iters(n) => SimDuration::nanos(u64::from(n)),
        }
    }
}

/// One worker's share of a contention workload. Plans differ per thread
/// only for the imbalanced fairness workloads; `run_contention` hands
/// every thread the same plan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerPlan {
    /// Lock/unlock iterations this worker performs.
    pub iters: u32,
    /// Critical-section work per op.
    pub cs: Work,
    /// Think-time (non-critical-section) work per op.
    pub think: Work,
}

/// What one worker measured about itself.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThreadSample {
    /// Ops this thread completed (always its full `iters` quota — the
    /// workload is iteration-bounded — but tallied by the worker itself
    /// so accounting bugs show up as a sum mismatch, not a silent pass).
    pub ops: u64,
    /// Summed enter-to-acquired acquisition latency across those ops (ns).
    pub latency_nanos: u64,
    /// This thread's elapsed time from the common epoch (barrier
    /// release / sim fork point) to its last completed op (ns).
    pub elapsed_nanos: u64,
}

/// Run one contention workload on the chosen backend.
pub fn run_contention(backend: Backend, spec: &ContentionSpec) -> ContentionPoint {
    let plan = WorkerPlan {
        iters: spec.iters,
        cs: Work::Nanos(spec.cs_nanos),
        think: Work::Nanos(spec.think_nanos),
    };
    let plans = vec![plan; spec.threads];
    let (total_nanos, samples, hist) = match backend {
        Backend::Sim => run_sim_plans(spec.policy, &plans, spec.seed),
        Backend::Native => run_native_plans(spec.policy, &plans, Duration::ZERO),
        #[cfg(feature = "async-backend")]
        Backend::Async => run_async_plans(spec.policy, &plans),
    };
    let s = spread_stats(&samples);
    let ops = spec.threads as u64 * u64::from(spec.iters);
    ContentionPoint {
        backend: backend.label().into(),
        policy: spec.policy.label(),
        threads: spec.threads,
        cs_nanos: spec.cs_nanos,
        total_nanos,
        oversubscribed: matches!(backend, Backend::Native)
            && spec.threads > std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput_per_sec: ops as f64 / (total_nanos.max(1) as f64 / 1e9),
        wall_nanos_per_op: total_nanos as f64 / ops.max(1) as f64,
        mean_latency_nanos: s.mean_latency_nanos,
        p50_latency_nanos: hist.percentile(50.0),
        p99_latency_nanos: hist.percentile(99.0),
        fairness_index: s.fairness_index,
        min_thread_ops_per_sec: s.min_thread_ops_per_sec,
        max_thread_ops_per_sec: s.max_thread_ops_per_sec,
        thread_spread: s.thread_spread,
    }
}

/// Run per-worker plans on the simulator; returns total virtual time,
/// per-thread samples, and the merged per-op acquisition-latency
/// histogram (all in virtual nanoseconds).
pub(crate) fn run_sim_plans(
    policy: PolicyChoice,
    plans: &[WorkerPlan],
    seed: u64,
) -> (u64, Vec<ThreadSample>, LatencyHistogram) {
    use adaptive_locks::{with_lock, Lock};

    let processors = plans.len().max(1);
    let sim_cfg = SimConfig {
        processors,
        quantum: Some(SimDuration::millis(2)),
        seed,
        ..SimConfig::default()
    };
    let plans = plans.to_vec();
    let ((total, samples, hist), _) = sim::run(sim_cfg, move || {
        let lock: Arc<dyn Lock> = sim_lock_spec(policy).build(ctx::current_node());
        let t0 = ctx::now();
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let lock = Arc::clone(&lock);
                let plan = *plan;
                fork(ProcId(i % processors), format!("w{i}"), move || {
                    let mut ops = 0u64;
                    let mut latency_nanos = 0u64;
                    let mut hist = LatencyHistogram::new();
                    for _ in 0..plan.iters {
                        let enter = ctx::now();
                        with_lock(lock.as_ref(), || {
                            let waited = ctx::now().since(enter).as_nanos();
                            latency_nanos += waited;
                            hist.record(waited);
                            ctx::advance(plan.cs.sim_duration());
                        });
                        ops += 1;
                        ctx::advance(plan.think.sim_duration());
                    }
                    let sample = ThreadSample {
                        ops,
                        latency_nanos,
                        elapsed_nanos: ctx::now().since(t0).as_nanos().max(1),
                    };
                    (sample, hist)
                })
            })
            .collect();
        let mut hist = LatencyHistogram::new();
        let samples: Vec<ThreadSample> = handles
            .into_iter()
            .map(|h| {
                let (sample, h) = h.join();
                hist.merge(&h);
                sample
            })
            .collect();
        (ctx::now().since(t0).as_nanos(), samples, hist)
    })
    .expect("contention simulation runs to completion");
    (total, samples, hist)
}

/// Run per-worker plans on OS threads through an [`adaptive_native`]
/// mutex built for `policy`. Returns total wall nanoseconds (measured
/// from the start-barrier release) and per-thread samples.
///
/// `pre_start_stall` is a test hook: a sleep inserted between thread
/// spawn and the clock start, standing in for slow spawn. A correctly
/// bounded measurement window excludes it entirely; the pre-fix window
/// (clock started before spawn) charged all of it to the row.
pub(crate) fn run_native_plans(
    policy: PolicyChoice,
    plans: &[WorkerPlan],
    pre_start_stall: Duration,
) -> (u64, Vec<ThreadSample>, LatencyHistogram) {
    let mutex = policy.build_mutex(0u64);
    let expected: u64 = plans.iter().map(|p| u64::from(p.iters)).sum();
    let (total, samples, hist) = run_native_workers(plans.len(), pre_start_stall, |i| {
        let plan = plans[i];
        let mut latency_nanos = 0u64;
        let mut ops = 0u64;
        let mut hist = LatencyHistogram::new();
        for _ in 0..plan.iters {
            let enter = Instant::now();
            // `with_locked` so a combining engine actually combines; on
            // every other engine it is exactly a guarded `lock()`. The
            // latency tick runs as the critical section's first
            // instruction, so it measures enter-to-acquired (for a
            // combined op: enter-to-served) without the CS body.
            mutex.with_locked(|v| {
                let waited = saturating_nanos(enter.elapsed());
                latency_nanos += waited;
                hist.record(waited);
                *v += 1;
                plan.cs.run();
            });
            ops += 1;
            plan.think.run();
        }
        (ops, latency_nanos, hist)
    });
    // Always-on (not debug_assert!): perf sweeps run --release, which
    // is exactly where a release-only lost-update bug in an engine
    // would otherwise pass silently.
    assert_eq!(
        mutex.into_inner(),
        expected,
        "lost update: shared counter disagrees with threads x iters"
    );
    (total, samples, hist)
}

/// The async mutex configured for a [`PolicyChoice`]. Spin counts map
/// onto poll budgets (the async `spin` attribute); the engine-zoo
/// choices have no async twin — the async mutex has one engine — so
/// they run the default adaptive policy, keeping every sweep row
/// populated on all three backends.
#[cfg(feature = "async-backend")]
fn async_mutex_for(policy: PolicyChoice, value: u64) -> asyncx::AsyncAdaptiveMutex<u64> {
    use asyncx::{AsyncAdaptiveMutex, AsyncPollAdapt};
    match policy {
        PolicyChoice::FixedSpin(k) => AsyncAdaptiveMutex::with_poll_budget(value, k),
        PolicyChoice::PureBlocking => AsyncAdaptiveMutex::with_poll_budget(value, 0),
        PolicyChoice::Adaptive { threshold, n } => {
            AsyncAdaptiveMutex::with_policy(value, Box::new(AsyncPollAdapt::new(threshold, n)), 2)
        }
        PolicyChoice::Algorithm(_)
        | PolicyChoice::AlgoAdaptive { .. }
        | PolicyChoice::FairAdaptive { .. } => AsyncAdaptiveMutex::new(value),
    }
}

/// Run per-worker plans as tasks on an asyncx multi-thread runtime
/// through the [`asyncx::AsyncAdaptiveMutex`]. Returns total wall
/// nanoseconds (from the start-gate release), per-task samples, and the
/// merged acquisition-latency histogram — the same shapes as the sim
/// and native runners, so async rows sit in the same tables.
///
/// One semantic difference, deliberate and load-bearing: the critical
/// section **spans one executor yield** (guard held across an await).
/// Async critical sections that never await are invisible to sibling
/// tasks on the same worker — cooperative scheduling would serialize
/// the whole workload lock-free and every policy would tie. Holding
/// across a yield is both the realistic async usage (guards held across
/// awaits) and the regime where poll-vs-park actually differs.
#[cfg(feature = "async-backend")]
pub(crate) fn run_async_plans(
    policy: PolicyChoice,
    plans: &[WorkerPlan],
) -> (u64, Vec<ThreadSample>, LatencyHistogram) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(plans.len().max(1));
    let rt = asyncx::Runtime::multi_thread(workers);
    let mutex = Arc::new(async_mutex_for(policy, 0u64));
    let expected: u64 = plans.iter().map(|p| u64::from(p.iters)).sum();
    let start = Arc::new(AtomicBool::new(false));
    let epoch: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    let (total, samples, hist) = rt.block_on(async {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let plan = *plan;
                let mutex = Arc::clone(&mutex);
                let start = Arc::clone(&start);
                let epoch = Arc::clone(&epoch);
                asyncx::spawn(async move {
                    // Start gate: every task is spawned and polling
                    // before the clock starts, the tasks' analogue of
                    // the native start barrier.
                    while !start.load(Ordering::Acquire) {
                        asyncx::yield_now().await;
                    }
                    let t0 = epoch.get().copied().unwrap_or_else(Instant::now);
                    let mut ops = 0u64;
                    let mut latency_nanos = 0u64;
                    let mut hist = LatencyHistogram::new();
                    for _ in 0..plan.iters {
                        let enter = Instant::now();
                        let mut guard = mutex.lock().await;
                        let waited = saturating_nanos(enter.elapsed());
                        latency_nanos += waited;
                        hist.record(waited);
                        *guard += 1;
                        plan.cs.run();
                        // The yield that makes the hold visible to
                        // sibling tasks (see the fn docs).
                        asyncx::yield_now().await;
                        drop(guard);
                        ops += 1;
                        plan.think.run();
                    }
                    let sample = ThreadSample {
                        ops,
                        latency_nanos,
                        elapsed_nanos: saturating_nanos(t0.elapsed()).max(1),
                    };
                    (sample, hist)
                })
            })
            .collect();
        let t0 = Instant::now();
        let _ = epoch.set(t0);
        start.store(true, Ordering::Release);
        let mut hist = LatencyHistogram::new();
        let mut samples = Vec::with_capacity(handles.len());
        for h in handles {
            let (sample, h) = h.await;
            hist.merge(&h);
            samples.push(sample);
        }
        (saturating_nanos(t0.elapsed()), samples, hist)
    });
    let mutex = match Arc::try_unwrap(mutex) {
        Ok(m) => m,
        Err(_) => panic!("async workers still hold the mutex after join"),
    };
    // Always-on, exactly like the native runner: perf sweeps run
    // --release, where a silent lost update would otherwise pass.
    assert_eq!(
        mutex.into_inner(),
        expected,
        "lost update: shared counter disagrees with tasks x iters"
    );
    (total, samples, hist)
}

/// Spawn `nworkers` scoped threads, rendezvous on a start barrier, and
/// run `work(i)` on each; `work` returns `(ops, summed latency ns,
/// per-op latency histogram)`. Returns total wall nanoseconds,
/// per-thread samples, and the merged histogram.
///
/// The clock starts immediately *before* the barrier release (the last
/// arrival frees everyone): started after our own `wait()` returned, a
/// single-core host can run the workers to completion before this
/// thread is rescheduled; started before spawn, the row would charge
/// thread-creation time to the lock. `pre_start_stall` (tests only)
/// sleeps between spawn and clock start to make that exclusion
/// observable.
pub(crate) fn run_native_workers<F>(
    nworkers: usize,
    pre_start_stall: Duration,
    work: F,
) -> (u64, Vec<ThreadSample>, LatencyHistogram)
where
    F: Fn(usize) -> (u64, u64, LatencyHistogram) + Sync,
{
    let barrier = Barrier::new(nworkers + 1);
    let epoch: OnceLock<Instant> = OnceLock::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nworkers)
            .map(|i| {
                let (barrier, epoch, work) = (&barrier, &epoch, &work);
                scope.spawn(move || {
                    barrier.wait();
                    // Set by the main thread before its own wait(), so
                    // it is always present once ours returns.
                    let t0 = epoch.get().copied().unwrap_or_else(Instant::now);
                    let (ops, latency_nanos, hist) = work(i);
                    let sample = ThreadSample {
                        ops,
                        latency_nanos,
                        elapsed_nanos: saturating_nanos(t0.elapsed()).max(1),
                    };
                    (sample, hist)
                })
            })
            .collect();
        if !pre_start_stall.is_zero() {
            std::thread::sleep(pre_start_stall);
        }
        let t0 = Instant::now();
        let _ = epoch.set(t0);
        let mut hist = LatencyHistogram::new();
        barrier.wait();
        let samples: Vec<ThreadSample> = handles
            .into_iter()
            .map(|h| {
                let (sample, h) = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                hist.merge(&h);
                sample
            })
            .collect();
        (saturating_nanos(t0.elapsed()), samples, hist)
    })
}

/// `Duration` → `u64` nanoseconds, saturating.
pub(crate) fn saturating_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Burn CPU for (at least) `d`, without sleeping — critical-section
/// work must keep the processor, exactly like the simulator's
/// `ctx::advance`.
fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Spin exactly `n` loop iterations — the dlock2-style critical- and
/// non-critical-section unit, which prices *work* rather than a clock
/// target (a `busy_wait` under heavy preemption can overshoot wildly;
/// an iteration count cannot).
pub(crate) fn busy_iters(n: u32) {
    for _ in 0..n {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(policy: PolicyChoice) -> ContentionSpec {
        ContentionSpec {
            threads: 3,
            iters: 20,
            cs_nanos: 500,
            think_nanos: 500,
            policy,
            seed: 7,
        }
    }

    #[test]
    fn both_backends_run_the_same_spec() {
        let spec = quick_spec(PolicyChoice::Adaptive { threshold: 2, n: 32 });
        for backend in [Backend::Sim, Backend::Native] {
            let p = run_contention(backend, &spec);
            assert_eq!(p.backend, backend.label());
            assert_eq!(p.policy, "simple-adapt");
            assert_eq!(p.threads, 3);
            assert!(p.total_nanos > 0, "{}", p.backend);
            assert!(p.throughput_per_sec > 0.0);
            assert!(p.wall_nanos_per_op > 0.0);
            assert!(p.mean_latency_nanos >= 0.0);
            assert!(
                p.p50_latency_nanos <= p.p99_latency_nanos,
                "{}: p50 {} > p99 {}",
                p.backend,
                p.p50_latency_nanos,
                p.p99_latency_nanos
            );
            assert!(
                p.fairness_index > 0.0 && p.fairness_index <= 1.0 + 1e-9,
                "{}: fairness {}",
                p.backend,
                p.fairness_index
            );
            assert!(p.min_thread_ops_per_sec > 0.0);
            assert!(p.max_thread_ops_per_sec >= p.min_thread_ops_per_sec);
            assert!(p.thread_spread >= 1.0);
        }
    }

    #[test]
    fn wall_pace_and_latency_are_different_metrics() {
        // Long think time, tiny critical section: the wall pace is
        // dominated by think time, which acquisition latency must not
        // include. Pre-fix, "mean_latency_nanos" WAS the wall pace.
        let spec = ContentionSpec {
            threads: 2,
            iters: 30,
            cs_nanos: 100,
            think_nanos: 40_000,
            policy: PolicyChoice::FixedSpin(64),
            seed: 7,
        };
        let p = run_contention(Backend::Native, &spec);
        assert!(
            p.wall_nanos_per_op >= spec.think_nanos as f64 / 2.0,
            "wall pace {} must reflect think time",
            p.wall_nanos_per_op
        );
        assert!(
            p.mean_latency_nanos < p.wall_nanos_per_op / 2.0,
            "acquisition latency {} must not absorb think time (wall pace {})",
            p.mean_latency_nanos,
            p.wall_nanos_per_op
        );
    }

    #[test]
    fn measured_window_excludes_time_before_the_start_barrier() {
        // Regression for the spawn-time bug: the clock used to start
        // before thread spawn, so anything between spawn and the first
        // op — here an injected 80 ms stall standing in for slow spawn
        // — was charged to the row, and small-iter rows scaled with
        // thread count from spawn overhead alone. With the barrier,
        // total time is work only.
        let stall = Duration::from_millis(80);
        for threads in [1usize, 4] {
            let plan = WorkerPlan { iters: 1, cs: Work::Nanos(0), think: Work::Nanos(0) };
            let (total, samples, _) =
                run_native_plans(PolicyChoice::FixedSpin(64), &vec![plan; threads], stall);
            assert_eq!(samples.len(), threads);
            assert!(
                Duration::from_nanos(total) < stall,
                "{threads} threads: measured window {total} ns swallowed the pre-start stall"
            );
        }
    }

    #[test]
    fn per_thread_samples_account_for_every_op() {
        let spec = quick_spec(PolicyChoice::Algorithm(adaptive_native::LockAlgorithm::Ticket));
        let plan =
            WorkerPlan { iters: spec.iters, cs: Work::Nanos(spec.cs_nanos), think: Work::Nanos(0) };
        for backend in [Backend::Sim, Backend::Native] {
            let (_, samples, hist) = match backend {
                Backend::Sim => run_sim_plans(spec.policy, &vec![plan; spec.threads], spec.seed),
                _ => run_native_plans(spec.policy, &vec![plan; spec.threads], Duration::ZERO),
            };
            assert_eq!(samples.len(), spec.threads);
            let total_ops: u64 = samples.iter().map(|s| s.ops).sum();
            assert_eq!(total_ops, spec.threads as u64 * u64::from(spec.iters));
            assert!(samples.iter().all(|s| s.elapsed_nanos > 0));
            // The merged histogram holds exactly one sample per op.
            assert_eq!(hist.count(), total_ops, "{}", backend.label());
            assert!(hist.percentile(50.0) <= hist.percentile(99.0));
        }
    }

    #[test]
    fn policy_choices_map_onto_sim_lock_specs() {
        use adaptive_native::LockAlgorithm;
        assert_eq!(sim_lock_spec(PolicyChoice::FixedSpin(10)), LockSpec::Combined(10));
        assert_eq!(sim_lock_spec(PolicyChoice::PureBlocking), LockSpec::Blocking);
        assert_eq!(
            sim_lock_spec(PolicyChoice::Adaptive { threshold: 3, n: 5 }),
            LockSpec::Adaptive { threshold: 3, n: 5 }
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Ticket)),
            LockSpec::Ticket
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Queue)),
            LockSpec::Mcs
        );
        assert_eq!(
            sim_lock_spec(PolicyChoice::Algorithm(LockAlgorithm::Combining)),
            LockSpec::Spin
        );
        assert!(matches!(
            sim_lock_spec(PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 }),
            LockSpec::Adaptive { .. }
        ));
    }

    #[test]
    fn native_points_cover_every_policy() {
        use adaptive_native::LockAlgorithm;
        let mut policies = vec![
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 },
        ];
        policies.extend(LockAlgorithm::ALL.map(PolicyChoice::Algorithm));
        for policy in policies {
            let p = run_contention(Backend::Native, &quick_spec(policy));
            assert!(p.total_nanos > 0, "{}", p.policy);
            assert!(p.fairness_index > 0.0, "{}", p.policy);
        }
    }

    #[test]
    fn every_native_policy_also_runs_on_the_simulator() {
        use adaptive_native::LockAlgorithm;
        for policy in LockAlgorithm::ALL.map(PolicyChoice::Algorithm) {
            let p = run_contention(Backend::Sim, &quick_spec(policy));
            assert!(p.total_nanos > 0, "{}", p.policy);
        }
    }

    #[cfg(feature = "async-backend")]
    #[test]
    fn async_backend_runs_the_same_spec_and_conserves_ops() {
        for policy in [
            PolicyChoice::FixedSpin(16),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::Algorithm(adaptive_native::LockAlgorithm::Ticket),
        ] {
            let p = run_contention(Backend::Async, &quick_spec(policy));
            assert_eq!(p.backend, "async", "{}", p.policy);
            assert!(p.total_nanos > 0, "{}", p.policy);
            assert!(p.throughput_per_sec > 0.0, "{}", p.policy);
            assert!(p.fairness_index > 0.0 && p.fairness_index <= 1.0 + 1e-9, "{}", p.policy);
            assert!(p.p50_latency_nanos <= p.p99_latency_nanos, "{}", p.policy);
        }
    }

    #[cfg(feature = "async-backend")]
    #[test]
    fn async_per_task_samples_account_for_every_op() {
        let spec = quick_spec(PolicyChoice::Adaptive { threshold: 2, n: 32 });
        let plan =
            WorkerPlan { iters: spec.iters, cs: Work::Nanos(spec.cs_nanos), think: Work::Nanos(0) };
        let (_, samples, hist) = run_async_plans(spec.policy, &vec![plan; spec.threads]);
        assert_eq!(samples.len(), spec.threads);
        let total_ops: u64 = samples.iter().map(|s| s.ops).sum();
        assert_eq!(total_ops, spec.threads as u64 * u64::from(spec.iters));
        assert_eq!(hist.count(), total_ops);
        assert!(samples.iter().all(|s| s.elapsed_nanos > 0));
    }

    #[test]
    fn sim_runs_stay_deterministic_through_the_backend() {
        let spec = quick_spec(PolicyChoice::FixedSpin(10));
        let a = run_contention(Backend::Sim, &spec);
        let b = run_contention(Backend::Sim, &spec);
        assert_eq!(a.total_nanos, b.total_nanos);
        assert_eq!(a.fairness_index, b.fairness_index);
    }
}
