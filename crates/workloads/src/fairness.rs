//! Fairness and imbalance workloads (the dlock2-style suite).
//!
//! Mean throughput hides what queue locks, combining locks, and barging
//! spin locks actually trade against each other. The regime where they
//! genuinely diverge is *imbalance*: give half the threads a 1000-
//! iteration critical section and the other half a 3000-iteration one,
//! dial the non-critical-section length from zero (saturated lock) to
//! 100k iterations (rare visits), and watch whether every thread still
//! gets served. A FIFO engine (ticket, CLH) keeps per-thread service
//! even; a barging engine lets the thread already in cache re-acquire
//! and starve the rest — the fairness collapse the Locks-repo
//! experiments (SNIPPETS.md Snippet 1) and "Mutable Locks" (PAPERS.md)
//! are built around.
//!
//! [`FairnessSpec`] captures the shape once and [`run_fairness`]
//! executes it on either backend through the same plan machinery as
//! [`crate::run_contention`], with per-thread op/latency accounting.
//! Every row reports [Jain's fairness index] over per-thread throughput
//! plus the min/max per-thread spread, alongside the usual ns/op.
//!
//! [Jain's fairness index]: https://en.wikipedia.org/wiki/Fairness_measure
//!
//! Critical- and non-critical-section lengths are *busy-loop iteration
//! counts* (the dlock2 unit), not nanoseconds: an iteration count
//! prices work and cannot overshoot under preemption. On the simulator
//! one iteration advances one virtual nanosecond.

use adaptive_native::PolicyChoice;
use serde::Serialize;

use crate::backend::{run_native_plans, run_sim_plans, Backend, ThreadSample, Work, WorkerPlan};

/// One fairness workload: `threads` workers split into two groups with
/// different critical-section lengths, all hammering one lock.
#[derive(Debug, Clone, Copy)]
pub struct FairnessSpec {
    /// Worker threads.
    pub threads: usize,
    /// How many of them are in group A (the rest are group B).
    pub group_a: usize,
    /// Lock/unlock iterations per thread.
    pub iters: u32,
    /// Group A's critical-section length, in busy-loop iterations.
    pub cs_iters_a: u32,
    /// Group B's critical-section length, in busy-loop iterations
    /// (equal to `cs_iters_a` for a balanced workload; the canonical
    /// imbalanced shape is 1000 vs 3000).
    pub cs_iters_b: u32,
    /// Non-critical-section length between acquisitions, in busy-loop
    /// iterations; 0 saturates the lock, large values make visits rare.
    pub ncs_iters: u32,
    /// The waiting policy / engine under test.
    pub policy: PolicyChoice,
    /// Simulator seed (ignored by the native backend).
    pub seed: u64,
}

impl Default for FairnessSpec {
    fn default() -> Self {
        FairnessSpec {
            threads: 4,
            group_a: 2,
            iters: 100,
            cs_iters_a: 1_000,
            cs_iters_b: 3_000,
            ncs_iters: 100,
            policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
            seed: 0x51ee9,
        }
    }
}

/// One measured fairness point.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessPoint {
    /// Which backend produced the point.
    pub backend: String,
    /// Waiting-policy / engine label.
    pub policy: String,
    /// Worker threads.
    pub threads: usize,
    /// Threads in group A.
    pub group_a: usize,
    /// Group A critical-section length (busy-loop iterations).
    pub cs_iters_a: u32,
    /// Group B critical-section length (busy-loop iterations).
    pub cs_iters_b: u32,
    /// Non-critical-section length (busy-loop iterations).
    pub ncs_iters: u32,
    /// Lock/unlock iterations per thread.
    pub iters: u32,
    /// Whether the two groups differ (`cs_iters_a != cs_iters_b`).
    pub imbalanced: bool,
    /// Total execution time from the start-barrier release (ns).
    pub total_nanos: u64,
    /// Native only: more worker threads than host parallelism.
    pub oversubscribed: bool,
    /// Lock acquisitions per second.
    pub throughput_per_sec: f64,
    /// Total time over total ops (ns) — pace, not latency.
    pub wall_nanos_per_op: f64,
    /// Mean measured acquisition latency (enter-to-acquired, ns).
    pub mean_latency_nanos: f64,
    /// Median acquisition latency (ns), from the merged per-op
    /// histogram.
    pub p50_latency_nanos: u64,
    /// 99th-percentile acquisition latency (ns) — under a barging
    /// engine this is where starved threads show up long before the
    /// mean moves.
    pub p99_latency_nanos: u64,
    /// Jain's fairness index over per-thread throughput.
    pub fairness_index: f64,
    /// Slowest thread's throughput (ops over its own elapsed time).
    pub min_thread_ops_per_sec: f64,
    /// Fastest thread's throughput.
    pub max_thread_ops_per_sec: f64,
    /// `max / min` per-thread throughput.
    pub thread_spread: f64,
    /// Each thread's completed-op count (group A first).
    pub per_thread_ops: Vec<u64>,
    /// Each thread's throughput (ops over its own elapsed time).
    pub per_thread_ops_per_sec: Vec<f64>,
}

/// Jain's fairness index over per-thread throughput:
/// `(Σx)² / (n · Σx²)`. 1.0 means every thread got identical service;
/// `1/n` means one thread got everything. Empty or all-zero inputs
/// score 1.0 (nothing was served unevenly).
pub fn jains_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Per-thread spread statistics shared by every workload row.
#[derive(Debug, Clone)]
pub(crate) struct SpreadStats {
    pub fairness_index: f64,
    pub min_thread_ops_per_sec: f64,
    pub max_thread_ops_per_sec: f64,
    pub thread_spread: f64,
    pub mean_latency_nanos: f64,
    pub per_thread_ops: Vec<u64>,
    pub per_thread_ops_per_sec: Vec<f64>,
    pub total_ops: u64,
}

/// Summarize per-thread samples: throughput per thread (each thread's
/// ops over its *own* elapsed time, so a starved thread that finishes
/// late scores low even though it eventually completed its quota),
/// Jain's index over those, the min/max spread, and mean acquisition
/// latency weighted by ops.
pub(crate) fn spread_stats(samples: &[ThreadSample]) -> SpreadStats {
    let per_thread_ops: Vec<u64> = samples.iter().map(|s| s.ops).collect();
    let per_thread_ops_per_sec: Vec<f64> = samples
        .iter()
        .map(|s| s.ops as f64 / (s.elapsed_nanos.max(1) as f64 / 1e9))
        .collect();
    let total_ops: u64 = per_thread_ops.iter().sum();
    let total_latency: u64 = samples.iter().map(|s| s.latency_nanos).sum();
    let (mut min, mut max) = (f64::INFINITY, 0.0f64);
    for &x in &per_thread_ops_per_sec {
        min = min.min(x);
        max = max.max(x);
    }
    if !min.is_finite() {
        min = 0.0;
    }
    SpreadStats {
        fairness_index: jains_index(&per_thread_ops_per_sec),
        min_thread_ops_per_sec: min,
        max_thread_ops_per_sec: max,
        thread_spread: if min > 0.0 { max / min } else { 1.0 },
        mean_latency_nanos: total_latency as f64 / total_ops.max(1) as f64,
        per_thread_ops,
        per_thread_ops_per_sec,
        total_ops,
    }
}

/// Run one fairness workload on the chosen backend.
pub fn run_fairness(backend: Backend, spec: &FairnessSpec) -> FairnessPoint {
    let group_a = spec.group_a.min(spec.threads);
    let plans: Vec<WorkerPlan> = (0..spec.threads)
        .map(|i| WorkerPlan {
            iters: spec.iters,
            cs: Work::Iters(if i < group_a { spec.cs_iters_a } else { spec.cs_iters_b }),
            think: Work::Iters(spec.ncs_iters),
        })
        .collect();
    let (total_nanos, samples, hist) = match backend {
        Backend::Sim => run_sim_plans(spec.policy, &plans, spec.seed),
        Backend::Native => run_native_plans(spec.policy, &plans, std::time::Duration::ZERO),
        #[cfg(feature = "async-backend")]
        Backend::Async => crate::backend::run_async_plans(spec.policy, &plans),
    };
    let s = spread_stats(&samples);
    FairnessPoint {
        backend: backend.label().into(),
        policy: spec.policy.label(),
        threads: spec.threads,
        group_a,
        cs_iters_a: spec.cs_iters_a,
        cs_iters_b: spec.cs_iters_b,
        ncs_iters: spec.ncs_iters,
        iters: spec.iters,
        imbalanced: spec.cs_iters_a != spec.cs_iters_b,
        total_nanos,
        oversubscribed: matches!(backend, Backend::Native)
            && spec.threads > std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput_per_sec: s.total_ops as f64 / (total_nanos.max(1) as f64 / 1e9),
        wall_nanos_per_op: total_nanos as f64 / s.total_ops.max(1) as f64,
        mean_latency_nanos: s.mean_latency_nanos,
        p50_latency_nanos: hist.percentile(50.0),
        p99_latency_nanos: hist.percentile(99.0),
        fairness_index: s.fairness_index,
        min_thread_ops_per_sec: s.min_thread_ops_per_sec,
        max_thread_ops_per_sec: s.max_thread_ops_per_sec,
        thread_spread: s.thread_spread,
        per_thread_ops: s.per_thread_ops,
        per_thread_ops_per_sec: s.per_thread_ops_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::LockAlgorithm;

    fn quick_spec(policy: PolicyChoice) -> FairnessSpec {
        FairnessSpec {
            threads: 4,
            group_a: 2,
            iters: 15,
            cs_iters_a: 200,
            cs_iters_b: 600,
            ncs_iters: 50,
            policy,
            seed: 11,
        }
    }

    #[test]
    fn jains_index_is_one_for_identical_threads() {
        assert_eq!(jains_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jains_index(&[42.0]), 1.0);
    }

    #[test]
    fn jains_index_penalizes_constructed_imbalance() {
        // One thread gets 10x the service of the other three.
        let skewed = jains_index(&[10.0, 1.0, 1.0, 1.0]);
        assert!(skewed < 1.0, "skewed service must score below 1, got {skewed}");
        // Total starvation of all but one thread approaches 1/n.
        let starved = jains_index(&[100.0, 1e-9, 1e-9, 1e-9]);
        assert!(starved < 0.26, "near-total starvation must approach 1/n, got {starved}");
        // Mild imbalance sits between.
        let mild = jains_index(&[3.0, 2.0, 3.0, 2.0]);
        assert!(mild > starved && mild < 1.0);
    }

    #[test]
    fn fairness_runs_on_both_backends() {
        let spec = quick_spec(PolicyChoice::Algorithm(LockAlgorithm::Ticket));
        for backend in [Backend::Sim, Backend::Native] {
            let p = run_fairness(backend, &spec);
            assert_eq!(p.backend, backend.label());
            assert!(p.imbalanced);
            assert_eq!(p.per_thread_ops.len(), 4);
            assert_eq!(p.per_thread_ops.iter().sum::<u64>(), 4 * 15);
            assert!(p.fairness_index > 0.0 && p.fairness_index <= 1.0 + 1e-9);
            assert!(p.thread_spread >= 1.0);
            assert!(p.total_nanos > 0);
            assert!(p.p50_latency_nanos <= p.p99_latency_nanos, "{}", p.backend);
        }
    }

    #[test]
    fn every_policy_runs_the_imbalanced_workload() {
        let mut policies = vec![
            PolicyChoice::FixedSpin(32),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::AlgoAdaptive { high_water: 2, patience: 2 },
            PolicyChoice::FairAdaptive { unfair_wait_nanos: 200_000, patience: 2 },
        ];
        policies.extend(LockAlgorithm::ALL.map(PolicyChoice::Algorithm));
        for policy in policies {
            let p = run_fairness(Backend::Native, &quick_spec(policy));
            assert_eq!(p.per_thread_ops.iter().sum::<u64>(), 4 * 15, "{}", p.policy);
        }
    }

    #[cfg(feature = "async-backend")]
    #[test]
    fn fairness_runs_on_the_async_backend() {
        let spec = quick_spec(PolicyChoice::Adaptive { threshold: 2, n: 32 });
        let p = run_fairness(Backend::Async, &spec);
        assert_eq!(p.backend, "async");
        assert_eq!(p.per_thread_ops.iter().sum::<u64>(), 4 * 15);
        assert!(p.fairness_index > 0.0 && p.fairness_index <= 1.0 + 1e-9);
        assert!(p.total_nanos > 0);
    }

    #[test]
    fn group_a_is_clamped_to_the_thread_count() {
        let spec = FairnessSpec { threads: 2, group_a: 7, iters: 5, ..quick_spec(PolicyChoice::FixedSpin(16)) };
        let p = run_fairness(Backend::Native, &spec);
        assert_eq!(p.group_a, 2);
        assert_eq!(p.per_thread_ops.len(), 2);
    }

    #[test]
    fn sim_fairness_is_deterministic() {
        let spec = quick_spec(PolicyChoice::Algorithm(LockAlgorithm::Queue));
        let a = run_fairness(Backend::Sim, &spec);
        let b = run_fairness(Backend::Sim, &spec);
        assert_eq!(a.total_nanos, b.total_nanos);
        assert_eq!(a.fairness_index, b.fairness_index);
        assert_eq!(a.per_thread_ops_per_sec, b.per_thread_ops_per_sec);
    }
}
