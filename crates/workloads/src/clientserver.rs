//! The client-server scheduler-comparison workload ([MS93], recalled in
//! Section 2): "for such applications, priority locks exhibit the best
//! performance whereas FCFS locks exhibit the worst".
//!
//! One high-priority server thread and several clients share one lock.
//! Clients hold the lock for their critical sections continuously; the
//! server periodically needs it and its acquisition latency is the
//! figure of merit. With FCFS the server queues behind every client;
//! with a priority scheduler it is granted next; with handoff scheduling
//! the clients cooperatively designate the waiting server as successor.

use std::sync::Arc;

use adaptive_locks::{priority, Lock, LockCosts, ReconfigurableLock, SchedKind, WaitingPolicy};
use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig, SimWord};
use cthreads::fork;
use serde::Serialize;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct ClientServerConfig {
    /// Number of client threads (each on its own processor; the server
    /// gets one more).
    pub clients: usize,
    /// Lock requests the server makes.
    pub server_requests: u32,
    /// Client critical-section length.
    pub client_cs: Duration,
    /// Client think time between sections.
    pub client_think: Duration,
    /// Server think time between requests.
    pub server_interval: Duration,
    /// Server critical-section length.
    pub server_cs: Duration,
}

impl Default for ClientServerConfig {
    fn default() -> Self {
        ClientServerConfig {
            clients: 5,
            server_requests: 20,
            client_cs: Duration::micros(150),
            client_think: Duration::micros(20),
            server_interval: Duration::micros(500),
            server_cs: Duration::micros(50),
        }
    }
}

/// Measured outcome for one scheduler.
#[derive(Debug, Clone, Serialize)]
pub struct ClientServerResult {
    /// Scheduler label.
    pub scheduler: String,
    /// Mean server lock-acquisition latency (ns).
    pub mean_server_wait_nanos: u64,
    /// Worst server lock-acquisition latency (ns).
    pub max_server_wait_nanos: u64,
    /// Total run time (ns).
    pub total_nanos: u64,
}

/// Run the workload under one lock scheduler.
pub fn run_client_server(cfg: &ClientServerConfig, sched: SchedKind) -> ClientServerResult {
    let cfg = cfg.clone();
    let processors = cfg.clients + 1;
    let sim_cfg = SimConfig {
        processors,
        ..SimConfig::default()
    };
    let ((mean, max, total), _) = sim::run(sim_cfg, move || {
        let lock = Arc::new(ReconfigurableLock::with_parts(
            "cs-lock",
            ctx::current_node(),
            WaitingPolicy::pure_blocking(),
            sched,
            LockCosts::default(),
        ));
        // The server raises this flag while it wants the lock so that
        // handoff-scheduling clients know whom to designate.
        let server_waiting = SimWord::new_local(0);
        let server_tid = tid_cell();
        let stop = SimWord::new_local(0);
        let t0 = ctx::now();

        // Clients on processors 1..=clients.
        let client_handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let server_waiting = server_waiting.clone();
                let server_tid = server_tid.clone();
                let stop = stop.clone();
                let (cs, think) = (cfg.client_cs, cfg.client_think);
                fork(ProcId(i + 1), format!("client{i}"), move || {
                    while stop.load() == 0 {
                        lock.lock();
                        ctx::advance(cs);
                        if sched == SchedKind::Handoff && server_waiting.load() == 1 {
                            let tid = server_tid.peek();
                            if tid != 0 {
                                lock.set_successor(Some(butterfly_sim::ThreadId(
                                    (tid - 1) as usize,
                                )));
                            }
                        }
                        lock.unlock();
                        ctx::advance(think);
                    }
                })
            })
            .collect();

        // Server on processor 0 (this thread).
        priority::set(10);
        server_tid.poke(|v| *v = ctx::current().0 as u64 + 1);
        let mut waits: Vec<u64> = Vec::with_capacity(cfg.server_requests as usize);
        for _ in 0..cfg.server_requests {
            ctx::advance(cfg.server_interval);
            server_waiting.store(1);
            let t = ctx::now();
            lock.lock();
            waits.push(ctx::now().since(t).as_nanos());
            server_waiting.store(0);
            ctx::advance(cfg.server_cs);
            lock.unlock();
        }
        priority::set(0);
        stop.store(1);
        for h in client_handles {
            h.join();
        }
        let total = ctx::now().since(t0).as_nanos();
        let mean = waits.iter().sum::<u64>() / waits.len() as u64;
        let max = *waits.iter().max().expect("every round records one wait");
        (mean, max, total)
    })
    .expect("client/server simulation runs to completion");
    ClientServerResult {
        scheduler: format!("{sched}"),
        mean_server_wait_nanos: mean,
        max_server_wait_nanos: max,
        total_nanos: total,
    }
}

// Small helper: a SimCell<u64> holding the server's ThreadId + 1 (0 =
// unset), created on the caller's node.
fn tid_cell() -> butterfly_sim::SimCell<u64> {
    butterfly_sim::SimCell::new_local(0)
}

/// Run under all three schedulers (FCFS, Priority, Handoff).
pub fn run_all_schedulers(cfg: &ClientServerConfig) -> Vec<ClientServerResult> {
    [SchedKind::Fcfs, SchedKind::Priority, SchedKind::Handoff]
        .into_iter()
        .map(|s| run_client_server(cfg, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClientServerConfig {
        ClientServerConfig {
            clients: 3,
            server_requests: 10,
            ..ClientServerConfig::default()
        }
    }

    #[test]
    fn priority_beats_fcfs_for_server_latency() {
        let cfg = small();
        let fcfs = run_client_server(&cfg, SchedKind::Fcfs);
        let prio = run_client_server(&cfg, SchedKind::Priority);
        assert!(
            prio.mean_server_wait_nanos < fcfs.mean_server_wait_nanos,
            "priority ({}) must beat FCFS ({})",
            prio.mean_server_wait_nanos,
            fcfs.mean_server_wait_nanos
        );
    }

    #[test]
    fn handoff_beats_fcfs_for_server_latency() {
        let cfg = small();
        let fcfs = run_client_server(&cfg, SchedKind::Fcfs);
        let handoff = run_client_server(&cfg, SchedKind::Handoff);
        assert!(
            handoff.mean_server_wait_nanos < fcfs.mean_server_wait_nanos,
            "handoff ({}) must beat FCFS ({})",
            handoff.mean_server_wait_nanos,
            fcfs.mean_server_wait_nanos
        );
    }

    #[test]
    fn all_schedulers_complete() {
        let out = run_all_schedulers(&small());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.total_nanos > 0));
        assert_eq!(out[0].scheduler, "fcfs");
        assert_eq!(out[1].scheduler, "priority");
        assert_eq!(out[2].scheduler, "handoff");
    }
}
