//! Lock specifications for workloads: every lock variant the experiments
//! compare, buildable by label.

use std::sync::Arc;

use adaptive_locks::{
    AdaptiveLock, BlockingLock, Lock, LockCosts, McsLock, ReconfigurableLock, SimpleAdapt,
    SpinBackoffLock, SpinLock, TicketLock, WaitingPolicy,
};
use butterfly_sim::{Duration, NodeId};

/// A buildable lock variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockSpec {
    /// Test-and-test-and-set spin lock.
    Spin,
    /// Anderson-style spin with backoff.
    SpinBackoff,
    /// Ticket lock (FIFO spin).
    Ticket,
    /// MCS queue lock (local spinning).
    Mcs,
    /// FIFO blocking lock with handoff.
    Blocking,
    /// Combined lock: spin `k` probes, then block (Figure 1's
    /// combined(1)/(10)/(50)).
    Combined(u32),
    /// Adaptive lock with `simple-adapt(threshold, n)`.
    Adaptive {
        /// `Waiting-Threshold`.
        threshold: u64,
        /// Spin increment `n`.
        n: u32,
    },
}

impl LockSpec {
    /// Build the lock on `node` with default costs.
    pub fn build(self, node: NodeId) -> Arc<dyn Lock> {
        self.build_with_costs(node, LockCosts::default())
    }

    /// Build with an explicit cost model.
    pub fn build_with_costs(self, node: NodeId, costs: LockCosts) -> Arc<dyn Lock> {
        match self {
            LockSpec::Spin => Arc::new(SpinLock::with_costs(node, costs)),
            LockSpec::SpinBackoff => Arc::new(SpinBackoffLock::with_params(
                node,
                Duration::micros(2),
                4,
                costs,
            )),
            LockSpec::Ticket => Arc::new(TicketLock::with_costs(node, costs)),
            LockSpec::Mcs => Arc::new(McsLock::with_costs(node, costs)),
            LockSpec::Blocking => Arc::new(BlockingLock::with_costs(node, costs)),
            LockSpec::Combined(k) => Arc::new(ReconfigurableLock::with_parts(
                "combined",
                node,
                WaitingPolicy::combined(k),
                adaptive_locks::SchedKind::Fcfs,
                costs,
            )),
            LockSpec::Adaptive { threshold, n } => Arc::new(AdaptiveLock::with_parts(
                node,
                WaitingPolicy::default(),
                adaptive_locks::SchedKind::Fcfs,
                costs,
                Box::new(SimpleAdapt::new(threshold, n)),
                2,
            )),
        }
    }

    /// Label used in figures and tables.
    pub fn label(self) -> String {
        match self {
            LockSpec::Spin => "spin".into(),
            LockSpec::SpinBackoff => "spin-backoff".into(),
            LockSpec::Ticket => "ticket".into(),
            LockSpec::Mcs => "mcs".into(),
            LockSpec::Blocking => "blocking".into(),
            LockSpec::Combined(k) => format!("combined({k})"),
            LockSpec::Adaptive { .. } => "adaptive".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, ctx, SimConfig};

    #[test]
    fn every_spec_builds_and_locks() {
        let specs = [
            LockSpec::Spin,
            LockSpec::SpinBackoff,
            LockSpec::Ticket,
            LockSpec::Mcs,
            LockSpec::Blocking,
            LockSpec::Combined(10),
            LockSpec::Adaptive { threshold: 3, n: 5 },
        ];
        let (ok, _) = sim::run(SimConfig::butterfly(1), move || {
            for spec in specs {
                let lock = spec.build(ctx::current_node());
                lock.lock();
                lock.unlock();
                assert!(lock.try_lock(), "{}", spec.label());
                lock.unlock();
            }
            true
        })
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            LockSpec::Spin,
            LockSpec::SpinBackoff,
            LockSpec::Ticket,
            LockSpec::Mcs,
            LockSpec::Blocking,
            LockSpec::Combined(1),
            LockSpec::Combined(50),
            LockSpec::Adaptive { threshold: 3, n: 5 },
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
