//! # workloads
//!
//! Synthetic lock workloads and micro-measurements behind the paper's
//! evaluation:
//!
//! * [`csweep`] — the critical-section-length sweep of **Figure 1**
//!   (pure spin vs pure blocking vs combined(1)/(10)/(50));
//! * [`cycle`] — the locking-cycle (unlock→lock on a busy lock)
//!   measurement of **Tables 6 and 7**;
//! * [`measure`] — uncontended lock/unlock latencies (**Tables 4/5**)
//!   and configuration-operation costs (**Table 8**), local vs remote;
//! * [`clientserver`] — the FCFS vs Priority vs Handoff scheduler
//!   comparison recalled from \[MS93\] in Section 2;
//! * [`phased`] — a phase-changing pattern demonstrating when adaptation
//!   pays;
//! * [`backend`] — backend-neutral contention workloads: the same spec
//!   runs on the butterfly simulator or on real OS threads, with
//!   per-thread op/latency accounting behind every row;
//! * [`fairness`] — the dlock2-style imbalance suite: two critical-
//!   section groups, a non-critical-section length sweep, and Jain's
//!   fairness index + per-thread throughput spread per row;
//! * [`structures`] — real-data-structure workloads (lock-protected
//!   counter vs lock-free CAS, queue, hashmap) under every policy;
//! * [`loadgen`] — the open-loop service load generator: Zipf-skewed,
//!   bursty arrival schedules against the sharded adaptive store, with
//!   coordinated-omission-safe enter-to-complete tail latencies;
//! * [`soak`] — the chaos soak: contention under a seeded fault storm
//!   with live control-plane traffic, graded against conservation,
//!   breaker-lifecycle, and quiescence oracles.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::unwrap_used)]

pub mod backend;
pub mod clientserver;
pub mod crossover;
pub mod csweep;
pub mod cycle;
pub mod fairness;
pub mod loadgen;
pub mod measure;
pub mod phased;
pub mod soak;
pub mod spec;
pub mod structures;

pub use backend::{
    run_contention, sim_lock_spec, Backend, ContentionPoint, ContentionSpec, ThreadSample,
};
pub use fairness::{jains_index, run_fairness, FairnessPoint, FairnessSpec};
pub use loadgen::{
    arrival_schedule, run_service_load, ServiceLoadPoint, ServiceLoadSpec, ZipfSampler,
};
pub use structures::{run_structure, StructureKind, StructurePoint, StructureSpec};
pub use clientserver::{run_all_schedulers, run_client_server, ClientServerConfig, ClientServerResult};
pub use crossover::{find_crossover, Crossover};
pub use csweep::{figure1_locks, run_once, run_sweep, SweepConfig, SweepPoint};
pub use cycle::{measure_cycle, measure_cycle_on};
pub use measure::{
    atomior_cost, config_op_costs, config_op_rw_costs, lock_unlock_cost, LatencyHistogram,
};
pub use phased::{compare_phased, run_phased, PhasedConfig, PhasedResult};
pub use soak::{run_soak, SoakResult, SoakSpec, StallEpisode};
pub use spec::LockSpec;
