//! `asyncbench` — poll-vs-park sweep for the async adaptive mutex,
//! plus the three-backend comparison and the TCP-served store scenario.
//!
//! Three sections, mirroring the native `lockbench` conventions:
//!
//! 1. **Spin-budget ladder.** The same contention workload (tasks ×
//!    critical-section grid, `Backend::Async`) runs once per fixed
//!    re-poll budget {0, 1, 4, 16, 64, 256} and once under the
//!    adaptive poll-vs-park policy. Budget 0 is *pure async wait*
//!    (every contended acquire registers a waker and parks); large
//!    budgets approximate pure polling (the future reschedules itself
//!    instead of queueing). The ladder locates the crossover and the
//!    verdicts check the adaptive policy tracks it: within 10% of the
//!    best fixed budget (geomean across cells) and ≥ 1.3x over pure
//!    async wait on the short-CS/low-contention cells where parking's
//!    per-wait overhead (queue mutex, node allocation, waker wake)
//!    dominates.
//!
//! 2. **Three-backend rows.** One identical spec on `Backend::Sim`
//!    (virtual time), `Backend::Native` (OS threads) and
//!    `Backend::Async` (tasks), so the async backend's costs sit in
//!    the same table as the two older ones. Sim time and wall time are
//!    different units — the rows are for shape, not cross-backend
//!    ratios, and no verdict compares across them.
//!
//! 3. **TCP-served store.** The PR 9 sharded store served over real
//!    TCP (`asyncx::serve_store`), driven by open-loop clients whose
//!    arrival schedules come from `workloads::loadgen`. Mid-run an
//!    operator connection retunes a hot shard through the `ctl`
//!    command (control plane over the wire). The verdict is
//!    conservation: after the retune, `total` must equal exactly the
//!    number of increments sent — zero lost operations — and the
//!    latency histograms are split at the retune instant so the
//!    disturbance is visible.
//!
//! Run with `EXPERIMENT_SCALE=full cargo run --release -p bench --bin
//! asyncbench` for committed numbers (`BENCH_async.json` at the
//! workspace root); the default quick scale is sized for CI smoke.
//! DESIGN.md §17 explains the poll-vs-park mapping; EXPERIMENTS.md
//! has the reading guide.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adaptive_control::{BreakerHub, ControlPlane};
use adaptive_native::PolicyChoice;
use adaptive_service::{ServiceConfig, ShardedStore};
use asyncx::{serve_store, BlockingLineClient, StoreServerConfig};
use bench::{wait_until_nanos, workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use workloads::{
    arrival_schedule, run_contention, Backend, ContentionPoint, ContentionSpec,
    LatencyHistogram, ServiceLoadSpec,
};

/// Repeats per ladder cell (median throughput kept). The sim backend
/// is deterministic and runs once.
const REPEATS: usize = 5;

/// Fixed re-poll budgets for the ladder. 0 = pure async wait.
const BUDGETS: [u32; 6] = [0, 1, 4, 16, 64, 256];

/// The adaptive poll-vs-park policy under test (maps to
/// `AsyncPollAdapt` on the async backend: waiting ≤ threshold grows
/// the budget by `n`, waiting above it halves the budget toward 0).
const ADAPTIVE: PolicyChoice = PolicyChoice::Adaptive { threshold: 3, n: 16 };

/// One ladder cell result.
#[derive(Debug, Clone, Serialize)]
struct LadderRow {
    /// Concurrent tasks contending for the one mutex.
    tasks: usize,
    /// Critical-section busy work (ns); the guard additionally spans
    /// one executor yield (see `workloads::backend::run_async_plans`).
    cs_nanos: u64,
    /// `budget-<n>` or `adaptive`.
    policy: String,
    /// The fixed budget, absent for the adaptive row.
    budget: Option<u32>,
    /// Median-of-repeats throughput (acquisitions/sec of wall time).
    throughput_per_sec: f64,
    /// Mean enter-to-acquired latency (ns) of the median run.
    mean_latency_nanos: f64,
    /// Median acquisition latency (ns) of the median run.
    p50_latency_nanos: u64,
    /// Tail acquisition latency (ns) of the median run.
    p99_latency_nanos: u64,
}

/// Run one (tasks, cs, policy) cell `REPEATS` times on the async
/// backend and keep the run with the median throughput.
fn ladder_cell(tasks: usize, iters: u32, cs_nanos: u64, policy: PolicyChoice) -> ContentionPoint {
    let spec = ContentionSpec {
        threads: tasks,
        iters,
        cs_nanos,
        think_nanos: 0,
        policy,
        ..ContentionSpec::default()
    };
    let mut runs: Vec<ContentionPoint> =
        (0..REPEATS).map(|_| run_contention(Backend::Async, &spec)).collect();
    runs.sort_by(|a, b| a.throughput_per_sec.total_cmp(&b.throughput_per_sec));
    runs.swap_remove(runs.len() / 2)
}

/// The full ladder: every grid cell under every fixed budget plus the
/// adaptive policy.
fn run_ladder(tasks_grid: &[usize], cs_grid: &[u64], iters: u32) -> Vec<LadderRow> {
    let mut rows = Vec::new();
    for &tasks in tasks_grid {
        for &cs in cs_grid {
            for &budget in &BUDGETS {
                let p = ladder_cell(tasks, iters, cs, PolicyChoice::FixedSpin(budget));
                rows.push(LadderRow {
                    tasks,
                    cs_nanos: cs,
                    policy: format!("budget-{budget}"),
                    budget: Some(budget),
                    throughput_per_sec: p.throughput_per_sec,
                    mean_latency_nanos: p.mean_latency_nanos,
                    p50_latency_nanos: p.p50_latency_nanos,
                    p99_latency_nanos: p.p99_latency_nanos,
                });
            }
            let p = ladder_cell(tasks, iters, cs, ADAPTIVE);
            rows.push(LadderRow {
                tasks,
                cs_nanos: cs,
                policy: "adaptive".into(),
                budget: None,
                throughput_per_sec: p.throughput_per_sec,
                mean_latency_nanos: p.mean_latency_nanos,
                p50_latency_nanos: p.p50_latency_nanos,
                p99_latency_nanos: p.p99_latency_nanos,
            });
        }
    }
    rows
}

/// Throughput of one (tasks, cs, policy) row.
fn ladder_tput(rows: &[LadderRow], tasks: usize, cs: u64, policy: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.tasks == tasks && r.cs_nanos == cs && r.policy == policy)
        .map(|r| r.throughput_per_sec)
}

/// Dedicated adaptive-vs-pure-async-wait head-to-head for the
/// short-CS/low-contention verdict. The ladder cells keep their window
/// small so the whole grid stays cheap, but a 2-task zero-CS run then
/// lasts only a few ms — scheduler noise territory. This rerun uses a
/// window an order of magnitude longer and keeps the best of
/// `REPEATS` (the run least disturbed by the host, the same
/// convention `lockbench` uses for contended cells). Returns
/// `(adaptive, pure_wait)` acquisitions/sec.
fn head_to_head(tasks: usize, iters: u32, cs_nanos: u64) -> (f64, f64) {
    let best = |policy: PolicyChoice| -> f64 {
        let spec = ContentionSpec {
            threads: tasks,
            iters,
            cs_nanos,
            think_nanos: 0,
            policy,
            ..ContentionSpec::default()
        };
        (0..REPEATS)
            .map(|_| run_contention(Backend::Async, &spec).throughput_per_sec)
            .fold(0.0f64, f64::max)
    };
    (best(ADAPTIVE), best(PolicyChoice::FixedSpin(0)))
}

/// Latency percentiles of one phase of the TCP scenario.
#[derive(Debug, Clone, Serialize)]
struct TcpPhase {
    phase: String,
    ops: u64,
    mean_latency_nanos: f64,
    p50_latency_nanos: u64,
    p90_latency_nanos: u64,
    p99_latency_nanos: u64,
    p999_latency_nanos: u64,
}

fn phase_row(phase: &str, hist: &LatencyHistogram) -> TcpPhase {
    TcpPhase {
        phase: phase.into(),
        ops: hist.count(),
        mean_latency_nanos: hist.mean(),
        p50_latency_nanos: hist.percentile(50.0),
        p90_latency_nanos: hist.percentile(90.0),
        p99_latency_nanos: hist.percentile(99.0),
        p999_latency_nanos: hist.percentile(99.9),
    }
}

/// What the TCP scenario measured.
struct TcpOutcome {
    clients: usize,
    ops_per_client: u32,
    rate_per_client: f64,
    expected_total: u128,
    observed_total: Option<u128>,
    client_errors: u64,
    server_incrs: u64,
    retune_at_nanos: u64,
    control_log: Vec<(String, String)>,
    drained: bool,
    phases: Vec<TcpPhase>,
}

/// Serve the sharded store over TCP, drive it with open-loop clients,
/// retune a shard mid-run through the wire-level control plane, and
/// check conservation afterwards.
fn run_tcp_scenario(clients: usize, ops_per_client: u32, rate_per_client: f64) -> TcpOutcome {
    let store = Arc::new(ShardedStore::new(ServiceConfig::default()));
    let hub = Arc::new(BreakerHub::default());
    store.register_with_hub(Arc::clone(&hub));
    let handle = serve_store(
        Arc::clone(&store),
        StoreServerConfig {
            workers: 2,
            plane: Some(ControlPlane::new(Arc::clone(&hub))),
            hub: Some(Arc::clone(&hub)),
            ..StoreServerConfig::default()
        },
    )
    .expect("bind TCP store server");
    let addr = handle.addr();

    // Arrival schedules from loadgen: steady (no burst gaps), jittered
    // pacing at `rate_per_client`, deterministic per (seed, worker).
    let load = ServiceLoadSpec {
        workers: clients,
        ops_per_worker: ops_per_client,
        rate_per_worker: rate_per_client,
        burst_off_nanos: 0,
        ..ServiceLoadSpec::default()
    };
    let schedules: Vec<Vec<u64>> = (0..clients).map(|w| arrival_schedule(&load, w)).collect();
    let span = schedules.iter().filter_map(|s| s.last().copied()).max().unwrap_or(0);
    // The operator strikes halfway through the offered schedule; the
    // exact instant is published so clients classify each op's phase
    // by its *scheduled* arrival (deterministic, not racy).
    let retune_at = span / 2;

    let barrier = Arc::new(Barrier::new(clients + 1));
    let errors = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for (id, schedule) in schedules.into_iter().enumerate() {
        let barrier = Arc::clone(&barrier);
        let errors = Arc::clone(&errors);
        workers.push(std::thread::spawn(move || {
            let mut conn = BlockingLineClient::connect(addr).expect("connect client");
            let mut before = LatencyHistogram::new();
            let mut after = LatencyHistogram::new();
            barrier.wait();
            let epoch = Instant::now();
            for (i, sched) in schedule.iter().copied().enumerate() {
                wait_until_nanos(epoch, sched);
                let key = ((id as u64) << 32) | ((i as u64 * 31) % 512);
                match conn.send(&format!("incr {key} 1")) {
                    Ok(Ok(_)) => {}
                    _ => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Open-loop latency: reply time minus *scheduled*
                // arrival, so server-side queueing counts.
                let done = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let lat = done.saturating_sub(sched);
                if sched < retune_at {
                    before.record(lat);
                } else {
                    after.record(lat);
                }
            }
            conn.send("quit").ok();
            (before, after)
        }));
    }

    // The operator: wait for the halfway mark, then retune the hottest
    // shard live — spin budget to 0 (park-only), then a delay tweak —
    // all through the same TCP connection the data path uses.
    let mut operator = BlockingLineClient::connect(addr).expect("connect operator");
    barrier.wait();
    let epoch = Instant::now();
    wait_until_nanos(epoch, retune_at);
    let mut control_log = Vec::new();
    for cmd in [
        "ctl targets",
        "ctl retune shard-0 spin 0",
        "ctl retune shard-0 delay 16",
        "ctl health shard-0",
    ] {
        let reply = match operator.send(cmd) {
            Ok(Ok(body)) => body,
            Ok(Err(diag)) => format!("err {diag}"),
            Err(e) => format!("transport error: {e}"),
        };
        control_log.push((cmd.to_string(), reply));
    }

    let mut before = LatencyHistogram::new();
    let mut after = LatencyHistogram::new();
    for w in workers {
        let (b, a) = w.join().expect("client thread");
        before.merge(&b);
        after.merge(&a);
    }

    // Conservation oracle: every accepted increment must be visible.
    let expected_total = u128::from(ops_per_client) * clients as u128;
    let observed_total = operator
        .send("total")
        .ok()
        .and_then(Result::ok)
        .and_then(|s| s.trim().parse::<u128>().ok());
    operator.send("quit").ok();
    let server_incrs = handle.stats().incrs;
    let drained = handle.shutdown(Duration::from_secs(5));

    let mut all = LatencyHistogram::new();
    all.merge(&before);
    all.merge(&after);
    TcpOutcome {
        clients,
        ops_per_client,
        rate_per_client,
        expected_total,
        observed_total,
        client_errors: errors.load(Ordering::Relaxed),
        server_incrs,
        retune_at_nanos: retune_at,
        control_log,
        drained,
        phases: vec![
            phase_row("before-retune", &before),
            phase_row("after-retune", &after),
            phase_row("overall", &all),
        ],
    }
}

/// Geometric mean of `ratios` (1.0 for an empty slice).
fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let (scale_label, tasks_grid, cs_grid, iters, tcp_ops, tcp_rate): (
        &str,
        &[usize],
        &[u64],
        u32,
        u32,
        f64,
    ) = match scale {
        // The TCP rate is sized to stay under the server's sustainable
        // service rate (its idle read path backs off in 500µs sleeps,
        // bounding per-connection throughput near 1.5-2k ops/s): an
        // open-loop histogram above saturation measures the backlog
        // ramp, not the server.
        Scale::Quick => ("quick", &[2, 8], &[0, 5_000], 300, 400, 1_000.0),
        Scale::Full => ("full", &[2, 4, 8, 16], &[0, 1_000, 10_000], 1_500, 2_000, 1_200.0),
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("asyncbench — scale={scale_label}, host parallelism={cores}");

    // --- 1. Spin-budget ladder -------------------------------------
    let ladder = run_ladder(tasks_grid, cs_grid, iters);
    println!();
    println!(
        "{:<7} {:>9} {:<12} {:>14} {:>10} {:>10}",
        "tasks", "cs (ns)", "policy", "acq/sec", "p50 (ns)", "p99 (ns)"
    );
    for r in &ladder {
        println!(
            "{:<7} {:>9} {:<12} {:>14.0} {:>10} {:>10}",
            r.tasks, r.cs_nanos, r.policy, r.throughput_per_sec, r.p50_latency_nanos,
            r.p99_latency_nanos
        );
    }

    // Verdict 1: adaptive within 10% of the best fixed budget, as the
    // geomean across every grid cell of adaptive/best-fixed throughput.
    let mut vs_best = Vec::new();
    for &tasks in tasks_grid {
        for &cs in cs_grid {
            let Some(adaptive) = ladder_tput(&ladder, tasks, cs, "adaptive") else { continue };
            let best_fixed = BUDGETS
                .iter()
                .filter_map(|b| ladder_tput(&ladder, tasks, cs, &format!("budget-{b}")))
                .fold(0.0f64, f64::max);
            if best_fixed > 0.0 {
                vs_best.push(adaptive / best_fixed);
            }
        }
    }
    let adaptive_vs_best_geomean = geomean(&vs_best);
    let within_10pct = adaptive_vs_best_geomean >= 0.9;

    // Verdict 2: adaptive ≥ 1.3x over pure async wait (budget 0) on
    // the short-CS/low-contention cell (smallest cs, smallest tasks),
    // remeasured head-to-head with a longer window (see `head_to_head`).
    let short_cs = cs_grid.iter().copied().min().unwrap_or(0);
    let low_tasks = tasks_grid.iter().copied().min().unwrap_or(2);
    let h2h_iters = iters.saturating_mul(10);
    let (h2h_adaptive, h2h_pure) = head_to_head(low_tasks, h2h_iters, short_cs);
    let vs_pure_wait = if h2h_pure > 0.0 { h2h_adaptive / h2h_pure } else { 0.0 };
    let beats_pure_wait = vs_pure_wait >= 1.3;

    println!();
    println!(
        "adaptive vs best fixed budget: {adaptive_vs_best_geomean:.3}x geomean ({})",
        if within_10pct { "within 10%: PASS" } else { "within 10%: FAIL" }
    );
    println!(
        "adaptive vs pure async wait (cs={short_cs}ns, tasks={low_tasks}, {h2h_iters} iters/task): \
         {h2h_adaptive:.0} vs {h2h_pure:.0} acq/sec = {vs_pure_wait:.2}x ({})",
        if beats_pure_wait { ">=1.3x: PASS" } else { ">=1.3x: FAIL" }
    );

    // --- 2. Three-backend comparison -------------------------------
    let spec = ContentionSpec { threads: 4, iters, cs_nanos: 1_000, think_nanos: 1_000, ..ContentionSpec::default() };
    let three: Vec<ContentionPoint> = [Backend::Sim, Backend::Native, Backend::Async]
        .into_iter()
        .map(|b| run_contention(b, &spec))
        .collect();
    println!();
    println!(
        "{:<8} {:<16} {:>14} {:>10} {:>10}  (threads=4, cs=1000ns, think=1000ns)",
        "backend", "policy", "acq/sec", "p50 (ns)", "p99 (ns)"
    );
    for p in &three {
        println!(
            "{:<8} {:<16} {:>14.0} {:>10} {:>10}",
            p.backend, p.policy, p.throughput_per_sec, p.p50_latency_nanos, p.p99_latency_nanos
        );
    }

    // --- 3. TCP-served store with mid-run retune -------------------
    let tcp = run_tcp_scenario(4, tcp_ops, tcp_rate);
    println!();
    println!(
        "tcp scenario: {} clients x {} ops at {:.0}/s each, retune at t={}ms",
        tcp.clients,
        tcp.ops_per_client,
        tcp.rate_per_client,
        tcp.retune_at_nanos / 1_000_000
    );
    for (cmd, reply) in &tcp.control_log {
        let first = reply.lines().next().unwrap_or("");
        println!("  operator> {cmd}  ->  {first}");
    }
    for p in &tcp.phases {
        println!(
            "  {:<14} ops={:<6} p50={:<8} p90={:<8} p99={:<8} p999={}",
            p.phase, p.ops, p.p50_latency_nanos, p.p90_latency_nanos, p.p99_latency_nanos,
            p.p999_latency_nanos
        );
    }
    let zero_lost = tcp.observed_total == Some(tcp.expected_total) && tcp.client_errors == 0;
    println!(
        "  conservation: expected={} observed={:?} client_errors={} ({})",
        tcp.expected_total,
        tcp.observed_total,
        tcp.client_errors,
        if zero_lost { "zero lost ops: PASS" } else { "zero lost ops: FAIL" }
    );

    let control_log: Vec<serde_json::Value> = tcp
        .control_log
        .iter()
        .map(|(cmd, reply)| json!({ "command": cmd, "reply": reply }))
        .collect();
    let out = json!({
        "description": "async adaptive mutex poll-vs-park sweep: fixed re-poll-budget ladder vs the adaptive policy on Backend::Async, a sim/native/async three-backend comparison, and the sharded store served over TCP with a mid-run shard retune through the wire-level control plane (DESIGN.md §17, EXPERIMENTS.md)",
        "scale": scale_label,
        "host_parallelism": cores,
        "repeats": REPEATS,
        "ladder": {
            "budgets": (BUDGETS.to_vec()),
            "adaptive_policy": "poll-adapt threshold=3 step=16",
            "iters_per_task": iters,
            "rows": ladder,
        },
        "three_backend": {
            "note": "identical spec per backend; sim reports virtual ns, native/async wall ns — compare shapes, not absolute ratios",
            "rows": three,
        },
        "tcp_scenario": {
            "clients": (tcp.clients),
            "ops_per_client": (tcp.ops_per_client),
            "rate_per_client": (tcp.rate_per_client),
            "retune_at_nanos": (tcp.retune_at_nanos),
            "expected_total": (tcp.expected_total.to_string()),
            "observed_total": (tcp.observed_total.map(|t| t.to_string())),
            "client_errors": (tcp.client_errors),
            "server_incrs": (tcp.server_incrs),
            "control_log": control_log,
            "drained": (tcp.drained),
            "phases": (tcp.phases),
        },
        "head_to_head": {
            "note": "adaptive vs pure async wait on the short-CS/low-contention cell, 10x ladder window, best-of-repeats",
            "tasks": low_tasks,
            "cs_nanos": short_cs,
            "iters_per_task": h2h_iters,
            "adaptive_per_sec": h2h_adaptive,
            "pure_wait_per_sec": h2h_pure,
        },
        "verdicts": {
            "adaptive_vs_best_fixed_geomean": adaptive_vs_best_geomean,
            "adaptive_within_10pct_of_best_fixed": within_10pct,
            "adaptive_vs_pure_async_wait": vs_pure_wait,
            "adaptive_beats_pure_async_wait_1_3x": beats_pure_wait,
            "tcp_zero_lost_ops": zero_lost,
        },
    });
    let path = workspace_root().join("BENCH_async.json");
    let rendered = serde_json::to_string_pretty(&out).expect("serialize") + "\n";
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!();
    println!("wrote {}", path.display());

    if within_10pct && beats_pure_wait && zero_lost {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
