//! The service sweep: the sharded adaptive KV/counter store under an
//! open-loop, Zipf-skewed, bursty load — shards × skew × policy ×
//! workers — writing `BENCH_service.json` at the workspace root.
//!
//! ```text
//! EXPERIMENT_SCALE=quick cargo run --release -p bench --bin service   # CI smoke
//! EXPERIMENT_SCALE=full  cargo run --release -p bench --bin service   # real numbers
//! ```
//!
//! The sweep answers the paper's question at service scale: do
//! per-object (here per-shard) adaptive locks beat the best *statically
//! chosen* configuration? Static cells pin a shard count (resharding
//! disabled) and one of the paper's fixed lock configurations for every
//! shard — spin-then-park, FIFO ticket, pure blocking: the choices a
//! non-adaptive deployment actually has. The adaptive cell starts at
//! the smallest static depth and deploys the machinery under test:
//! hot shards migrate to the flat-combining write-batching path (the
//! op-shipping layer, not a static baseline), cold shards keep
//! attribute-tuned spin-park, and shards whose contended-acquisition
//! rate crosses the threshold are split. The offered rate deliberately
//! exceeds service capacity, so throughput measures capacity and the
//! enter-to-complete percentiles (taken from the *scheduled* arrival —
//! coordinated-omission-safe) measure how each configuration absorbs
//! the backlog.
//!
//! Failure policy matches `perf`: a cell that panics lands in `errors`
//! and the sweep continues; an unwritable JSON is a one-line error and
//! a non-zero exit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adaptive_control::{BreakerHub, ControlPlane};
use adaptive_native::{LockAlgorithm, PolicyChoice};
use adaptive_service::{ServiceConfig, ServicePolicy, ShardedStore};
use bench::{improvement_pct, wait_until_nanos, workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use workloads::{
    arrival_schedule, run_service_load, LatencyHistogram, ServiceLoadPoint, ServiceLoadSpec,
};

/// One sweep cell: a store configuration to offer the load to.
#[derive(Clone, Copy)]
struct Cell {
    mode: &'static str,
    initial_depth: u32,
    max_depth: u32,
    policy: ServicePolicy,
    wire_control: bool,
}

/// One row of `BENCH_service.json`: the cell identity, the measured
/// point, and the divergence evidence — flat, so shape checks can
/// assert every percentile field on every row.
#[derive(Serialize)]
struct ServiceRow {
    mode: &'static str,
    initial_depth: u32,
    max_depth: u32,
    policy: String,
    workers: usize,
    zipf_s: f64,
    read_pct: u32,
    ops: u64,
    writes: u64,
    shards_initial: usize,
    shards_final: usize,
    splits: u64,
    total_nanos: u64,
    oversubscribed: bool,
    throughput_per_sec: f64,
    mean_latency_nanos: f64,
    p50_latency_nanos: u64,
    p90_latency_nanos: u64,
    p99_latency_nanos: u64,
    p999_latency_nanos: u64,
    max_latency_nanos: u64,
    diverged: bool,
    engines: Vec<String>,
    hot_shard_algorithm: Option<String>,
    cold_shard_algorithm: Option<String>,
    control_targets: Option<usize>,
    control_snapshot_bytes: Option<usize>,
    /// Full per-shard evidence, kept only for adaptive cells (static
    /// cells are uniform by construction): where the divergence verdict
    /// comes from, and the raw material for re-deriving heat/split
    /// rates from the committed artifact.
    shards: Vec<adaptive_service::ShardSnapshot>,
}

impl ServiceRow {
    fn from_point(cell: &Cell, p: ServiceLoadPoint) -> ServiceRow {
        let shards = if cell.mode == "adaptive" { p.shards.clone() } else { Vec::new() };
        let (diverged, engines, hot, cold) = match &p.divergence {
            Some(v) => (
                v.diverged,
                v.engines.clone(),
                Some(v.hot_algorithm.clone()),
                Some(v.cold_algorithm.clone()),
            ),
            None => (false, Vec::new(), None, None),
        };
        ServiceRow {
            mode: cell.mode,
            initial_depth: cell.initial_depth,
            max_depth: cell.max_depth,
            policy: p.policy,
            workers: p.workers,
            zipf_s: p.zipf_s,
            read_pct: p.read_pct,
            ops: p.ops,
            writes: p.writes,
            shards_initial: p.shards_initial,
            shards_final: p.shards_final,
            splits: p.splits,
            total_nanos: p.total_nanos,
            oversubscribed: p.oversubscribed,
            throughput_per_sec: p.throughput_per_sec,
            mean_latency_nanos: p.mean_latency_nanos,
            p50_latency_nanos: p.p50_latency_nanos,
            p90_latency_nanos: p.p90_latency_nanos,
            p99_latency_nanos: p.p99_latency_nanos,
            p999_latency_nanos: p.p999_latency_nanos,
            max_latency_nanos: p.max_latency_nanos,
            diverged,
            engines,
            hot_shard_algorithm: hot,
            cold_shard_algorithm: cold,
            control_targets: p.control_targets,
            control_snapshot_bytes: p.control_snapshot_bytes,
            shards,
        }
    }
}

#[derive(Serialize)]
struct ServiceBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    repeats: u32,
    /// How repeats collapse to one row: the median by throughput.
    aggregation: &'static str,
    keyspace: u64,
    rows: Vec<ServiceRow>,
    errors: Vec<String>,
    summary: serde_json::Value,
    /// The operator playbook scenario: hot-shard retune / quarantine /
    /// heal under live load, with tail-latency columns per phase.
    playbook: serde_json::Value,
}

/// Tail-latency columns for one phase of the playbook scenario.
#[derive(Serialize)]
struct PlaybookPhase {
    phase: &'static str,
    ops: u64,
    mean_latency_nanos: f64,
    p50_latency_nanos: u64,
    p90_latency_nanos: u64,
    p99_latency_nanos: u64,
    p999_latency_nanos: u64,
}

fn playbook_phase(phase: &'static str, hist: &LatencyHistogram) -> PlaybookPhase {
    PlaybookPhase {
        phase,
        ops: hist.count(),
        mean_latency_nanos: hist.mean(),
        p50_latency_nanos: hist.percentile(50.0),
        p90_latency_nanos: hist.percentile(90.0),
        p99_latency_nanos: hist.percentile(99.0),
        p999_latency_nanos: hist.percentile(99.9),
    }
}

/// Number of phases in the playbook timeline.
const PLAYBOOK_PHASES: usize = 4;

/// Phase labels, in timeline order: baseline, after the operator
/// retunes the hot shard to park-only, while its breaker is forced
/// open (quarantined), and after the heal.
const PLAYBOOK_PHASE_NAMES: [&str; PLAYBOOK_PHASES] =
    ["closed", "retuned-park-only", "breaker-open", "healed"];

/// The operator playbook (ROADMAP item 1 down-payment): an adaptive
/// store under live open-loop load while an operator works the control
/// plane against its hottest shard — retune to park-only at 1/4 of the
/// schedule, force the breaker open (`quarantine`) at 1/2, `heal` at
/// 3/4. Every op is an increment of 1, so the conservation oracle is
/// exact: `store.total()` must equal the op count — a retune,
/// quarantine, or heal that loses a waiter or an op shows up as a
/// deficit, not a vibe. Latency is enter-to-complete from the
/// *scheduled* arrival (coordinated-omission-safe) and each op lands
/// in the histogram of the phase its scheduled instant falls in, so
/// the tail-while-open columns are attributable to the breaker being
/// open, not to measurement phasing.
fn run_playbook(scale: Scale) -> serde_json::Value {
    let (clients, ops_per_client, rate_per_client) = match scale {
        Scale::Quick => (4usize, 6_000u32, 30_000.0),
        Scale::Full => (4usize, 24_000u32, 60_000.0),
    };
    // Fixed topology (no resharding): the shard the operator names must
    // keep that name for the whole scenario.
    let config = ServiceConfig { initial_depth: 2, max_depth: 2, ..ServiceConfig::default() };
    let store = Arc::new(ShardedStore::new(config));
    let hub = Arc::new(BreakerHub::default());
    store.register_with_hub(Arc::clone(&hub));
    let plane = ControlPlane::new(Arc::clone(&hub));

    // Open-loop schedules from loadgen, steady arrivals.
    let load = ServiceLoadSpec {
        workers: clients,
        ops_per_worker: ops_per_client,
        rate_per_worker: rate_per_client,
        burst_off_nanos: 0,
        ..ServiceLoadSpec::default()
    };
    let schedules: Vec<Vec<u64>> = (0..clients).map(|w| arrival_schedule(&load, w)).collect();
    let span = schedules.iter().filter_map(|s| s.last().copied()).max().unwrap_or(0);
    // Operator strike times; also the phase boundaries for histogram
    // classification by scheduled arrival.
    let boundaries = [span / 4, span / 2, span * 3 / 4];

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut workers = Vec::new();
    for (id, schedule) in schedules.into_iter().enumerate() {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            let mut hists: Vec<LatencyHistogram> =
                (0..PLAYBOOK_PHASES).map(|_| LatencyHistogram::new()).collect();
            barrier.wait();
            let epoch = Instant::now();
            for (i, sched) in schedule.iter().copied().enumerate() {
                wait_until_nanos(epoch, sched);
                // 60% of ops hammer one key — a clearly hot shard for
                // the operator to find — and the rest scatter across
                // the keyspace (deterministic, no RNG dependency).
                let key = if i % 5 < 3 {
                    7
                } else {
                    ((id as u64) << 32) | ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 4096)
                };
                store.increment(key, 1);
                let done = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let phase = boundaries.iter().filter(|&&b| sched >= b).count();
                hists[phase].record(done.saturating_sub(sched));
            }
            hists
        }));
    }

    // The operator, on the control plane the hub serves.
    let mut commands: Vec<serde_json::Value> = Vec::new();
    let mut run = |at: u64, epoch: Instant, cmd: &str| {
        wait_until_nanos(epoch, at);
        let reply = plane.execute(cmd).unwrap_or_else(|e| format!("err {e}"));
        commands.push(json!({
            "at_nanos": (u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)),
            "command": cmd,
            "reply": reply,
        }));
    };
    barrier.wait();
    let epoch = Instant::now();
    // Find the hot shard by acquisitions once the baseline phase has
    // produced evidence (the operator reads the metrics, not the code).
    wait_until_nanos(epoch, boundaries[0] / 2);
    let hot = store
        .snapshots()
        .into_iter()
        .max_by_key(|s| s.acquisitions)
        .map(|s| s.name)
        .unwrap_or_else(|| "shard-0".into());
    run(boundaries[0], epoch, &format!("retune {hot} spin 0"));
    run(boundaries[1], epoch, &format!("quarantine {hot}"));
    run(boundaries[2], epoch, &format!("heal {hot}"));

    let mut hists: Vec<LatencyHistogram> =
        (0..PLAYBOOK_PHASES).map(|_| LatencyHistogram::new()).collect();
    for w in workers {
        let per_client = w.join().expect("playbook client");
        for (all, one) in hists.iter_mut().zip(per_client.iter()) {
            all.merge(one);
        }
    }
    run(span, epoch, &format!("health {hot}"));

    let expected = u128::from(ops_per_client) * clients as u128;
    let observed = store.total();
    let zero_lost = observed == expected;
    let phases: Vec<PlaybookPhase> = PLAYBOOK_PHASE_NAMES
        .iter()
        .zip(hists.iter())
        .map(|(name, h)| playbook_phase(name, h))
        .collect();

    println!();
    println!(
        "playbook: {clients} clients x {ops_per_client} ops at {rate_per_client:.0}/s, hot shard {hot}"
    );
    for c in &commands {
        println!(
            "  operator> {}  ->  {}",
            c["command"].as_str().unwrap_or(""),
            c["reply"].as_str().unwrap_or("").lines().next().unwrap_or("")
        );
    }
    for p in &phases {
        println!(
            "  {:<18} ops={:<7} p50={:<8} p90={:<8} p99={:<8} p999={}",
            p.phase, p.ops, p.p50_latency_nanos, p.p90_latency_nanos, p.p99_latency_nanos,
            p.p999_latency_nanos
        );
    }
    println!(
        "  conservation: expected={expected} observed={observed} ({})",
        if zero_lost { "zero lost ops: PASS" } else { "zero lost ops: FAIL" }
    );

    json!({
        "description": "operator playbook: retune hot shard to park-only, force breaker open, heal — all via the control plane under live open-loop load",
        "clients": clients,
        "ops_per_client": ops_per_client,
        "rate_per_client": rate_per_client,
        "hot_shard": hot,
        "commands": commands,
        "phases": phases,
        "conservation": {
            "expected_total": (expected.to_string()),
            "observed_total": (observed.to_string()),
            "zero_lost_ops": zero_lost,
        },
    })
}

/// Static cells: every shard-count × fixed-lock-configuration
/// combination the adaptive cell competes against — the paper's static
/// choices (spin-then-park, FIFO ticket, pure blocking). Resharding is
/// disabled (`max_depth == initial_depth`) and every shard pins its
/// configuration for the whole run. Flat combining is deliberately not
/// on this axis: op-shipping write batching is the adaptive layer's
/// mechanism (it turns on for hot shards), not a static deployment
/// choice.
fn static_cells(depths: &[u32]) -> Vec<Cell> {
    let mut v = Vec::new();
    for &d in depths {
        for policy in [
            PolicyChoice::Algorithm(LockAlgorithm::SpinPark),
            PolicyChoice::Algorithm(LockAlgorithm::Ticket),
            PolicyChoice::PureBlocking,
        ] {
            v.push(Cell {
                mode: "static",
                initial_depth: d,
                max_depth: d,
                policy: ServicePolicy::Static(policy),
                wire_control: false,
            });
        }
    }
    v
}

/// The adaptive cell: starts at the smallest static depth, batches hot
/// shards via flat combining, and splits under sustained contention.
fn adaptive_cell(initial_depth: u32, max_depth: u32, wire_control: bool) -> Cell {
    Cell {
        mode: "adaptive",
        initial_depth,
        max_depth,
        policy: ServicePolicy::HotShard { high_water: 3, patience: 2 },
        wire_control,
    }
}

fn spec_for(cell: &Cell, workers: usize, zipf_s: f64, ops_per_worker: u32, keyspace: u64) -> ServiceLoadSpec {
    ServiceLoadSpec {
        workers,
        ops_per_worker,
        keyspace,
        zipf_s,
        read_pct: 70,
        // Per-request processing under the shard lock (~2µs reads,
        // ~4µs writes at ~12ns/iter): the critical-section regime where
        // lock configuration is priced hardest — long enough that 50ns
        // HashMap ops don't vanish into scheduler noise, short enough
        // that per-acquisition costs aren't amortized away.
        read_work_iters: 150,
        write_work_iters: 300,
        // Offered rate well beyond capacity: throughput measures what
        // the configuration can actually absorb.
        rate_per_worker: 5_000_000.0,
        burst_on_nanos: 10_000_000,
        burst_off_nanos: 2_000_000,
        config: ServiceConfig {
            initial_depth: cell.initial_depth,
            max_depth: cell.max_depth,
            split_contended_per_sec: 200.0,
            split_min_acquisitions: 10_000,
            split_imbalance_factor: 3.0,
            split_sustain: 3,
            policy: cell.policy,
        },
        maintenance_every: if cell.max_depth > cell.initial_depth {
            Duration::from_millis(5)
        } else {
            Duration::ZERO
        },
        wire_control: cell.wire_control,
        seed: 0x05e2_11ce,
    }
}

fn cell_label(cell: &Cell, workers: usize, zipf_s: f64) -> String {
    format!(
        "{} depth={} policy={} workers={workers} s={zipf_s}",
        cell.mode,
        cell.initial_depth,
        cell.policy.label()
    )
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("service sweep — scale={scale_label}, host parallelism={host}");

    // `total_ops` is split evenly across workers so every cell does
    // the same amount of work regardless of worker count.
    let (workers_axis, skews, depths, adaptive_max, total_ops, keyspace, repeats): (
        Vec<usize>,
        Vec<f64>,
        Vec<u32>,
        u32,
        u32,
        u64,
        u32,
    ) = match scale {
        Scale::Quick => (vec![4], vec![0.0, 1.3], vec![2, 4], 6, 60_000, 20_000, 1),
        Scale::Full => (vec![8, 16], vec![0.0, 0.8, 1.3], vec![2, 4, 6], 6, 800_000, 200_000, 3),
    };
    let high_skew = skews.iter().copied().fold(0.0f64, f64::max);

    println!(
        "{:<10} {:>6} {:>6} {:>5} {:<12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>6}",
        "mode", "depth", "shards", "w", "policy", "s", "ops/sec", "p50(us)", "p99(us)", "p999(us)", "split"
    );

    let mut rows: Vec<ServiceRow> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &workers in &workers_axis {
        for &s in &skews {
            let mut cells = static_cells(&depths);
            // Wire the control plane on the high-skew adaptive cell so
            // the committed JSON carries socket/sink evidence. The
            // adaptive cell starts one depth above the smallest static
            // grid point (it reshards itself to whatever the load
            // needs) — a mid-grid start keeps per-shard traffic rates
            // cleanly separable for the heat detector.
            let wire = (s - high_skew).abs() < f64::EPSILON;
            cells.push(adaptive_cell(depths[0] + 1, adaptive_max, wire));
            for cell in cells {
                let ops_per_worker = (total_ops as usize / workers).max(1) as u32;
                let spec = spec_for(&cell, workers, s, ops_per_worker, keyspace);
                // Median-of-repeats by throughput. The best-static
                // comparison already takes a max over many cells, so a
                // best-of-repeats aggregate would compound the upward
                // noise bias; the median is what a typical run of each
                // configuration actually delivers.
                let mut oks: Vec<ServiceLoadPoint> = Vec::new();
                let mut first_err: Option<String> = None;
                for _ in 0..repeats {
                    match catch_unwind(AssertUnwindSafe(|| run_service_load(&spec))) {
                        Ok(p) => oks.push(p),
                        Err(payload) => {
                            first_err.get_or_insert_with(|| bench_panic_msg(payload));
                        }
                    }
                }
                oks.sort_by(|a, b| a.throughput_per_sec.total_cmp(&b.throughput_per_sec));
                let median = if oks.is_empty() {
                    Err(first_err.unwrap_or_else(|| "no repeats ran".to_string()))
                } else {
                    Ok(oks.swap_remove(oks.len() / 2))
                };
                let point = match median {
                    Ok(p) => p,
                    Err(msg) => {
                        let label = cell_label(&cell, workers, s);
                        let msg = format!("service cell ({label}): {msg}");
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                let row = ServiceRow::from_point(&cell, point);
                println!(
                    "{:<10} {:>6} {:>6} {:>5} {:<12} {:>8.2} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>6}",
                    row.mode,
                    row.initial_depth,
                    row.shards_final,
                    row.workers,
                    row.policy,
                    row.zipf_s,
                    row.throughput_per_sec,
                    row.p50_latency_nanos as f64 / 1e3,
                    row.p99_latency_nanos as f64 / 1e3,
                    row.p999_latency_nanos as f64 / 1e3,
                    row.splits,
                );
                rows.push(row);
            }
        }
    }

    let summary = summarize(&rows, high_skew);
    let playbook = match catch_unwind(AssertUnwindSafe(|| run_playbook(scale))) {
        Ok(v) => v,
        Err(payload) => {
            let msg = format!("playbook scenario: {}", bench_panic_msg(payload));
            eprintln!("error: {msg}");
            errors.push(msg);
            serde_json::Value::Null
        }
    };
    let playbook_ok = playbook["conservation"]["zero_lost_ops"].as_bool().unwrap_or(false);
    let bench = ServiceBench {
        bench: "service",
        scale: scale_label.to_string(),
        host_parallelism: host,
        repeats,
        aggregation: "median-of-repeats",
        keyspace,
        rows,
        errors,
        summary,
        playbook,
    };

    let path = workspace_root().join("BENCH_service.json");
    let ok = match serde_json::to_string_pretty(&bench) {
        Ok(text) => match std::fs::write(&path, text + "\n") {
            Ok(()) => {
                println!("wrote {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                false
            }
        },
        Err(e) => {
            eprintln!("error: could not serialize bench: {e}");
            false
        }
    };
    if !bench.errors.is_empty() {
        eprintln!(
            "warning: {} sweep cell(s) failed; results are partial (see the errors array)",
            bench.errors.len()
        );
    }
    if ok && playbook_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The headline verdicts, computed at the highest swept skew and the
/// highest swept worker count — the regime the service claim is about,
/// where oversubscription makes lock configuration decisive: does the
/// adaptive cell diverge hot-vs-cold, beat the best static shard-count
/// × engine cell on throughput, and hold p99? Lower worker counts stay
/// in the `high_skew` detail array (with their own per-worker verdict
/// fields) as the regime map.
fn summarize(rows: &[ServiceRow], high_skew: f64) -> serde_json::Value {
    let at = |mode: &'static str, w: usize| {
        rows.iter()
            .filter(move |r| r.mode == mode && r.workers == w && (r.zipf_s - high_skew).abs() < f64::EPSILON)
    };
    let workers: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.workers).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let headline_workers = workers.last().copied();
    let mut per_workers = Vec::new();
    let mut divergence_at_scale = false;
    let mut beats_at_scale = false;
    let mut p99_holds_at_scale = false;
    for &w in &workers {
        let headline = Some(w) == headline_workers;
        let adaptive = at("adaptive", w).max_by(|a, b| {
            a.throughput_per_sec.total_cmp(&b.throughput_per_sec)
        });
        let best_static = at("static", w).max_by(|a, b| {
            a.throughput_per_sec.total_cmp(&b.throughput_per_sec)
        });
        let (Some(a), Some(s)) = (adaptive, best_static) else {
            continue;
        };
        let beats = a.throughput_per_sec > s.throughput_per_sec;
        let p99_ok = a.p99_latency_nanos <= s.p99_latency_nanos;
        if headline {
            divergence_at_scale = a.diverged;
            beats_at_scale = beats;
            p99_holds_at_scale = p99_ok;
        }
        let improvement = improvement_pct(
            1.0 / s.throughput_per_sec.max(f64::MIN_POSITIVE),
            1.0 / a.throughput_per_sec.max(f64::MIN_POSITIVE),
        );
        per_workers.push(json!({
            "workers": w,
            "zipf_s": high_skew,
            "adaptive": {
                "policy": (a.policy),
                "throughput_per_sec": (a.throughput_per_sec),
                "p99_latency_nanos": (a.p99_latency_nanos),
                "shards_final": (a.shards_final),
                "splits": (a.splits),
                "diverged": (a.diverged),
                "engines": (a.engines),
                "hot_shard_algorithm": (a.hot_shard_algorithm),
                "cold_shard_algorithm": (a.cold_shard_algorithm),
            },
            "best_static": {
                "policy": (s.policy),
                "initial_depth": (s.initial_depth),
                "throughput_per_sec": (s.throughput_per_sec),
                "p99_latency_nanos": (s.p99_latency_nanos),
            },
            "throughput_improvement_pct": improvement,
            "adaptive_beats_best_static": beats,
            "adaptive_p99_no_worse": p99_ok,
        }));
    }

    json!({
        "headline_workers": headline_workers,
        "hot_cold_divergence": divergence_at_scale,
        "adaptive_beats_best_static_high_skew": beats_at_scale,
        "adaptive_p99_no_worse": p99_holds_at_scale,
        "high_skew": per_workers,
    })
}

/// Render a caught panic payload as a message.
fn bench_panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
