//! `lockbench` — ns-scale hot-path microbenchmark for the native lock
//! stack.
//!
//! The paper costs every lock operation in memory references
//! (`t = n1·R + n2·W`, Section 3.1); the modern analog of a remote
//! reference is a cross-core cache-line transfer, and this runner puts
//! a number on it. It measures ns/op for uncontended acquire+release
//! and `try_lock`, and contended throughput across 1–8 threads, for
//! `AdaptiveMutex` vs `std::sync::Mutex` vs a raw spin lock — plus one
//! row set per zoo engine (`ticket`, `clh`, `flat-combining`), each an
//! `AdaptiveMutex` pinned to that engine so the rows price the
//! *algorithms* side by side, not different wrappers. It then writes
//! `BENCH_native_hotpath.json` at the workspace root with the
//! pre-PR baseline rows embedded and the acceptance verdicts
//! (uncontended overhead vs `std::sync::Mutex` within 2x; at least
//! 1.5x over the pre-refactor hot path; at least one contention regime
//! where the queue or combining engine beats the spin-park adaptive
//! mutex by 1.3x ns/op). DESIGN.md §12–§13 explain how to read the
//! numbers against the cost model; EXPERIMENTS.md has the run recipe.
//!
//! Run with `EXPERIMENT_SCALE=full cargo run --release -p bench --bin
//! lockbench` for committed numbers; the default quick scale is sized
//! for CI smoke.

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use adaptive_native::{AdaptiveMutex, LockAlgorithm, PolicyChoice};
use bench::{workspace_root, Scale};
use serde::Serialize;
use serde_json::json;

/// Repeats per cell; uncontended cells keep the minimum (the run least
/// disturbed by the scheduler), contended cells keep the best
/// throughput.
const REPEATS: u32 = 5;

/// Thread counts for the contended sweep.
const THREADS: [u32; 4] = [1, 2, 4, 8];

/// Zoo engines measured as their own row sets (the spin-park engine IS
/// the `adaptive` rows).
const ZOO: [LockAlgorithm; 3] =
    [LockAlgorithm::Ticket, LockAlgorithm::Queue, LockAlgorithm::Combining];

/// Pre-PR hot-path baseline: `lockbench` rows measured on this host
/// against the pre-refactor `AdaptiveMutex` (single-cell stat
/// counters, shared sampling-gate RMW on every release) at full scale,
/// before the cache-layout work landed. Kept verbatim so the committed
/// JSON always carries the before/after comparison the acceptance
/// criteria call for.
const PRE_PR_BASELINE: &[BaselineRow] = &[
    BaselineRow { lock: "adaptive", mode: "uncontended", threads: 1, ns_per_op: 43.25 },
    BaselineRow { lock: "adaptive", mode: "try_lock", threads: 1, ns_per_op: 43.43 },
    BaselineRow { lock: "std", mode: "uncontended", threads: 1, ns_per_op: 18.73 },
    BaselineRow { lock: "std", mode: "try_lock", threads: 1, ns_per_op: 19.81 },
    BaselineRow { lock: "spin", mode: "uncontended", threads: 1, ns_per_op: 9.17 },
    BaselineRow { lock: "spin", mode: "try_lock", threads: 1, ns_per_op: 9.29 },
    BaselineRow { lock: "adaptive", mode: "contended", threads: 1, ns_per_op: 18.55 },
    BaselineRow { lock: "adaptive", mode: "contended", threads: 2, ns_per_op: 30.82 },
    BaselineRow { lock: "adaptive", mode: "contended", threads: 4, ns_per_op: 41.76 },
    BaselineRow { lock: "adaptive", mode: "contended", threads: 8, ns_per_op: 36.37 },
];

/// One pre-PR baseline measurement.
struct BaselineRow {
    lock: &'static str,
    mode: &'static str,
    threads: u32,
    ns_per_op: f64,
}

/// One measured cell.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    lock: String,
    mode: String,
    threads: u32,
    iters_per_thread: u64,
    ns_per_op: f64,
    ops_per_sec: f64,
}

/// A raw test-and-test-and-set spin lock, the "cheapest possible"
/// comparator: one line, no queue, no stats. It yields after a bounded
/// probe burst so the contended sweep stays finite on few-core hosts
/// (a pure spinner burns a whole timeslice per handoff once the holder
/// is descheduled).
struct RawSpin {
    flag: AtomicBool,
}

impl RawSpin {
    fn new() -> RawSpin {
        RawSpin { flag: AtomicBool::new(false) }
    }

    fn lock(&self) {
        while self.flag.swap(true, Ordering::Acquire) {
            let mut probes = 0u32;
            while self.flag.load(Ordering::Relaxed) {
                probes += 1;
                if probes >= 64 {
                    std::thread::yield_now();
                    probes = 0;
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    fn try_lock(&self) -> bool {
        !self.flag.swap(true, Ordering::Acquire)
    }

    fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Time `iters` runs of `op` and return ns/op.
fn time_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Best (minimum) ns/op over `REPEATS` runs.
fn best_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    (0..REPEATS)
        .map(|_| time_ns_per_op(iters, &mut op))
        .fold(f64::INFINITY, f64::min)
}

fn row(lock: &str, mode: &str, threads: u32, iters: u64, ns_per_op: f64) -> BenchRow {
    BenchRow {
        lock: lock.to_string(),
        mode: mode.to_string(),
        threads,
        iters_per_thread: iters,
        ns_per_op,
        ops_per_sec: 1e9 / ns_per_op,
    }
}

/// Uncontended acquire+release and try_lock cells for all three locks.
fn run_uncontended(iters: u64, rows: &mut Vec<BenchRow>) {
    // AdaptiveMutex with its default simple-adapt policy: the cost we
    // actually charge users of the adaptive lock, feedback loop
    // included.
    let adaptive = AdaptiveMutex::new(0u64);
    rows.push(row(
        "adaptive",
        "uncontended",
        1,
        iters,
        best_ns_per_op(iters, || {
            *black_box(&adaptive).lock() += 1;
        }),
    ));
    rows.push(row(
        "adaptive",
        "try_lock",
        1,
        iters,
        best_ns_per_op(iters, || {
            if let Some(mut g) = black_box(&adaptive).try_lock() {
                *g += 1;
            }
        }),
    ));

    let std_mutex = Mutex::new(0u64);
    rows.push(row(
        "std",
        "uncontended",
        1,
        iters,
        best_ns_per_op(iters, || {
            *black_box(&std_mutex).lock().expect("unpoisoned") += 1;
        }),
    ));
    rows.push(row(
        "std",
        "try_lock",
        1,
        iters,
        best_ns_per_op(iters, || {
            if let Ok(mut g) = black_box(&std_mutex).try_lock() {
                *g += 1;
            }
        }),
    ));

    let spin = RawSpin::new();
    let mut cell = 0u64;
    rows.push(row(
        "spin",
        "uncontended",
        1,
        iters,
        best_ns_per_op(iters, || {
            black_box(&spin).lock();
            cell += 1;
            spin.unlock();
        }),
    ));
    rows.push(row(
        "spin",
        "try_lock",
        1,
        iters,
        best_ns_per_op(iters, || {
            if black_box(&spin).try_lock() {
                cell += 1;
                spin.unlock();
            }
        }),
    ));
    black_box(cell);
}

/// One contended cell: `threads` workers hammering `op` (a full
/// lock/increment/unlock cycle) `iters` times each behind a start
/// barrier. Returns the best total-throughput repeat.
fn contended_cell(threads: u32, iters: u64, op: impl Fn() + Sync) -> f64 {
    let mut best_nanos = u128::MAX;
    for _ in 0..REPEATS.min(3) {
        let barrier = Barrier::new(threads as usize + 1);
        let nanos = std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..iters {
                        op();
                    }
                });
            }
            // Start the clock *before* releasing the barrier: the last
            // arrival frees everyone, and on a single-core host the
            // workers can run to completion before this thread is
            // rescheduled — a clock started after our wait() returns
            // would miss nearly the whole run. Started here, the only
            // overcount is the barrier release itself.
            let t0 = Instant::now();
            barrier.wait();
            // The scope's implicit joins bound the measured region.
            t0
        })
        .elapsed()
        .as_nanos();
        best_nanos = best_nanos.min(nanos);
    }
    best_nanos as f64 / (threads as u64 * iters) as f64
}

/// Contended sweep over 1–8 threads for all three locks.
fn run_contended(iters: u64, rows: &mut Vec<BenchRow>) {
    for &threads in &THREADS {
        let adaptive = AdaptiveMutex::new(0u64);
        let ns = contended_cell(threads, iters, || {
            *adaptive.lock() += 1;
        });
        rows.push(row("adaptive", "contended", threads, iters, ns));

        let std_mutex = Mutex::new(0u64);
        let ns = contended_cell(threads, iters, || {
            *std_mutex.lock().expect("unpoisoned") += 1;
        });
        rows.push(row("std", "contended", threads, iters, ns));

        let spin = RawSpin::new();
        // The guarded CS mutates an atomic (relaxed) so the work is
        // comparable to the guard-based locks without unsafe.
        let cell = std::sync::atomic::AtomicU64::new(0);
        let ns = contended_cell(threads, iters, || {
            spin.lock();
            cell.fetch_add(1, Ordering::Relaxed);
            spin.unlock();
        });
        rows.push(row("spin", "contended", threads, iters, ns));
    }
}

/// One critical-section cycle through a zoo-pinned mutex, using the
/// API that gives each engine its natural shape: `with_locked` for the
/// combining engine (operation publication is *how* it combines; a
/// plain `lock()` would price only its degraded slots-full path) and a
/// guarded `lock()` everywhere else (`with_locked` compiles to exactly
/// that on non-combining engines).
fn zoo_op(m: &AdaptiveMutex<u64>, algo: LockAlgorithm) {
    if algo == LockAlgorithm::Combining {
        black_box(m).with_locked(|v| *v += 1);
    } else {
        *black_box(m).lock() += 1;
    }
}

/// Uncontended, try_lock, and contended cells for every zoo engine.
/// Each cell runs an `AdaptiveMutex` pinned to one engine (static
/// policy, no feedback), so differences between rows are the
/// algorithms themselves — same wrapper, same stats discipline.
fn run_zoo(unc_iters: u64, con_iters: u64, rows: &mut Vec<BenchRow>) {
    for algo in ZOO {
        let label = algo.label();
        let m = PolicyChoice::Algorithm(algo).build_mutex(0u64);
        rows.push(row(
            label,
            "uncontended",
            1,
            unc_iters,
            best_ns_per_op(unc_iters, || zoo_op(&m, algo)),
        ));
        rows.push(row(
            label,
            "try_lock",
            1,
            unc_iters,
            best_ns_per_op(unc_iters, || {
                if let Some(mut g) = black_box(&m).try_lock() {
                    *g += 1;
                }
            }),
        ));
        for &threads in &THREADS {
            let m = PolicyChoice::Algorithm(algo).build_mutex(0u64);
            let ns = contended_cell(threads, con_iters, || zoo_op(&m, algo));
            rows.push(row(label, "contended", threads, con_iters, ns));
        }
    }
}

/// Find the ns/op of a (lock, mode, threads) cell.
fn cell<'a>(rows: &'a [BenchRow], lock: &str, mode: &str, threads: u32) -> Option<&'a BenchRow> {
    rows.iter()
        .find(|r| r.lock == lock && r.mode == mode && r.threads == threads)
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let (scale_label, unc_iters, con_iters) = match scale {
        Scale::Quick => ("quick", 200_000u64, 20_000u64),
        Scale::Full => ("full", 2_000_000u64, 100_000u64),
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("lockbench — scale={scale_label}, host parallelism={cores}");

    let mut rows: Vec<BenchRow> = Vec::new();
    run_uncontended(unc_iters, &mut rows);
    run_contended(con_iters, &mut rows);
    run_zoo(unc_iters, con_iters, &mut rows);

    println!();
    println!("{:<10} {:<12} {:>7} {:>12} {:>16}", "lock", "mode", "threads", "ns/op", "ops/sec");
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>7} {:>12.2} {:>16.0}",
            r.lock, r.mode, r.threads, r.ns_per_op, r.ops_per_sec
        );
    }

    // Verdict 1: uncontended AdaptiveMutex within 2x of std::sync::Mutex.
    let adaptive_unc = cell(&rows, "adaptive", "uncontended", 1).map(|r| r.ns_per_op);
    let std_unc = cell(&rows, "std", "uncontended", 1).map(|r| r.ns_per_op);
    let vs_std_ratio = match (adaptive_unc, std_unc) {
        (Some(a), Some(s)) if s > 0.0 => Some(a / s),
        _ => None,
    };
    let within_2x = vs_std_ratio.map(|r| r <= 2.0);

    // Verdict 2: at least 1.5x over the pre-PR hot path (baseline rows
    // are captured on the same host; absent until the capture run).
    let pre_pr_unc = PRE_PR_BASELINE
        .iter()
        .find(|b| b.lock == "adaptive" && b.mode == "uncontended")
        .map(|b| b.ns_per_op);
    let speedup_vs_pre_pr = match (pre_pr_unc, adaptive_unc) {
        (Some(old), Some(new)) if new > 0.0 => Some(old / new),
        _ => None,
    };
    let improved_1_5x = speedup_vs_pre_pr.map(|s| s >= 1.5);

    // Verdict 3: in at least one contention regime the queue or the
    // combining engine beats the spin-park adaptive mutex by >= 1.3x
    // ns/op — the zoo has to earn its place, not just exist.
    let mut zoo_best: Option<(f64, &str, u32)> = None;
    for &t in &THREADS {
        let Some(a) = cell(&rows, "adaptive", "contended", t) else { continue };
        for name in [LockAlgorithm::Queue.label(), LockAlgorithm::Combining.label()] {
            let Some(z) = cell(&rows, name, "contended", t) else { continue };
            if z.ns_per_op > 0.0 {
                let ratio = a.ns_per_op / z.ns_per_op;
                if zoo_best.is_none_or(|(best, _, _)| ratio > best) {
                    zoo_best = Some((ratio, name, t));
                }
            }
        }
    }
    let zoo_beats_1_3x = zoo_best.map(|(r, _, _)| r >= 1.3);

    println!();
    match vs_std_ratio {
        Some(r) => println!(
            "uncontended adaptive vs std: {r:.2}x ({})",
            if r <= 2.0 { "within 2x: PASS" } else { "within 2x: FAIL" }
        ),
        None => println!("uncontended adaptive vs std: missing cells"),
    }
    match speedup_vs_pre_pr {
        Some(s) => println!(
            "uncontended adaptive vs pre-PR: {s:.2}x ({})",
            if s >= 1.5 { ">=1.5x: PASS" } else { ">=1.5x: FAIL" }
        ),
        None => println!("uncontended adaptive vs pre-PR: no baseline recorded yet"),
    }
    match zoo_best {
        Some((r, name, t)) => println!(
            "best zoo regime: {name} at {t} threads, {r:.2}x vs adaptive ({})",
            if r >= 1.3 { ">=1.3x: PASS" } else { ">=1.3x: FAIL" }
        ),
        None => println!("best zoo regime: missing cells"),
    }

    let baseline_rows: Vec<serde_json::Value> = PRE_PR_BASELINE
        .iter()
        .map(|b| {
            json!({
                "lock": (b.lock),
                "mode": (b.mode),
                "threads": (b.threads),
                "ns_per_op": (b.ns_per_op),
            })
        })
        .collect();

    let zoo_best_speedup = zoo_best.map(|(r, _, _)| r);
    let zoo_best_regime = zoo_best.map(|(_, name, t)| json!({ "lock": name, "threads": t }));

    let out = json!({
        "description": "ns-scale lock hot-path microbench: AdaptiveMutex vs std::sync::Mutex vs raw spin, plus the zoo engines (ticket, clh, flat-combining) pinned through the same AdaptiveMutex wrapper (DESIGN.md §12-§13)",
        "scale": scale_label,
        "host_parallelism": cores,
        "repeats": REPEATS,
        "rows": rows,
        "baseline": {
            "note": "pre-PR AdaptiveMutex hot path (single-cell counters, shared gate RMW per release), same host, full scale",
            "rows": baseline_rows,
        },
        "verdicts": {
            "uncontended_adaptive_vs_std_ratio": vs_std_ratio,
            "uncontended_adaptive_within_2x_std": within_2x,
            "uncontended_speedup_vs_pre_pr": speedup_vs_pre_pr,
            "uncontended_improved_at_least_1_5x": improved_1_5x,
            "zoo_best_contended_speedup_vs_adaptive": zoo_best_speedup,
            "zoo_best_contended_regime": zoo_best_regime,
            "queue_or_combining_beats_adaptive_1_3x": zoo_beats_1_3x,
        },
    });

    let path = workspace_root().join("BENCH_native_hotpath.json");
    let payload = match serde_json::to_string_pretty(&out) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: serializing lockbench results failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&path, payload + "\n") {
        eprintln!("error: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", path.display());
    ExitCode::SUCCESS
}
