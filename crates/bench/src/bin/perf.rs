//! The native perf runner: real-thread lock sweeps and TSP runs.
//!
//! Sweeps thread count × critical-section length × waiting policy over
//! the native `AdaptiveMutex` (contention microbenchmark) and the
//! native LMSK TSP solver, prints paper-style rows, and writes
//! `BENCH_native_locks.json` + `BENCH_native_tsp.json` at the workspace
//! root so the bench trajectory accumulates across PRs.
//!
//! ```text
//! EXPERIMENT_SCALE=quick cargo run --release -p bench --bin perf   # CI smoke
//! EXPERIMENT_SCALE=full  cargo run --release -p bench --bin perf   # real numbers
//! ```
//!
//! Each configuration runs `REPEATS` times and the best (minimum) total
//! time is kept: on a shared or single-core host, min-of-N is the
//! noise-robust estimator of the achievable time.
//!
//! Failure policy: a sweep cell that panics is recorded in the output's
//! `errors` array and the sweep continues (partial results beat no
//! results); an unwritable `BENCH_*.json` is a clear one-line error and
//! a non-zero exit, not a panic backtrace.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Duration;

use adaptive_native::PolicyChoice;
use bench::{improvement_pct, workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use tsp_app::{solve_native, solve_sequential, NativeTspConfig, TspInstance};
use workloads::{run_contention, Backend, ContentionPoint, ContentionSpec};

/// Repeats per configuration (best-of).
const REPEATS: u32 = 3;

/// The swept policies: the two static baselines and the adaptive lock.
fn policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::FixedSpin(100),
        PolicyChoice::PureBlocking,
        PolicyChoice::Adaptive { threshold: 2, n: 32 },
    ]
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("native perf runner — scale={scale_label}, host parallelism={cores}");

    let locks = run_lock_sweep(scale);
    let tsp = run_tsp_sweep(scale);
    let cell_errors = locks.errors.len() + tsp.errors.len();

    let root = workspace_root();
    let mut ok = true;
    for (path, write) in [
        (root.join("BENCH_native_locks.json"), write_bench(&root.join("BENCH_native_locks.json"), &locks)),
        (root.join("BENCH_native_tsp.json"), write_bench(&root.join("BENCH_native_tsp.json"), &tsp)),
    ] {
        if let Err(e) = write {
            eprintln!("error: could not write {}: {e}", path.display());
            ok = false;
        }
    }
    if cell_errors > 0 {
        eprintln!("warning: {cell_errors} sweep cell(s) failed; results are partial (see the errors array)");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_bench<T: Serialize>(path: &std::path::Path, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text + "\n").map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Render a caught panic payload as a message.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------- locks

#[derive(Serialize)]
struct LockBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    repeats: u32,
    rows: Vec<ContentionPoint>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
    summary: serde_json::Value,
}

fn run_lock_sweep(scale: Scale) -> LockBench {
    let (threads, cs_lens, iters): (Vec<usize>, Vec<u64>, u32) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![500, 5_000], 200),
        Scale::Full => (vec![2, 4, 8, 16], vec![200, 2_000, 20_000], 2_000),
    };

    println!();
    println!("== native lock sweep: threads x critical-section x policy ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>16} {:>12}",
        "policy", "threads", "cs (ns)", "total (ms)", "ops/sec", "lat (ns)"
    );

    let mut rows: Vec<ContentionPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            for policy in policies() {
                let spec = ContentionSpec {
                    threads: t,
                    iters,
                    cs_nanos: cs,
                    think_nanos: cs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    (0..REPEATS)
                        .map(|_| run_contention(Backend::Native, &spec))
                        .min_by_key(|p| p.total_nanos)
                        .expect("at least one repeat")
                }));
                let best = match cell {
                    Ok(best) => best,
                    Err(payload) => {
                        let msg = format!(
                            "locks cell (policy={}, threads={t}, cs={cs}ns): {}",
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>10} {:>14.2} {:>16.0} {:>12.0}",
                    best.policy,
                    best.threads,
                    best.cs_nanos,
                    best.total_nanos as f64 / 1e6,
                    best.throughput_per_sec,
                    best.mean_latency_nanos
                );
                rows.push(best);
            }
        }
    }

    // Contended-sweep verdict: total time per policy across every
    // (threads, cs) point; the adaptive lock must stay within 10% of
    // the best static policy.
    let total = |label: &str| -> u64 {
        rows.iter()
            .filter(|r| r.policy == label)
            .map(|r| r.total_nanos)
            .sum()
    };
    let fixed = total(&PolicyChoice::FixedSpin(100).label());
    let blocking = total(&PolicyChoice::PureBlocking.label());
    let adaptive = total("simple-adapt");
    let best_static = fixed.min(blocking);
    let vs_best_pct = improvement_pct(best_static as f64, adaptive as f64);
    let within = adaptive as f64 <= best_static as f64 * 1.10;
    println!(
        "adaptive total {:.2} ms vs best static {:.2} ms ({:+.1}% improvement) -> {}",
        adaptive as f64 / 1e6,
        best_static as f64 / 1e6,
        vs_best_pct,
        if within { "WITHIN 10%" } else { "OUTSIDE 10%" }
    );

    LockBench {
        bench: "native_locks",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "total_nanos_fixed_spin": fixed,
            "total_nanos_blocking": blocking,
            "total_nanos_adaptive": adaptive,
            "adaptive_vs_best_static_improvement_pct": vs_best_pct,
            "adaptive_within_10pct_of_best_static": within,
        }),
    }
}

// ------------------------------------------------------------------ tsp

#[derive(Serialize)]
struct TspRow {
    policy: String,
    searchers: usize,
    elapsed_nanos: u64,
    expanded: u64,
    expansions_per_sec: f64,
    queue_lock_acquisitions: u64,
    queue_lock_contended: u64,
    queue_lock_parked: u64,
    queue_lock_reconfigurations: u64,
}

#[derive(Serialize)]
struct TspBench {
    bench: &'static str,
    scale: String,
    cities: usize,
    seed: u64,
    sequential_nanos: u64,
    optimal_cost: u32,
    repeats: u32,
    rows: Vec<TspRow>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
}

fn run_tsp_sweep(scale: Scale) -> TspBench {
    let (cities, searchers): (usize, Vec<usize>) = match scale {
        Scale::Quick => (10, vec![1, 2, 4]),
        Scale::Full => (13, vec![1, 2, 4, 8]),
    };
    let seed = 42;
    let inst = TspInstance::random_euclidean(cities, 500, seed);

    let t0 = std::time::Instant::now();
    let (optimal, _) = solve_sequential(&inst);
    let sequential = t0.elapsed();

    println!();
    println!("== native TSP (LMSK, {cities} cities): searchers x policy ==");
    println!("sequential baseline: {:.2} ms (optimal {optimal})", sequential.as_secs_f64() * 1e3);
    println!(
        "{:<16} {:>10} {:>14} {:>16} {:>10} {:>8}",
        "policy", "searchers", "total (ms)", "expansions/sec", "qlock", "parked"
    );

    let mut rows = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &s in &searchers {
        for policy in policies() {
            let cfg = NativeTspConfig {
                searchers: s,
                policy,
                ..NativeTspConfig::default()
            };
            let cell = catch_unwind(AssertUnwindSafe(|| {
                let mut best: Option<(Duration, _)> = None;
                for _ in 0..REPEATS {
                    let res = solve_native(&inst, cfg.clone());
                    assert_eq!(res.best, optimal, "parallel search must stay exact");
                    if best.as_ref().is_none_or(|(e, _)| res.elapsed < *e) {
                        best = Some((res.elapsed, res));
                    }
                }
                best.expect("at least one repeat")
            }));
            let (elapsed, res) = match cell {
                Ok(best) => best,
                Err(payload) => {
                    let msg = format!(
                        "tsp cell (policy={}, searchers={s}): {}",
                        policy.label(),
                        panic_msg(payload)
                    );
                    eprintln!("error: {msg}");
                    errors.push(msg);
                    continue;
                }
            };
            let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
            let row = TspRow {
                policy: policy.label(),
                searchers: s,
                elapsed_nanos: nanos,
                expanded: res.stats.expanded,
                expansions_per_sec: res.stats.expanded as f64 / (nanos.max(1) as f64 / 1e9),
                queue_lock_acquisitions: res.queue_lock.acquisitions,
                queue_lock_contended: res.queue_lock.contended,
                queue_lock_parked: res.queue_lock.parked,
                queue_lock_reconfigurations: res.queue_lock.reconfigurations,
            };
            println!(
                "{:<16} {:>10} {:>14.2} {:>16.0} {:>10} {:>8}",
                row.policy,
                row.searchers,
                nanos as f64 / 1e6,
                row.expansions_per_sec,
                row.queue_lock_acquisitions,
                row.queue_lock_parked
            );
            rows.push(row);
        }
    }

    TspBench {
        bench: "native_tsp",
        scale: format!("{:?}", scale).to_lowercase(),
        cities,
        seed,
        sequential_nanos: sequential.as_nanos().min(u128::from(u64::MAX)) as u64,
        optimal_cost: optimal,
        repeats: REPEATS,
        rows,
        errors,
    }
}
