//! The native perf runner: real-thread lock sweeps and TSP runs.
//!
//! Sweeps thread count × critical-section length × waiting policy over
//! the native `AdaptiveMutex` (contention microbenchmark), thread count
//! × critical-section length × lock *algorithm* over the engine zoo
//! (pinned engines plus the switching policies), and the native LMSK
//! TSP solver, prints paper-style rows, and writes
//! `BENCH_native_locks.json` + `BENCH_native_algos.json` +
//! `BENCH_native_tsp.json` at the workspace root so the bench
//! trajectory accumulates across PRs.
//!
//! ```text
//! EXPERIMENT_SCALE=quick cargo run --release -p bench --bin perf   # CI smoke
//! EXPERIMENT_SCALE=full  cargo run --release -p bench --bin perf   # real numbers
//! ```
//!
//! Each configuration runs `REPEATS` times and the best (minimum) total
//! time is kept: on a shared or single-core host, min-of-N is the
//! noise-robust estimator of the achievable time.
//!
//! Failure policy: a sweep cell that panics is recorded in the output's
//! `errors` array and the sweep continues (partial results beat no
//! results); an unwritable `BENCH_*.json` is a clear one-line error and
//! a non-zero exit, not a panic backtrace.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use adaptive_native::{LockAlgorithm, PolicyChoice};
use bench::{improvement_pct, workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use tsp_app::{solve_native, solve_sequential, NativeTspConfig, NativeVariant, TspInstance};
use workloads::{
    run_contention, run_fairness, run_structure, Backend, ContentionPoint, ContentionSpec,
    FairnessPoint, FairnessSpec, StructureKind, StructurePoint, StructureSpec,
};

/// Repeats per configuration (best-of).
const REPEATS: u32 = 3;

/// The swept policies: the two static baselines and the adaptive lock.
fn policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::FixedSpin(100),
        PolicyChoice::PureBlocking,
        PolicyChoice::Adaptive { threshold: 2, n: 32 },
    ]
}

/// The algorithm sweep's policy axis: every pinned zoo engine plus the
/// two policies that pick for themselves (attribute tuning and live
/// engine switching), so the JSON answers both "which engine wins this
/// regime" and "does the switching policy find it".
fn algo_policies() -> Vec<PolicyChoice> {
    let mut v: Vec<PolicyChoice> = LockAlgorithm::ALL.map(PolicyChoice::Algorithm).into();
    v.push(PolicyChoice::Adaptive { threshold: 2, n: 32 });
    v.push(PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 });
    v.push(PolicyChoice::FairAdaptive { unfair_wait_nanos: 200_000, patience: 3 });
    v
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("native perf runner — scale={scale_label}, host parallelism={cores}");

    let locks = run_lock_sweep(scale);
    let algos = run_algo_sweep(scale);
    let fairness = run_fairness_sweep(scale);
    let tsp = run_tsp_sweep(scale);
    let cell_errors =
        locks.errors.len() + algos.errors.len() + fairness.errors.len() + tsp.errors.len();

    let root = workspace_root();
    let mut ok = true;
    for (path, write) in [
        (root.join("BENCH_native_locks.json"), write_bench(&root.join("BENCH_native_locks.json"), &locks)),
        (root.join("BENCH_native_algos.json"), write_bench(&root.join("BENCH_native_algos.json"), &algos)),
        (root.join("BENCH_native_fairness.json"), write_bench(&root.join("BENCH_native_fairness.json"), &fairness)),
        (root.join("BENCH_native_tsp.json"), write_bench(&root.join("BENCH_native_tsp.json"), &tsp)),
    ] {
        if let Err(e) = write {
            eprintln!("error: could not write {}: {e}", path.display());
            ok = false;
        }
    }
    if cell_errors > 0 {
        eprintln!("warning: {cell_errors} sweep cell(s) failed; results are partial (see the errors array)");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_bench<T: Serialize>(path: &std::path::Path, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text + "\n").map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Render a caught panic payload as a message.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------- locks

#[derive(Serialize)]
struct LockBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    repeats: u32,
    rows: Vec<ContentionPoint>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
    summary: serde_json::Value,
}

fn run_lock_sweep(scale: Scale) -> LockBench {
    let (threads, cs_lens, iters): (Vec<usize>, Vec<u64>, u32) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![500, 5_000], 200),
        Scale::Full => (vec![2, 4, 8, 16], vec![200, 2_000, 20_000], 2_000),
    };

    println!();
    println!("== native lock sweep: threads x critical-section x policy ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>16} {:>12}",
        "policy", "threads", "cs (ns)", "total (ms)", "ops/sec", "lat (ns)"
    );

    let mut rows: Vec<ContentionPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            for policy in policies() {
                let spec = ContentionSpec {
                    threads: t,
                    iters,
                    cs_nanos: cs,
                    think_nanos: cs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    (0..REPEATS)
                        .map(|_| run_contention(Backend::Native, &spec))
                        .min_by_key(|p| p.total_nanos)
                        .expect("at least one repeat")
                }));
                let best = match cell {
                    Ok(best) => best,
                    Err(payload) => {
                        let msg = format!(
                            "locks cell (policy={}, threads={t}, cs={cs}ns): {}",
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>10} {:>14.2} {:>16.0} {:>12.0}",
                    best.policy,
                    best.threads,
                    best.cs_nanos,
                    best.total_nanos as f64 / 1e6,
                    best.throughput_per_sec,
                    best.mean_latency_nanos
                );
                rows.push(best);
            }
        }
    }

    // Contended-sweep verdict: total time per policy across every
    // (threads, cs) point; the adaptive lock must stay within 10% of
    // the best static policy.
    let total = |label: &str| -> u64 {
        rows.iter()
            .filter(|r| r.policy == label)
            .map(|r| r.total_nanos)
            .sum()
    };
    let fixed = total(&PolicyChoice::FixedSpin(100).label());
    let blocking = total(&PolicyChoice::PureBlocking.label());
    let adaptive = total("simple-adapt");
    let best_static = fixed.min(blocking);
    let vs_best_pct = improvement_pct(best_static as f64, adaptive as f64);
    let within = adaptive as f64 <= best_static as f64 * 1.10;
    println!(
        "adaptive total {:.2} ms vs best static {:.2} ms ({:+.1}% improvement) -> {}",
        adaptive as f64 / 1e6,
        best_static as f64 / 1e6,
        vs_best_pct,
        if within { "WITHIN 10%" } else { "OUTSIDE 10%" }
    );

    LockBench {
        bench: "native_locks",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "total_nanos_fixed_spin": fixed,
            "total_nanos_blocking": blocking,
            "total_nanos_adaptive": adaptive,
            "adaptive_vs_best_static_improvement_pct": vs_best_pct,
            "adaptive_within_10pct_of_best_static": within,
        }),
    }
}

// ----------------------------------------------------------- algorithms

/// Engine zoo sweep: thread count × critical-section length × lock
/// algorithm, same workload shape as the lock sweep. Pinned-engine rows
/// price each algorithm in each regime; the `simple-adapt` and
/// `algo-adapt` rows show what the self-tuning policies make of the
/// same regimes (the latter switching engines live through
/// `SetAlgorithm`).
fn run_algo_sweep(scale: Scale) -> LockBench {
    let (threads, cs_lens, iters): (Vec<usize>, Vec<u64>, u32) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![500, 5_000], 200),
        Scale::Full => (vec![2, 4, 8, 16], vec![200, 2_000, 20_000], 2_000),
    };

    println!();
    println!("== native algorithm sweep: threads x critical-section x engine ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>16} {:>12}",
        "engine", "threads", "cs (ns)", "total (ms)", "ops/sec", "lat (ns)"
    );

    let mut rows: Vec<ContentionPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            for policy in algo_policies() {
                let spec = ContentionSpec {
                    threads: t,
                    iters,
                    cs_nanos: cs,
                    think_nanos: cs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    (0..REPEATS)
                        .map(|_| run_contention(Backend::Native, &spec))
                        .min_by_key(|p| p.total_nanos)
                        .expect("at least one repeat")
                }));
                let best = match cell {
                    Ok(best) => best,
                    Err(payload) => {
                        let msg = format!(
                            "algos cell (engine={}, threads={t}, cs={cs}ns): {}",
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>10} {:>14.2} {:>16.0} {:>12.0}",
                    best.policy,
                    best.threads,
                    best.cs_nanos,
                    best.total_nanos as f64 / 1e6,
                    best.throughput_per_sec,
                    best.mean_latency_nanos
                );
                rows.push(best);
            }
        }
    }

    // Per-regime winners among the pinned engines, plus how close the
    // live-switching policy comes to the best single engine overall.
    let pinned: Vec<String> = LockAlgorithm::ALL
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    let mut winners: Vec<serde_json::Value> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            let best = rows
                .iter()
                .filter(|r| r.threads == t && r.cs_nanos == cs && pinned.contains(&r.policy))
                .min_by_key(|r| r.total_nanos);
            if let Some(b) = best {
                winners.push(json!({
                    "threads": t,
                    "cs_nanos": cs,
                    "engine": (b.policy.clone()),
                    "total_nanos": (b.total_nanos),
                }));
            }
        }
    }
    let total = |label: &str| -> u64 {
        rows.iter()
            .filter(|r| r.policy == label)
            .map(|r| r.total_nanos)
            .sum()
    };
    let best_pinned = pinned.iter().map(|l| total(l)).filter(|&x| x > 0).min().unwrap_or(0);
    let algo_adapt = total("algo-adapt");
    let within = best_pinned > 0 && algo_adapt as f64 <= best_pinned as f64 * 1.25;
    println!(
        "algo-adapt total {:.2} ms vs best pinned engine {:.2} ms -> {}",
        algo_adapt as f64 / 1e6,
        best_pinned as f64 / 1e6,
        if within { "WITHIN 25%" } else { "OUTSIDE 25%" }
    );

    LockBench {
        bench: "native_algos",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "regime_winners": winners,
            "total_nanos_best_pinned_engine": best_pinned,
            "total_nanos_algo_adapt": algo_adapt,
            "algo_adapt_within_25pct_of_best_pinned": within,
        }),
    }
}

// ------------------------------------------------------------- fairness

#[derive(Serialize)]
struct FairnessBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    repeats: u32,
    /// Why fairness rows keep the median repeat, not the fastest.
    selection: &'static str,
    /// Native synthetic fairness sweep: threads × policy × imbalance ×
    /// non-critical-section length.
    rows: Vec<FairnessPoint>,
    /// Simulator rows for the same imbalanced shape (virtual time,
    /// deterministic), so the two backends stay comparable.
    sim_rows: Vec<FairnessPoint>,
    /// Real-structure rows: lock-protected counter vs lock-free CAS,
    /// queue, hashmap.
    structure_rows: Vec<StructurePoint>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`.
    errors: Vec<String>,
    summary: serde_json::Value,
}

/// One (imbalance, non-critical-section length) regime.
#[derive(Clone, Copy)]
struct FairRegime {
    /// Group B gets a 3000-iteration critical section (vs A's 1000).
    imbalanced: bool,
    /// Busy-loop iterations between acquisitions.
    ncs: u32,
}

/// The swept regimes: the full non-critical-section ladder
/// (0/10/100/1k/10k/100k iterations, saturated → rare) on the balanced
/// shape, plus the imbalanced 1000-vs-3000 shape at the contended end
/// where fairness collapse lives.
fn fairness_regimes(scale: Scale) -> Vec<FairRegime> {
    match scale {
        Scale::Quick => vec![
            FairRegime { imbalanced: false, ncs: 0 },
            FairRegime { imbalanced: true, ncs: 0 },
            FairRegime { imbalanced: false, ncs: 100 },
            FairRegime { imbalanced: true, ncs: 100 },
            FairRegime { imbalanced: false, ncs: 10_000 },
        ],
        Scale::Full => vec![
            FairRegime { imbalanced: false, ncs: 0 },
            FairRegime { imbalanced: true, ncs: 0 },
            FairRegime { imbalanced: false, ncs: 10 },
            FairRegime { imbalanced: false, ncs: 100 },
            FairRegime { imbalanced: true, ncs: 100 },
            FairRegime { imbalanced: false, ncs: 1_000 },
            FairRegime { imbalanced: true, ncs: 1_000 },
            FairRegime { imbalanced: false, ncs: 10_000 },
            FairRegime { imbalanced: false, ncs: 100_000 },
        ],
    }
}

/// The repeat with the median total time. Fairness cells must NOT keep
/// the fastest repeat like the timing sweeps do: a barging engine's
/// fastest run is systematically its most *unfair* one (one thread
/// streaks through cache-hot), so min-by-time selection would censor
/// exactly the collapse this sweep measures.
fn median_by_total(mut runs: Vec<FairnessPoint>) -> FairnessPoint {
    runs.sort_by_key(|p| p.total_nanos);
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

fn run_fairness_sweep(scale: Scale) -> FairnessBench {
    let (threads, base_iters, repeats): (Vec<usize>, u32, u32) = match scale {
        Scale::Quick => (vec![2, 4], 40, 1),
        Scale::Full => (vec![2, 4, 8], 240, 3),
    };
    let (cs_a, cs_b_imbalanced) = (1_000u32, 3_000u32);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!();
    println!("== native fairness sweep: threads x policy x imbalance x ncs ==");
    println!(
        "{:<16} {:>8} {:>6} {:>8} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "policy", "threads", "imbal", "ncs", "total(ms)", "jain", "spread", "lat(ns)", "ns/op"
    );

    let mut rows: Vec<FairnessPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for regime in fairness_regimes(scale) {
            // Long think times multiply wall time on an oversubscribed
            // host; shrink the per-thread quota so the rare-visit end of
            // the ladder stays affordable without losing its regime.
            let iters = (base_iters / (1 + regime.ncs / 2_000)).max(32);
            for policy in algo_policies() {
                let spec = FairnessSpec {
                    threads: t,
                    group_a: (t / 2).max(1),
                    iters,
                    cs_iters_a: cs_a,
                    cs_iters_b: if regime.imbalanced { cs_b_imbalanced } else { cs_a },
                    ncs_iters: regime.ncs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    median_by_total(
                        (0..repeats).map(|_| run_fairness(Backend::Native, &spec)).collect(),
                    )
                }));
                let point = match cell {
                    Ok(point) => point,
                    Err(payload) => {
                        let msg = format!(
                            "fairness cell (policy={}, threads={t}, imbalanced={}, ncs={}): {}",
                            policy.label(),
                            regime.imbalanced,
                            regime.ncs,
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>6} {:>8} {:>10.2} {:>8.3} {:>8.2} {:>12.0} {:>12.0}",
                    point.policy,
                    point.threads,
                    point.imbalanced,
                    point.ncs_iters,
                    point.total_nanos as f64 / 1e6,
                    point.fairness_index,
                    point.thread_spread,
                    point.mean_latency_nanos,
                    point.wall_nanos_per_op,
                );
                rows.push(point);
            }
        }
    }

    // Simulator rows, same imbalanced shape: deterministic, one run.
    let mut sim_rows: Vec<FairnessPoint> = Vec::new();
    for imbalanced in [false, true] {
        for policy in algo_policies() {
            let spec = FairnessSpec {
                threads: 4,
                group_a: 2,
                iters: 40,
                cs_iters_a: cs_a,
                cs_iters_b: if imbalanced { cs_b_imbalanced } else { cs_a },
                ncs_iters: 100,
                policy,
                seed: 0x51ee9,
            };
            match catch_unwind(AssertUnwindSafe(|| run_fairness(Backend::Sim, &spec))) {
                Ok(p) => sim_rows.push(p),
                Err(payload) => {
                    let msg = format!(
                        "sim fairness cell (policy={}, imbalanced={imbalanced}): {}",
                        policy.label(),
                        panic_msg(payload)
                    );
                    eprintln!("error: {msg}");
                    errors.push(msg);
                }
            }
        }
    }

    // Real-structure rows: every lock-protected structure under every
    // policy, plus the lock-free CAS baseline once per thread count.
    println!();
    println!("== native structure sweep: structure x policy x threads ==");
    println!(
        "{:<12} {:<16} {:>8} {:>10} {:>14} {:>8} {:>12}",
        "structure", "policy", "threads", "total(ms)", "ops/sec", "jain", "lat(ns)"
    );
    let structure_iters = match scale {
        Scale::Quick => 150,
        Scale::Full => 1_500,
    };
    let mut structure_rows: Vec<StructurePoint> = Vec::new();
    for &t in &threads {
        for structure in StructureKind::ALL {
            let policies: Vec<PolicyChoice> = if structure.lock_protected() {
                algo_policies()
            } else {
                vec![PolicyChoice::FixedSpin(64)] // ignored; one baseline row
            };
            for policy in policies {
                let spec = StructureSpec {
                    structure,
                    threads: t,
                    iters: structure_iters,
                    ncs_iters: 100,
                    policy,
                };
                match catch_unwind(AssertUnwindSafe(|| run_structure(&spec))) {
                    Ok(p) => {
                        println!(
                            "{:<12} {:<16} {:>8} {:>10.2} {:>14.0} {:>8.3} {:>12.0}",
                            p.structure,
                            p.policy,
                            p.threads,
                            p.total_nanos as f64 / 1e6,
                            p.throughput_per_sec,
                            p.fairness_index,
                            p.mean_latency_nanos,
                        );
                        structure_rows.push(p);
                    }
                    Err(payload) => {
                        let msg = format!(
                            "structure cell (structure={}, policy={}, threads={t}): {}",
                            structure.label(),
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                    }
                }
            }
        }
    }

    let summary = fairness_summary(&rows, &structure_rows, &threads);
    FairnessBench {
        bench: "native_fairness",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: host,
        repeats,
        selection: "fairness rows keep the median-by-total repeat: a barging engine's \
                    fastest repeat is systematically its most unfair one, so min-by-time \
                    would censor the collapse",
        rows,
        sim_rows,
        structure_rows,
        errors,
        summary,
    }
}

/// Per-regime fairness winners, the FIFO-vs-spin-park separation
/// verdict, and the CAS-vs-lock counter ratio.
fn fairness_summary(
    rows: &[FairnessPoint],
    structure_rows: &[StructurePoint],
    threads: &[usize],
) -> serde_json::Value {
    let pinned: Vec<&str> = LockAlgorithm::ALL.iter().map(|a| a.label()).collect();
    let fifo_engines = [LockAlgorithm::Ticket.label(), LockAlgorithm::Queue.label()];
    let spin_park = LockAlgorithm::SpinPark.label();

    // Group native rows by regime.
    let mut regimes: Vec<(usize, bool, u32)> = rows
        .iter()
        .map(|r| (r.threads, r.imbalanced, r.ncs_iters))
        .collect();
    regimes.sort_unstable();
    regimes.dedup();

    struct Separation {
        sep: f64,
        threads: usize,
        imbalanced: bool,
        ncs_iters: u32,
        fifo_engine: String,
        fifo_fairness: f64,
        fifo_spread: f64,
        spin_park_fairness: f64,
        spin_park_spread: f64,
    }

    let mut winners: Vec<serde_json::Value> = Vec::new();
    let mut best_sep: Option<Separation> = None;
    for &(t, imb, ncs) in &regimes {
        let regime_rows: Vec<&FairnessPoint> = rows
            .iter()
            .filter(|r| r.threads == t && r.imbalanced == imb && r.ncs_iters == ncs)
            .collect();
        let fairest = regime_rows
            .iter()
            .filter(|r| pinned.contains(&r.policy.as_str()))
            .max_by(|a, b| a.fairness_index.total_cmp(&b.fairness_index));
        if let Some(w) = fairest {
            winners.push(json!({
                "threads": t,
                "imbalanced": imb,
                "ncs_iters": ncs,
                "engine": (w.policy.clone()),
                "fairness_index": (w.fairness_index),
                "thread_spread": (w.thread_spread),
            }));
        }
        // FIFO-vs-spin-park separation: does a FIFO engine hold Jain >=
        // 0.9 in a regime where the barging spin-park engine degrades?
        let sp = regime_rows.iter().find(|r| r.policy == spin_park);
        let fifo = regime_rows
            .iter()
            .filter(|r| fifo_engines.contains(&r.policy.as_str()))
            .max_by(|a, b| a.fairness_index.total_cmp(&b.fairness_index));
        if let (Some(sp), Some(fifo)) = (sp, fifo) {
            if fifo.fairness_index >= 0.9 {
                let sep = fifo.fairness_index - sp.fairness_index;
                if best_sep.as_ref().is_none_or(|best| sep > best.sep) {
                    best_sep = Some(Separation {
                        sep,
                        threads: t,
                        imbalanced: imb,
                        ncs_iters: ncs,
                        fifo_engine: fifo.policy.clone(),
                        fifo_fairness: fifo.fairness_index,
                        fifo_spread: fifo.thread_spread,
                        spin_park_fairness: sp.fairness_index,
                        spin_park_spread: sp.thread_spread,
                    });
                }
            }
        }
    }
    let fifo_fair_while_spin_park_degrades = best_sep.as_ref().map(|s| s.sep >= 0.10);
    match &best_sep {
        Some(s) => println!(
            "fairness separation: {} jain {:.3} vs spin-park {:.3} (sep {:.3}) at \
             threads={} imbalanced={} ncs={} -> {}",
            s.fifo_engine,
            s.fifo_fairness,
            s.spin_park_fairness,
            s.sep,
            s.threads,
            s.imbalanced,
            s.ncs_iters,
            if s.sep >= 0.10 { "FIFO FAIR WHERE SPIN-PARK DEGRADES" } else { "SEPARATION < 0.10" }
        ),
        None => println!("fairness separation: no regime with a FIFO engine at jain >= 0.9"),
    }

    // CAS baseline vs the lock-protected counter at the highest thread
    // count: what the cheapest possible synchronization buys.
    let max_t = threads.iter().copied().max().unwrap_or(1);
    let cas = structure_rows
        .iter()
        .find(|r| r.structure == "cas-counter" && r.threads == max_t);
    let best_lock_counter = structure_rows
        .iter()
        .filter(|r| r.structure == "counter" && r.threads == max_t)
        .max_by(|a, b| a.throughput_per_sec.total_cmp(&b.throughput_per_sec));
    let cas_vs_lock = match (cas, best_lock_counter) {
        (Some(c), Some(l)) if l.throughput_per_sec > 0.0 => {
            let ratio = c.throughput_per_sec / l.throughput_per_sec;
            println!(
                "cas-counter {:.0} ops/sec vs best lock counter ({}) {:.0} ops/sec = {ratio:.2}x \
                 at {max_t} threads",
                c.throughput_per_sec, l.policy, l.throughput_per_sec
            );
            json!({
                "threads": max_t,
                "cas_ops_per_sec": (c.throughput_per_sec),
                "best_lock_policy": (l.policy.clone()),
                "best_lock_ops_per_sec": (l.throughput_per_sec),
                "cas_speedup": ratio,
            })
        }
        _ => serde_json::Value::Null,
    };

    let fifo_vs_spin_park = match &best_sep {
        Some(s) => json!({
            "threads": (s.threads),
            "imbalanced": (s.imbalanced),
            "ncs_iters": (s.ncs_iters),
            "fifo_engine": (s.fifo_engine.clone()),
            "fifo_fairness_index": (s.fifo_fairness),
            "fifo_thread_spread": (s.fifo_spread),
            "spin_park_fairness_index": (s.spin_park_fairness),
            "spin_park_thread_spread": (s.spin_park_spread),
            "separation": (s.sep),
        }),
        None => serde_json::Value::Null,
    };
    json!({
        "regime_fairness_winners": winners,
        "fifo_vs_spin_park": fifo_vs_spin_park,
        "fifo_fair_while_spin_park_degrades": fifo_fair_while_spin_park_degrades,
        "cas_vs_lock_counter": cas_vs_lock,
    })
}

// ------------------------------------------------------------------ tsp

#[derive(Serialize)]
struct TspRow {
    /// Program structure: `centralized`, `distributed`, `distributed+lb`.
    structure: String,
    policy: String,
    searchers: usize,
    /// More searcher threads than host parallelism: timing reflects
    /// scheduler time-slicing, not lock contention. Read the contended
    /// counters, not the wall clock, on such rows.
    oversubscribed: bool,
    elapsed_nanos: u64,
    expanded: u64,
    expansions_per_sec: f64,
    /// Tour cost the run returned; must equal `optimal_cost`.
    tour_cost: u32,
    /// Summed over every per-searcher queue lock.
    queue_lock_acquisitions: u64,
    queue_lock_contended: u64,
    queue_lock_parked: u64,
    queue_lock_reconfigurations: u64,
    /// Contended `qlock` acquisitions per node expansion — the paper's
    /// contention-collapse axis (centralized vs distributed).
    contended_per_expansion: f64,
    /// Contended acquisitions broken out per queue (one entry for
    /// centralized, `searchers` entries for the distributed structures).
    per_queue_contended: Vec<u64>,
    steals: u64,
    steal_failures: u64,
    transfers: u64,
    balance_pushes: u64,
}

#[derive(Serialize)]
struct TspBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    cities: usize,
    seed: u64,
    sequential_nanos: u64,
    optimal_cost: u32,
    repeats: u32,
    rows: Vec<TspRow>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
    summary: serde_json::Value,
}

fn run_tsp_sweep(scale: Scale) -> TspBench {
    // Instances chosen for search-tree size, not city count: seed 3 is
    // a hard Euclidean layout (~240 expansions at 12 cities, ~7900 at
    // 16), so the search outlives thread spawn and the searchers
    // genuinely overlap — tiny trees finish inside worker 0's first
    // scheduler quantum and every contention/steal counter reads zero,
    // and short runs turn the contended counters into a preemption
    // lottery on few-core hosts.
    let (cities, searchers): (usize, Vec<usize>) = match scale {
        Scale::Quick => (12, vec![1, 2, 4]),
        Scale::Full => (16, vec![1, 2, 4, 8]),
    };
    let seed = 3;
    let inst = TspInstance::random_euclidean(cities, 500, seed);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = std::time::Instant::now();
    let (optimal, _) = solve_sequential(&inst);
    let sequential = t0.elapsed();

    println!();
    println!("== native TSP (LMSK, {cities} cities): structure x policy x searchers ==");
    println!("sequential baseline: {:.2} ms (optimal {optimal})", sequential.as_secs_f64() * 1e3);
    println!(
        "{:<16} {:<16} {:>6} {:>12} {:>14} {:>10} {:>12} {:>8}",
        "structure", "policy", "srch", "total (ms)", "exp/sec", "contended", "cont/exp", "steals"
    );

    let mut rows: Vec<TspRow> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &s in &searchers {
        for variant in NativeVariant::ALL {
            for policy in policies() {
                let cfg = NativeTspConfig {
                    searchers: s,
                    variant,
                    policy,
                    ..NativeTspConfig::default()
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    let mut runs = Vec::with_capacity(REPEATS as usize);
                    for _ in 0..REPEATS {
                        let res = solve_native(&inst, cfg.clone());
                        assert_eq!(res.best, optimal, "parallel search must stay exact");
                        runs.push(res);
                    }
                    runs
                }));
                let runs = match cell {
                    Ok(runs) => runs,
                    Err(payload) => {
                        let msg = format!(
                            "tsp cell (structure={}, policy={}, searchers={s}): {}",
                            variant.label(),
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                // Timing fields come from the best-of-REPEATS run (the
                // usual least-noise estimator). Counter fields are SUMMED
                // across all repeats instead: on a contended host the
                // fastest run is systematically the one where the
                // centralized qlock cascade did NOT ignite, so min-by-time
                // selection would silently censor exactly the contention
                // this sweep exists to measure.
                let best_run = runs
                    .iter()
                    .min_by_key(|r| r.elapsed)
                    .expect("at least one repeat");
                let nanos = best_run.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
                let expanded: u64 = runs.iter().map(|r| r.stats.expanded).sum();
                // Merge each run's per-queue counters exactly once, after
                // all timing is in hand: the aggregation is lazy on
                // NativeResult precisely so it stays out of the timed
                // region and is never recomputed per consumed field.
                let merged: Vec<_> = runs.iter().map(|r| r.queue_lock()).collect();
                let contended: u64 = merged.iter().map(|q| q.contended).sum();
                let nq = best_run.per_queue_locks.len();
                let per_queue_contended: Vec<u64> = (0..nq)
                    .map(|i| {
                        runs.iter()
                            .map(|r| r.per_queue_locks.get(i).map_or(0, |q| q.contended))
                            .sum()
                    })
                    .collect();
                let row = TspRow {
                    structure: variant.label().to_string(),
                    policy: policy.label(),
                    searchers: s,
                    oversubscribed: s > host,
                    elapsed_nanos: nanos,
                    expanded,
                    expansions_per_sec: best_run.stats.expanded as f64
                        / (nanos.max(1) as f64 / 1e9),
                    tour_cost: best_run.best,
                    queue_lock_acquisitions: merged.iter().map(|q| q.acquisitions).sum(),
                    queue_lock_contended: contended,
                    queue_lock_parked: merged.iter().map(|q| q.parked).sum(),
                    queue_lock_reconfigurations: merged
                        .iter()
                        .map(|q| q.reconfigurations)
                        .sum(),
                    contended_per_expansion: contended as f64 / expanded.max(1) as f64,
                    per_queue_contended,
                    steals: runs.iter().map(|r| r.steals).sum(),
                    steal_failures: runs.iter().map(|r| r.steal_failures).sum(),
                    transfers: runs.iter().map(|r| r.transfers).sum(),
                    balance_pushes: runs.iter().map(|r| r.balance_pushes).sum(),
                };
                println!(
                    "{:<16} {:<16} {:>6} {:>12.2} {:>14.0} {:>10} {:>12.4} {:>8}",
                    row.structure,
                    row.policy,
                    row.searchers,
                    nanos as f64 / 1e6,
                    row.expansions_per_sec,
                    row.queue_lock_contended,
                    row.contended_per_expansion,
                    row.steals
                );
                rows.push(row);
            }
        }
    }

    // Contention-collapse verdict at the highest swept searcher count:
    // contended qlock acquisitions per expansion, summed across policies,
    // for each structure vs centralized.
    let max_s = searchers.iter().copied().max().unwrap_or(1);
    let per_exp = |structure: &str| -> f64 {
        let (contended, expanded) = rows
            .iter()
            .filter(|r| r.searchers == max_s && r.structure == structure)
            .fold((0u64, 0u64), |(c, e), r| (c + r.queue_lock_contended, e + r.expanded));
        contended as f64 / expanded.max(1) as f64
    };
    let central = per_exp("centralized");
    let distributed = per_exp("distributed");
    let balanced = per_exp("distributed+lb");
    // Ratio >= 5 means the structure relieved the central qlock by 5x;
    // a structure with zero contended acquisitions collapses infinitely
    // (reported as f64::INFINITY -> serialized as null, flag still true).
    // On a single-core host even the centralized baseline can read zero
    // (contention needs a mid-CS preemption there), which satisfies the
    // 5x bound vacuously; `collapse_vacuous` records that so readers
    // don't mistake an idle baseline for a measured collapse.
    let ratio = |x: f64| if x > 0.0 { central / x } else { f64::INFINITY };
    let collapse_ok = ratio(distributed) >= 5.0 && ratio(balanced) >= 5.0;
    let vacuous = central == 0.0;
    println!(
        "contended/expansion at {max_s} searchers: centralized {central:.4}, \
         distributed {distributed:.4} ({:.1}x), distributed+lb {balanced:.4} ({:.1}x) -> {}{}",
        ratio(distributed),
        ratio(balanced),
        if collapse_ok { "COLLAPSE >= 5x" } else { "COLLAPSE < 5x" },
        if vacuous { " (vacuous: uncontended baseline)" } else { "" }
    );

    TspBench {
        bench: "native_tsp",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: host,
        cities,
        seed,
        sequential_nanos: sequential.as_nanos().min(u128::from(u64::MAX)) as u64,
        optimal_cost: optimal,
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "max_searchers": max_s,
            "contended_per_expansion_centralized": central,
            "contended_per_expansion_distributed": distributed,
            "contended_per_expansion_balanced": balanced,
            "distributed_collapse_ratio": (ratio(distributed)),
            "balanced_collapse_ratio": (ratio(balanced)),
            "contention_collapse_at_least_5x": collapse_ok,
            "collapse_vacuous": vacuous,
        }),
    }
}
