//! The native perf runner: real-thread lock sweeps and TSP runs.
//!
//! Sweeps thread count × critical-section length × waiting policy over
//! the native `AdaptiveMutex` (contention microbenchmark), thread count
//! × critical-section length × lock *algorithm* over the engine zoo
//! (pinned engines plus the switching policies), and the native LMSK
//! TSP solver, prints paper-style rows, and writes
//! `BENCH_native_locks.json` + `BENCH_native_algos.json` +
//! `BENCH_native_tsp.json` at the workspace root so the bench
//! trajectory accumulates across PRs.
//!
//! ```text
//! EXPERIMENT_SCALE=quick cargo run --release -p bench --bin perf   # CI smoke
//! EXPERIMENT_SCALE=full  cargo run --release -p bench --bin perf   # real numbers
//! ```
//!
//! Each configuration runs `REPEATS` times and the best (minimum) total
//! time is kept: on a shared or single-core host, min-of-N is the
//! noise-robust estimator of the achievable time.
//!
//! Failure policy: a sweep cell that panics is recorded in the output's
//! `errors` array and the sweep continues (partial results beat no
//! results); an unwritable `BENCH_*.json` is a clear one-line error and
//! a non-zero exit, not a panic backtrace.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use adaptive_native::{LockAlgorithm, PolicyChoice};
use bench::{improvement_pct, workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use tsp_app::{solve_native, solve_sequential, NativeTspConfig, NativeVariant, TspInstance};
use workloads::{run_contention, Backend, ContentionPoint, ContentionSpec};

/// Repeats per configuration (best-of).
const REPEATS: u32 = 3;

/// The swept policies: the two static baselines and the adaptive lock.
fn policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::FixedSpin(100),
        PolicyChoice::PureBlocking,
        PolicyChoice::Adaptive { threshold: 2, n: 32 },
    ]
}

/// The algorithm sweep's policy axis: every pinned zoo engine plus the
/// two policies that pick for themselves (attribute tuning and live
/// engine switching), so the JSON answers both "which engine wins this
/// regime" and "does the switching policy find it".
fn algo_policies() -> Vec<PolicyChoice> {
    let mut v: Vec<PolicyChoice> = LockAlgorithm::ALL.map(PolicyChoice::Algorithm).into();
    v.push(PolicyChoice::Adaptive { threshold: 2, n: 32 });
    v.push(PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 });
    v
}

fn main() -> ExitCode {
    let scale = bench::scale();
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("native perf runner — scale={scale_label}, host parallelism={cores}");

    let locks = run_lock_sweep(scale);
    let algos = run_algo_sweep(scale);
    let tsp = run_tsp_sweep(scale);
    let cell_errors = locks.errors.len() + algos.errors.len() + tsp.errors.len();

    let root = workspace_root();
    let mut ok = true;
    for (path, write) in [
        (root.join("BENCH_native_locks.json"), write_bench(&root.join("BENCH_native_locks.json"), &locks)),
        (root.join("BENCH_native_algos.json"), write_bench(&root.join("BENCH_native_algos.json"), &algos)),
        (root.join("BENCH_native_tsp.json"), write_bench(&root.join("BENCH_native_tsp.json"), &tsp)),
    ] {
        if let Err(e) = write {
            eprintln!("error: could not write {}: {e}", path.display());
            ok = false;
        }
    }
    if cell_errors > 0 {
        eprintln!("warning: {cell_errors} sweep cell(s) failed; results are partial (see the errors array)");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_bench<T: Serialize>(path: &std::path::Path, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text + "\n").map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Render a caught panic payload as a message.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------- locks

#[derive(Serialize)]
struct LockBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    repeats: u32,
    rows: Vec<ContentionPoint>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
    summary: serde_json::Value,
}

fn run_lock_sweep(scale: Scale) -> LockBench {
    let (threads, cs_lens, iters): (Vec<usize>, Vec<u64>, u32) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![500, 5_000], 200),
        Scale::Full => (vec![2, 4, 8, 16], vec![200, 2_000, 20_000], 2_000),
    };

    println!();
    println!("== native lock sweep: threads x critical-section x policy ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>16} {:>12}",
        "policy", "threads", "cs (ns)", "total (ms)", "ops/sec", "lat (ns)"
    );

    let mut rows: Vec<ContentionPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            for policy in policies() {
                let spec = ContentionSpec {
                    threads: t,
                    iters,
                    cs_nanos: cs,
                    think_nanos: cs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    (0..REPEATS)
                        .map(|_| run_contention(Backend::Native, &spec))
                        .min_by_key(|p| p.total_nanos)
                        .expect("at least one repeat")
                }));
                let best = match cell {
                    Ok(best) => best,
                    Err(payload) => {
                        let msg = format!(
                            "locks cell (policy={}, threads={t}, cs={cs}ns): {}",
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>10} {:>14.2} {:>16.0} {:>12.0}",
                    best.policy,
                    best.threads,
                    best.cs_nanos,
                    best.total_nanos as f64 / 1e6,
                    best.throughput_per_sec,
                    best.mean_latency_nanos
                );
                rows.push(best);
            }
        }
    }

    // Contended-sweep verdict: total time per policy across every
    // (threads, cs) point; the adaptive lock must stay within 10% of
    // the best static policy.
    let total = |label: &str| -> u64 {
        rows.iter()
            .filter(|r| r.policy == label)
            .map(|r| r.total_nanos)
            .sum()
    };
    let fixed = total(&PolicyChoice::FixedSpin(100).label());
    let blocking = total(&PolicyChoice::PureBlocking.label());
    let adaptive = total("simple-adapt");
    let best_static = fixed.min(blocking);
    let vs_best_pct = improvement_pct(best_static as f64, adaptive as f64);
    let within = adaptive as f64 <= best_static as f64 * 1.10;
    println!(
        "adaptive total {:.2} ms vs best static {:.2} ms ({:+.1}% improvement) -> {}",
        adaptive as f64 / 1e6,
        best_static as f64 / 1e6,
        vs_best_pct,
        if within { "WITHIN 10%" } else { "OUTSIDE 10%" }
    );

    LockBench {
        bench: "native_locks",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "total_nanos_fixed_spin": fixed,
            "total_nanos_blocking": blocking,
            "total_nanos_adaptive": adaptive,
            "adaptive_vs_best_static_improvement_pct": vs_best_pct,
            "adaptive_within_10pct_of_best_static": within,
        }),
    }
}

// ----------------------------------------------------------- algorithms

/// Engine zoo sweep: thread count × critical-section length × lock
/// algorithm, same workload shape as the lock sweep. Pinned-engine rows
/// price each algorithm in each regime; the `simple-adapt` and
/// `algo-adapt` rows show what the self-tuning policies make of the
/// same regimes (the latter switching engines live through
/// `SetAlgorithm`).
fn run_algo_sweep(scale: Scale) -> LockBench {
    let (threads, cs_lens, iters): (Vec<usize>, Vec<u64>, u32) = match scale {
        Scale::Quick => (vec![2, 4, 8], vec![500, 5_000], 200),
        Scale::Full => (vec![2, 4, 8, 16], vec![200, 2_000, 20_000], 2_000),
    };

    println!();
    println!("== native algorithm sweep: threads x critical-section x engine ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>16} {:>12}",
        "engine", "threads", "cs (ns)", "total (ms)", "ops/sec", "lat (ns)"
    );

    let mut rows: Vec<ContentionPoint> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            for policy in algo_policies() {
                let spec = ContentionSpec {
                    threads: t,
                    iters,
                    cs_nanos: cs,
                    think_nanos: cs,
                    policy,
                    seed: 0x51ee9,
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    (0..REPEATS)
                        .map(|_| run_contention(Backend::Native, &spec))
                        .min_by_key(|p| p.total_nanos)
                        .expect("at least one repeat")
                }));
                let best = match cell {
                    Ok(best) => best,
                    Err(payload) => {
                        let msg = format!(
                            "algos cell (engine={}, threads={t}, cs={cs}ns): {}",
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                println!(
                    "{:<16} {:>8} {:>10} {:>14.2} {:>16.0} {:>12.0}",
                    best.policy,
                    best.threads,
                    best.cs_nanos,
                    best.total_nanos as f64 / 1e6,
                    best.throughput_per_sec,
                    best.mean_latency_nanos
                );
                rows.push(best);
            }
        }
    }

    // Per-regime winners among the pinned engines, plus how close the
    // live-switching policy comes to the best single engine overall.
    let pinned: Vec<String> = LockAlgorithm::ALL
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    let mut winners: Vec<serde_json::Value> = Vec::new();
    for &t in &threads {
        for &cs in &cs_lens {
            let best = rows
                .iter()
                .filter(|r| r.threads == t && r.cs_nanos == cs && pinned.contains(&r.policy))
                .min_by_key(|r| r.total_nanos);
            if let Some(b) = best {
                winners.push(json!({
                    "threads": t,
                    "cs_nanos": cs,
                    "engine": (b.policy.clone()),
                    "total_nanos": (b.total_nanos),
                }));
            }
        }
    }
    let total = |label: &str| -> u64 {
        rows.iter()
            .filter(|r| r.policy == label)
            .map(|r| r.total_nanos)
            .sum()
    };
    let best_pinned = pinned.iter().map(|l| total(l)).filter(|&x| x > 0).min().unwrap_or(0);
    let algo_adapt = total("algo-adapt");
    let within = best_pinned > 0 && algo_adapt as f64 <= best_pinned as f64 * 1.25;
    println!(
        "algo-adapt total {:.2} ms vs best pinned engine {:.2} ms -> {}",
        algo_adapt as f64 / 1e6,
        best_pinned as f64 / 1e6,
        if within { "WITHIN 25%" } else { "OUTSIDE 25%" }
    );

    LockBench {
        bench: "native_algos",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "regime_winners": winners,
            "total_nanos_best_pinned_engine": best_pinned,
            "total_nanos_algo_adapt": algo_adapt,
            "algo_adapt_within_25pct_of_best_pinned": within,
        }),
    }
}

// ------------------------------------------------------------------ tsp

#[derive(Serialize)]
struct TspRow {
    /// Program structure: `centralized`, `distributed`, `distributed+lb`.
    structure: String,
    policy: String,
    searchers: usize,
    /// More searcher threads than host parallelism: timing reflects
    /// scheduler time-slicing, not lock contention. Read the contended
    /// counters, not the wall clock, on such rows.
    oversubscribed: bool,
    elapsed_nanos: u64,
    expanded: u64,
    expansions_per_sec: f64,
    /// Tour cost the run returned; must equal `optimal_cost`.
    tour_cost: u32,
    /// Summed over every per-searcher queue lock.
    queue_lock_acquisitions: u64,
    queue_lock_contended: u64,
    queue_lock_parked: u64,
    queue_lock_reconfigurations: u64,
    /// Contended `qlock` acquisitions per node expansion — the paper's
    /// contention-collapse axis (centralized vs distributed).
    contended_per_expansion: f64,
    /// Contended acquisitions broken out per queue (one entry for
    /// centralized, `searchers` entries for the distributed structures).
    per_queue_contended: Vec<u64>,
    steals: u64,
    steal_failures: u64,
    transfers: u64,
    balance_pushes: u64,
}

#[derive(Serialize)]
struct TspBench {
    bench: &'static str,
    scale: String,
    host_parallelism: usize,
    cities: usize,
    seed: u64,
    sequential_nanos: u64,
    optimal_cost: u32,
    repeats: u32,
    rows: Vec<TspRow>,
    /// Sweep cells that failed, as `"<cell>: <panic message>"`; rows
    /// holds whatever completed.
    errors: Vec<String>,
    summary: serde_json::Value,
}

fn run_tsp_sweep(scale: Scale) -> TspBench {
    // Instances chosen for search-tree size, not city count: seed 3 is
    // a hard Euclidean layout (~240 expansions at 12 cities, ~7900 at
    // 16), so the search outlives thread spawn and the searchers
    // genuinely overlap — tiny trees finish inside worker 0's first
    // scheduler quantum and every contention/steal counter reads zero,
    // and short runs turn the contended counters into a preemption
    // lottery on few-core hosts.
    let (cities, searchers): (usize, Vec<usize>) = match scale {
        Scale::Quick => (12, vec![1, 2, 4]),
        Scale::Full => (16, vec![1, 2, 4, 8]),
    };
    let seed = 3;
    let inst = TspInstance::random_euclidean(cities, 500, seed);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = std::time::Instant::now();
    let (optimal, _) = solve_sequential(&inst);
    let sequential = t0.elapsed();

    println!();
    println!("== native TSP (LMSK, {cities} cities): structure x policy x searchers ==");
    println!("sequential baseline: {:.2} ms (optimal {optimal})", sequential.as_secs_f64() * 1e3);
    println!(
        "{:<16} {:<16} {:>6} {:>12} {:>14} {:>10} {:>12} {:>8}",
        "structure", "policy", "srch", "total (ms)", "exp/sec", "contended", "cont/exp", "steals"
    );

    let mut rows: Vec<TspRow> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for &s in &searchers {
        for variant in NativeVariant::ALL {
            for policy in policies() {
                let cfg = NativeTspConfig {
                    searchers: s,
                    variant,
                    policy,
                    ..NativeTspConfig::default()
                };
                let cell = catch_unwind(AssertUnwindSafe(|| {
                    let mut runs = Vec::with_capacity(REPEATS as usize);
                    for _ in 0..REPEATS {
                        let res = solve_native(&inst, cfg.clone());
                        assert_eq!(res.best, optimal, "parallel search must stay exact");
                        runs.push(res);
                    }
                    runs
                }));
                let runs = match cell {
                    Ok(runs) => runs,
                    Err(payload) => {
                        let msg = format!(
                            "tsp cell (structure={}, policy={}, searchers={s}): {}",
                            variant.label(),
                            policy.label(),
                            panic_msg(payload)
                        );
                        eprintln!("error: {msg}");
                        errors.push(msg);
                        continue;
                    }
                };
                // Timing fields come from the best-of-REPEATS run (the
                // usual least-noise estimator). Counter fields are SUMMED
                // across all repeats instead: on a contended host the
                // fastest run is systematically the one where the
                // centralized qlock cascade did NOT ignite, so min-by-time
                // selection would silently censor exactly the contention
                // this sweep exists to measure.
                let best_run = runs
                    .iter()
                    .min_by_key(|r| r.elapsed)
                    .expect("at least one repeat");
                let nanos = best_run.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
                let expanded: u64 = runs.iter().map(|r| r.stats.expanded).sum();
                // Merge each run's per-queue counters exactly once, after
                // all timing is in hand: the aggregation is lazy on
                // NativeResult precisely so it stays out of the timed
                // region and is never recomputed per consumed field.
                let merged: Vec<_> = runs.iter().map(|r| r.queue_lock()).collect();
                let contended: u64 = merged.iter().map(|q| q.contended).sum();
                let nq = best_run.per_queue_locks.len();
                let per_queue_contended: Vec<u64> = (0..nq)
                    .map(|i| {
                        runs.iter()
                            .map(|r| r.per_queue_locks.get(i).map_or(0, |q| q.contended))
                            .sum()
                    })
                    .collect();
                let row = TspRow {
                    structure: variant.label().to_string(),
                    policy: policy.label(),
                    searchers: s,
                    oversubscribed: s > host,
                    elapsed_nanos: nanos,
                    expanded,
                    expansions_per_sec: best_run.stats.expanded as f64
                        / (nanos.max(1) as f64 / 1e9),
                    tour_cost: best_run.best,
                    queue_lock_acquisitions: merged.iter().map(|q| q.acquisitions).sum(),
                    queue_lock_contended: contended,
                    queue_lock_parked: merged.iter().map(|q| q.parked).sum(),
                    queue_lock_reconfigurations: merged
                        .iter()
                        .map(|q| q.reconfigurations)
                        .sum(),
                    contended_per_expansion: contended as f64 / expanded.max(1) as f64,
                    per_queue_contended,
                    steals: runs.iter().map(|r| r.steals).sum(),
                    steal_failures: runs.iter().map(|r| r.steal_failures).sum(),
                    transfers: runs.iter().map(|r| r.transfers).sum(),
                    balance_pushes: runs.iter().map(|r| r.balance_pushes).sum(),
                };
                println!(
                    "{:<16} {:<16} {:>6} {:>12.2} {:>14.0} {:>10} {:>12.4} {:>8}",
                    row.structure,
                    row.policy,
                    row.searchers,
                    nanos as f64 / 1e6,
                    row.expansions_per_sec,
                    row.queue_lock_contended,
                    row.contended_per_expansion,
                    row.steals
                );
                rows.push(row);
            }
        }
    }

    // Contention-collapse verdict at the highest swept searcher count:
    // contended qlock acquisitions per expansion, summed across policies,
    // for each structure vs centralized.
    let max_s = searchers.iter().copied().max().unwrap_or(1);
    let per_exp = |structure: &str| -> f64 {
        let (contended, expanded) = rows
            .iter()
            .filter(|r| r.searchers == max_s && r.structure == structure)
            .fold((0u64, 0u64), |(c, e), r| (c + r.queue_lock_contended, e + r.expanded));
        contended as f64 / expanded.max(1) as f64
    };
    let central = per_exp("centralized");
    let distributed = per_exp("distributed");
    let balanced = per_exp("distributed+lb");
    // Ratio >= 5 means the structure relieved the central qlock by 5x;
    // a structure with zero contended acquisitions collapses infinitely
    // (reported as f64::INFINITY -> serialized as null, flag still true).
    // On a single-core host even the centralized baseline can read zero
    // (contention needs a mid-CS preemption there), which satisfies the
    // 5x bound vacuously; `collapse_vacuous` records that so readers
    // don't mistake an idle baseline for a measured collapse.
    let ratio = |x: f64| if x > 0.0 { central / x } else { f64::INFINITY };
    let collapse_ok = ratio(distributed) >= 5.0 && ratio(balanced) >= 5.0;
    let vacuous = central == 0.0;
    println!(
        "contended/expansion at {max_s} searchers: centralized {central:.4}, \
         distributed {distributed:.4} ({:.1}x), distributed+lb {balanced:.4} ({:.1}x) -> {}{}",
        ratio(distributed),
        ratio(balanced),
        if collapse_ok { "COLLAPSE >= 5x" } else { "COLLAPSE < 5x" },
        if vacuous { " (vacuous: uncontended baseline)" } else { "" }
    );

    TspBench {
        bench: "native_tsp",
        scale: format!("{:?}", scale).to_lowercase(),
        host_parallelism: host,
        cities,
        seed,
        sequential_nanos: sequential.as_nanos().min(u128::from(u64::MAX)) as u64,
        optimal_cost: optimal,
        repeats: REPEATS,
        rows,
        errors,
        summary: json!({
            "max_searchers": max_s,
            "contended_per_expansion_centralized": central,
            "contended_per_expansion_distributed": distributed,
            "contended_per_expansion_balanced": balanced,
            "distributed_collapse_ratio": (ratio(distributed)),
            "balanced_collapse_ratio": (ratio(balanced)),
            "contention_collapse_at_least_5x": collapse_ok,
            "collapse_vacuous": vacuous,
        }),
    }
}
