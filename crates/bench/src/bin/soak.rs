//! The breaker soak runner: chaos soaks over the control plane plus an
//! open-vs-closed throughput comparison, written to
//! `BENCH_native_breaker.json` at the workspace root.
//!
//! ```text
//! EXPERIMENT_SCALE=quick cargo run --release -p bench --bin soak   # CI smoke
//! EXPERIMENT_SCALE=full  cargo run --release -p bench --bin soak   # real numbers
//! ```
//!
//! Two measurements:
//!
//! * **Soak rows** — seeded `workloads::soak` runs (CS panics, dropped
//!   unparks, monitor stalls, 25% worker kills, live command traffic),
//!   reporting per-run time-to-quarantine (supervisor polls from wedge
//!   to `Quarantined`), time-to-heal (calm polls until every breaker
//!   re-armed), state-dwell totals, and the oracle outcomes.
//! * **Throughput open vs closed** — the same contention workload
//!   through a healthy adaptive mutex ("closed") and through a mutex
//!   held in quarantine by a supervisor-style re-assertion thread
//!   ("open": the breaker-open endpoint configuration, pure blocking on
//!   a spin-park engine). The `open_over_closed` ratio quantifies the
//!   cost of running through an open breaker; the verdict requires it
//!   to stay above 0.5.
//!
//! Failure policy: a cell that panics lands in the `errors` array and
//! the sweep continues; an unwritable JSON is a one-line error and a
//! non-zero exit.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adaptive_native::{FaultSpec, PolicyChoice};
use bench::{workspace_root, Scale};
use serde::Serialize;
use serde_json::json;
use workloads::{run_soak, SoakSpec, StallEpisode};

/// Repeats for the throughput cells (best-of).
const REPEATS: u32 = 3;

fn main() -> ExitCode {
    let scale = bench::scale();
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("breaker soak runner — scale={scale_label}, host parallelism={cores}");

    let mut errors: Vec<String> = Vec::new();
    let rows = run_soak_rows(scale, &mut errors);
    let throughput = run_throughput(scale, &mut errors);
    let summary = summarize(&rows, &throughput);

    println!("\nsummary: {}", serde_json::to_string(&summary).unwrap_or_default());
    let report = json!({
        "bench": "native_breaker",
        "scale": scale_label,
        "host_parallelism": cores,
        "rows": rows,
        "throughput": throughput,
        "summary": summary,
        "errors": errors,
    });
    let path = workspace_root().join("BENCH_native_breaker.json");
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("error: could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        Err(e) => {
            eprintln!("error: could not serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !errors.is_empty() {
        eprintln!("warning: {} cell(s) failed; results are partial", errors.len());
    }
    ExitCode::SUCCESS
}

// ------------------------------------------------------------- soak rows

/// One soak run's reportable slice (the full event log stays out of the
/// committed JSON; the oracles have already consumed it).
#[derive(Debug, Serialize)]
struct SoakRow {
    seed: u64,
    polls: u64,
    poll_millis: u64,
    ops: u64,
    episodes: Vec<StallEpisode>,
    episodes_skipped: usize,
    polls_to_quarantine_max: Option<u64>,
    time_to_quarantine_millis_max: Option<u64>,
    heal_polls: u64,
    time_to_heal_millis: u64,
    opened_targets: usize,
    healed_targets: usize,
    all_healed: bool,
    conservation_ok: bool,
    quiescent: bool,
    chain_legal: bool,
    transitions: usize,
    state_dwell_polls: BTreeMap<String, u64>,
    commands_ok: u64,
    commands_err: u64,
    heal_commands: u64,
    workers_killed: usize,
    panics_absorbed: u64,
    faults_cs_panics: u64,
    faults_unparks_dropped: u64,
    faults_monitor_stalls: u64,
}

fn soak_spec(scale: Scale, seed: u64) -> SoakSpec {
    let mut spec = SoakSpec::quick(seed);
    match scale {
        Scale::Quick => {
            spec.storm_polls = 16;
            spec.calm_polls = 6;
            spec.poll_millis = 15;
        }
        Scale::Full => {
            spec.locks = 6;
            spec.storm_polls = 60;
            spec.calm_polls = 10;
            spec.poll_millis = 25;
            spec.stall_episodes = 5;
            spec.faults = FaultSpec::seeded(seed)
                .with_cs_panics(64)
                .with_unpark_drops(96)
                .with_monitor_stalls(48)
                .with_worker_kills(25, 400);
        }
    }
    spec
}

fn run_soak_rows(scale: Scale, errors: &mut Vec<String>) -> Vec<SoakRow> {
    let seeds: &[u64] = match scale {
        Scale::Quick => &[0xb0a7],
        Scale::Full => &[0xb0a7, 0x5eaf, 0xc0de],
    };
    let mut rows = Vec::new();
    for &seed in seeds {
        let spec = soak_spec(scale, seed);
        match catch_unwind(AssertUnwindSafe(|| run_soak(&spec))) {
            Ok(r) => {
                let q_max = r
                    .episodes
                    .iter()
                    .filter_map(|e| e.polls_to_quarantine)
                    .max();
                let heal_polls = spec.calm_polls + r.convergence_polls;
                println!(
                    "soak seed={seed:#x}: {} polls, {} ops, quarantine<= {:?} polls, \
                     heal {} polls, opened {}, healed {}, ok={}",
                    r.polls,
                    r.ops,
                    q_max,
                    heal_polls,
                    r.opened_targets,
                    r.healed_targets,
                    r.conservation_ok && r.quiescent && r.all_healed && r.illegal.is_none()
                );
                rows.push(SoakRow {
                    seed,
                    polls: r.polls,
                    poll_millis: spec.poll_millis,
                    ops: r.ops,
                    polls_to_quarantine_max: q_max,
                    time_to_quarantine_millis_max: q_max.map(|p| p * spec.poll_millis),
                    heal_polls,
                    time_to_heal_millis: heal_polls * spec.poll_millis,
                    episodes: r.episodes,
                    episodes_skipped: r.episodes_skipped,
                    opened_targets: r.opened_targets,
                    healed_targets: r.healed_targets,
                    all_healed: r.all_healed,
                    conservation_ok: r.conservation_ok,
                    quiescent: r.quiescent,
                    chain_legal: r.illegal.is_none(),
                    transitions: r.transitions,
                    state_dwell_polls: r.dwell,
                    commands_ok: r.commands_ok,
                    commands_err: r.commands_err,
                    heal_commands: r.heal_commands,
                    workers_killed: r.workers_killed,
                    panics_absorbed: r.panics_absorbed,
                    faults_cs_panics: r.faults_cs_panics,
                    faults_unparks_dropped: r.faults_unparks_dropped,
                    faults_monitor_stalls: r.faults_monitor_stalls,
                });
            }
            Err(e) => errors.push(format!("soak seed={seed:#x}: {}", panic_msg(e))),
        }
    }
    rows
}

// ------------------------------------------------- open vs closed cost

#[derive(Debug, Serialize)]
struct Throughput {
    threads: usize,
    iters_per_thread: u32,
    cs_nanos: u64,
    closed_ops_per_sec: f64,
    open_ops_per_sec: f64,
    open_over_closed: f64,
}

/// Ops/sec through one adaptive mutex; with `open`, a supervisor-style
/// thread keeps the mutex quarantined for the whole run (the hub's
/// re-assertion loop, compressed), so every acquisition pays the
/// breaker-open configuration: pure blocking on the spin-park engine.
fn measured_ops_per_sec(open: bool, threads: usize, iters: u32, cs_nanos: u64) -> f64 {
    let m = Arc::new(PolicyChoice::Adaptive { threshold: 2, n: 32 }.build_mutex(0u64));
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        if open {
            m.quarantine();
            let (m, stop) = (&m, &stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !m.is_quarantined() {
                        m.quarantine();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let (m, barrier) = (&m, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..iters {
                        m.with_locked(|v| {
                            *v += 1;
                            busy(cs_nanos);
                        });
                        busy(cs_nanos); // think, same length as the CS
                    }
                })
            })
            .collect();
        let t0 = Instant::now();
        barrier.wait();
        for w in workers {
            let _ = w.join();
        }
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });
    (threads as u64 * u64::from(iters)) as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn busy(nanos: u64) {
    let end = Instant::now() + Duration::from_nanos(nanos);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

fn run_throughput(scale: Scale, errors: &mut Vec<String>) -> Option<Throughput> {
    let (threads, iters, cs_nanos) = match scale {
        Scale::Quick => (4, 2_000, 3_000),
        Scale::Full => (4, 20_000, 3_000),
    };
    let cell = catch_unwind(AssertUnwindSafe(|| {
        let best = |open: bool| {
            (0..REPEATS)
                .map(|_| measured_ops_per_sec(open, threads, iters, cs_nanos))
                .fold(0.0f64, f64::max)
        };
        let closed = best(false);
        let open = best(true);
        (closed, open)
    }));
    match cell {
        Ok((closed, open)) => {
            let ratio = open / closed.max(1e-9);
            println!(
                "throughput: closed {closed:.0} ops/s, open {open:.0} ops/s, ratio {ratio:.2}"
            );
            Some(Throughput {
                threads,
                iters_per_thread: iters,
                cs_nanos,
                closed_ops_per_sec: closed,
                open_ops_per_sec: open,
                open_over_closed: ratio,
            })
        }
        Err(e) => {
            errors.push(format!("throughput: {}", panic_msg(e)));
            None
        }
    }
}

// ------------------------------------------------------------- summary

fn summarize(rows: &[SoakRow], throughput: &Option<Throughput>) -> serde_json::Value {
    let mut dwell: BTreeMap<String, u64> = BTreeMap::new();
    for row in rows {
        for (state, polls) in &row.state_dwell_polls {
            *dwell.entry(state.clone()).or_insert(0) += polls;
        }
    }
    let every_stall_quarantined = !rows.is_empty()
        && rows.iter().all(|r| {
            !r.episodes.is_empty()
                && r.episodes
                    .iter()
                    .all(|e| e.polls_to_quarantine.is_some_and(|p| p <= 2))
        });
    let ratio = throughput.as_ref().map_or(0.0, |t| t.open_over_closed);
    let quarantine_polls_max = rows.iter().filter_map(|r| r.polls_to_quarantine_max).max();
    let heal_polls_max = rows.iter().map(|r| r.heal_polls).max();
    let all_healed = !rows.is_empty() && rows.iter().all(|r| r.all_healed);
    let chains_legal = !rows.is_empty() && rows.iter().all(|r| r.chain_legal);
    let conservation = !rows.is_empty() && rows.iter().all(|r| r.conservation_ok);
    let quiescent = !rows.is_empty() && rows.iter().all(|r| r.quiescent);
    let no_command_errors = rows.iter().all(|r| r.commands_err == 0);
    let ratio_ok = ratio >= 0.5;
    json!({
        "state_dwell_polls": dwell,
        "time_to_quarantine_polls_max": quarantine_polls_max,
        "time_to_heal_polls_max": heal_polls_max,
        "throughput_open_over_closed": ratio,
        "verdicts": {
            "every_stall_quarantined_within_two_polls": every_stall_quarantined,
            "every_breaker_healed_after_storm": all_healed,
            "no_stuck_open": all_healed,
            "chains_legal": chains_legal,
            "conservation": conservation,
            "zero_lost_waiters": quiescent,
            "zero_command_errors": no_command_errors,
            "open_throughput_ge_half_closed": ratio_ok,
        },
    })
}

/// Render a caught panic payload as a message.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
