//! Shared infrastructure for the experiment harness: output locations,
//! paper-vs-measured reporting, and scale selection.
//!
//! Every bench target under `benches/` regenerates one table or figure
//! of the paper. Run them all with `cargo bench`; results are printed in
//! paper-style rows and persisted as JSON/CSV under
//! `target/experiments/`.

#![deny(unsafe_code)]

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// The workspace root, found by walking up from `CARGO_MANIFEST_DIR`
/// (or the current directory) to the first ancestor holding a
/// `Cargo.lock`. Unlike a fixed `"../.."` hop this keeps working if a
/// crate moves or the helper is reused from another crate's benches.
pub fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    find_workspace_root(&start).unwrap_or(start)
}

/// The nearest ancestor of `start` (inclusive) containing `Cargo.lock`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .map(Path::to_path_buf)
}

/// Where experiment artifacts are written.
pub fn out_dir() -> PathBuf {
    // Resolve the *workspace* target dir: benches run with the package
    // directory as CWD, so a relative "target" would land inside the
    // package.
    let base = match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) => PathBuf::from(t),
        Err(_) => workspace_root().join("target"),
    };
    let dir = base.join("experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Persist a CSV artifact; returns its path.
pub fn write_csv(name: &str, content: &str) -> PathBuf {
    let path = out_dir().join(format!("{name}.csv"));
    std::fs::write(&path, content).expect("write csv");
    path
}

/// Persist a JSON artifact; returns its path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = out_dir().join(format!("{name}.json"));
    let f = std::fs::File::create(&path).expect("create json");
    let mut w = std::io::BufWriter::new(f);
    serde_json::to_writer_pretty(&mut w, value).expect("serialize");
    writeln!(w).ok();
    path
}

/// Experiment scale, selected with `EXPERIMENT_SCALE=full` (default:
/// `quick`, sized so the whole suite finishes in a few minutes on a
/// laptop-class machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced problem sizes for CI / quick runs.
    Quick,
    /// Paper-scale runs (32-city TSP, full sweeps).
    Full,
}

/// Read the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("EXPERIMENT_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Busy-wait (sleeping through long gaps) until `sched_nanos` past
/// `epoch` — the open-loop pacing helper shared by the scenario
/// runners. Returns immediately if the moment already passed (the
/// open-loop contract: late is late, never rescheduled).
pub fn wait_until_nanos(epoch: std::time::Instant, sched_nanos: u64) {
    loop {
        let now = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if now >= sched_nanos {
            return;
        }
        let gap = sched_nanos - now;
        if gap > 1_000_000 {
            std::thread::sleep(std::time::Duration::from_nanos(gap / 2));
        } else {
            // Yield, don't spin: scenario clients typically outnumber
            // host cores, and a spinning waiter would hold the core
            // for its whole quantum while the threads doing real work
            // queue behind it — the measured latency would then be the
            // scheduler's time-slice, not the system under test.
            std::thread::yield_now();
        }
    }
}

/// One row of a paper-vs-measured comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (e.g. `spin-lock` or `centralized/blocking`).
    pub label: String,
    /// The paper's reported value (unit per table).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Row {
    /// Construct a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64) -> Row {
        Row {
            label: label.into(),
            paper,
            measured,
        }
    }
}

/// Print a table header.
pub fn print_header(title: &str, unit: &str) {
    println!();
    println!("== {title} ==");
    println!("{:<32} {:>14} {:>14}", "", format!("paper ({unit})"), format!("measured ({unit})"));
}

/// Print comparison rows and a shape verdict: the orderings of the
/// paper column and the measured column are compared.
pub fn print_rows_with_verdict(rows: &[Row]) {
    for r in rows {
        println!("{:<32} {:>14.2} {:>14.2}", r.label, r.paper, r.measured);
    }
    let verdict = if same_ordering(rows) { "PRESERVED" } else { "DIFFERS" };
    println!("   ordering of rows: {verdict}");
}

/// Whether the measured column orders the rows the same way the paper
/// column does.
pub fn same_ordering(rows: &[Row]) -> bool {
    let mut by_paper: Vec<usize> = (0..rows.len()).collect();
    by_paper.sort_by(|&a, &b| rows[a].paper.total_cmp(&rows[b].paper));
    let mut by_measured: Vec<usize> = (0..rows.len()).collect();
    by_measured.sort_by(|&a, &b| rows[a].measured.total_cmp(&rows[b].measured));
    by_paper == by_measured
}

/// Percentage improvement of `new` over `old` (paper's Tables 1–3
/// metric).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    (old - new) / old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_check_detects_inversions() {
        let ok = vec![
            Row::new("a", 1.0, 10.0),
            Row::new("b", 2.0, 30.0),
            Row::new("c", 3.0, 40.0),
        ];
        assert!(same_ordering(&ok));
        let bad = vec![Row::new("a", 1.0, 30.0), Row::new("b", 2.0, 10.0)];
        assert!(!same_ordering(&bad));
    }

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Table 1: 3207 -> 2636 is reported as 17.8%.
        let pct = improvement_pct(3207.0, 2636.0);
        assert!((pct - 17.8).abs() < 0.1, "{pct}");
    }

    #[test]
    fn scale_defaults_to_quick() {
        // (Environment-dependent test kept tolerant: only the default
        // path is asserted when the variable is unset.)
        if std::env::var("EXPERIMENT_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }

    #[test]
    fn workspace_root_is_found_by_walking_up() {
        // From this crate's manifest dir, the root is wherever
        // Cargo.lock lives — not a hard-coded number of `..` hops.
        let root = workspace_root();
        assert!(root.join("Cargo.lock").is_file());
        assert!(root.join("crates").is_dir());
        // The walk also works from deeper inside the workspace...
        let deep = root.join("crates/bench/src");
        assert_eq!(find_workspace_root(&deep), Some(root));
        // ...and reports failure outside of any workspace.
        assert_eq!(find_workspace_root(Path::new("/dev")), None);
    }

    #[test]
    fn artifacts_land_in_out_dir() {
        let p = write_csv("selftest", "a,b\n1,2\n");
        assert!(p.exists());
        let q = write_json("selftest", &vec![Row::new("x", 1.0, 2.0)]);
        assert!(q.exists());
    }
}
