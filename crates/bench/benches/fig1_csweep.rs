//! Figure 1: application execution time vs critical-section length, for
//! pure spin, pure blocking, and combined(1)/(10)/(50) locks, with more
//! runnable threads than processors.
//!
//! Shape targets (the figure's qualitative content):
//! * for short critical sections, spinning-style locks beat blocking;
//! * for long critical sections, blocking beats spinning (a spinning
//!   waiter starves the other threads sharing its processor);
//! * combined(10) beats combined(1) over a range of section lengths, and
//!   combined(50) is worse than combined(10) on that same range — i.e.
//!   the optimal initial spin count is workload-dependent, the paper's
//!   motivation for adaptive locks.

use bench::{write_csv, write_json, Scale};
use butterfly_sim::Duration;
use workloads::{figure1_locks, run_sweep, SweepConfig};

fn main() {
    let cfg = match bench::scale() {
        Scale::Full => SweepConfig {
            processors: 4,
            threads: 8,
            iters: 60,
            ..SweepConfig::default()
        },
        Scale::Quick => SweepConfig {
            processors: 4,
            threads: 8,
            iters: 25,
            ..SweepConfig::default()
        },
    };
    let cs_lengths: Vec<Duration> = [5u64, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000]
        .into_iter()
        .map(Duration::micros)
        .collect();

    println!(
        "Figure 1 sweep: {} threads on {} processors, {} iterations/thread",
        cfg.threads, cfg.processors, cfg.iters
    );
    let points = run_sweep(&cfg, &figure1_locks(), &cs_lengths);

    // Print as a matrix: rows = cs length, columns = lock.
    let locks: Vec<String> = figure1_locks().iter().map(|s| s.label()).collect();
    print!("\n{:>10}", "cs (us)");
    for l in &locks {
        print!(" {l:>14}");
    }
    println!("  (total execution time, ms)");
    for &cs in &cs_lengths {
        print!("{:>10}", cs.as_micros_f64());
        for l in &locks {
            let p = points
                .iter()
                .find(|p| p.lock == *l && p.cs_nanos == cs.as_nanos())
                .unwrap();
            print!(" {:>14.2}", p.total_nanos as f64 / 1e6);
        }
        println!();
    }

    // Figure-level shape checks.
    let total = |lock: &str, cs_us: u64| {
        points
            .iter()
            .find(|p| p.lock == lock && p.cs_nanos == cs_us * 1_000)
            .unwrap()
            .total_nanos
    };
    let short = 5;
    let long = 5_000;
    println!();
    println!(
        "short sections ({short}us): spin {:.2}ms vs blocking {:.2}ms -> {}",
        total("spin", short) as f64 / 1e6,
        total("blocking", short) as f64 / 1e6,
        if total("spin", short) < total("blocking", short) {
            "spin wins (as in the paper)"
        } else {
            "UNEXPECTED"
        }
    );
    println!(
        "long sections ({long}us): spin {:.2}ms vs blocking {:.2}ms -> {}",
        total("spin", long) as f64 / 1e6,
        total("blocking", long) as f64 / 1e6,
        if total("blocking", long) < total("spin", long) {
            "blocking wins (as in the paper)"
        } else {
            "UNEXPECTED"
        }
    );
    // The paper's combined-lock observation: "the lock spinning 10 times
    // performs better than that spinning once for certain lengths of
    // critical sections [and] the lock spinning 50 times performs worse
    // than the lock spinning 10 times for critical sections of the same
    // length" — i.e. there exist section lengths where combined(10)
    // beats both neighbours.
    let sweet_spots: Vec<u64> = [5u64, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000]
        .into_iter()
        .filter(|&cs| {
            total("combined(10)", cs) < total("combined(1)", cs)
                && total("combined(10)", cs) < total("combined(50)", cs)
        })
        .collect();
    println!(
        "combined(10) beats BOTH combined(1) and combined(50) at cs = {sweet_spots:?} us {}",
        if sweet_spots.is_empty() {
            "(UNEXPECTED: no sweet spot found)"
        } else {
            "(the paper's combined-lock observation)"
        }
    );
    // And the optimum moves with the section length (no single winner).
    let winners: std::collections::BTreeSet<&str> = [50u64, 200, 1_000]
        .into_iter()
        .map(|cs| {
            ["combined(1)", "combined(10)", "combined(50)"]
                .into_iter()
                .min_by(|a, b| total(a, cs).cmp(&total(b, cs)))
                .unwrap()
        })
        .collect();
    println!(
        "best combined lock varies across lengths: {winners:?} -> the optimal spin count is \
         workload-dependent (the paper's case for adaptivity)"
    );

    // CSV for plotting.
    let mut csv = String::from("lock,cs_us,total_ms\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{}\n",
            p.lock,
            p.cs_nanos as f64 / 1e3,
            p.total_nanos as f64 / 1e6
        ));
    }
    let cpath = write_csv("fig1_csweep", &csv);
    let jpath = write_json("fig1_csweep", &points);
    println!("\nwritten to {} and {}", cpath.display(), jpath.display());
}
