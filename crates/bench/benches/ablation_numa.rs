//! NUMA ablation: how much of the paper's centralized-vs-distributed gap
//! is due to the machine being NUMA?
//!
//! The same TSP workload runs under four memory models:
//! * **UMA** — every reference costs the local latency;
//! * **NUMA (flat)** — the default GP1000-shaped local/remote split;
//! * **NUMA + switch topology** — per-stage latency of the multistage
//!   butterfly network;
//! * **NUMA + module contention** — references queue at busy memory
//!   modules (hot-spot behaviour).
//!
//! Expected shape: under UMA the centralized implementation closes most
//! of its gap to the distributed one; each added NUMA effect widens it
//! again. This backs the paper's premise that shared-abstraction
//! *placement* (and hence lock adaptivity) matters because the machine
//! is NUMA.

use bench::{write_json, Scale};
use butterfly_sim::{self as sim, Duration, MemoryParams, SimConfig, Topology};
use serde::Serialize;
use tsp_app::{solve_parallel, LockImpl, TspConfig, TspInstance, Variant};

#[derive(Serialize)]
struct NumaRecord {
    memory_model: &'static str,
    centralized_ms: f64,
    distributed_ms: f64,
    gap: f64,
}

fn main() {
    let (cities, searchers, ns_per_cell) = match bench::scale() {
        Scale::Full => (24usize, 10usize, 3600u64),
        Scale::Quick => (16, 10, 3600),
    };
    let inst = TspInstance::random_euclidean(cities, 1000, 1993);
    println!("NUMA ablation: {cities}-city TSP, {searchers} searchers, blocking locks\n");

    let models: Vec<(&'static str, SimConfig)> = vec![
        (
            "UMA",
            SimConfig {
                processors: searchers,
                memory: MemoryParams::uniform(Duration::nanos(600)),
                ..SimConfig::default()
            },
        ),
        (
            "NUMA flat",
            SimConfig {
                processors: searchers,
                ..SimConfig::default()
            },
        ),
        (
            "NUMA + butterfly switch",
            SimConfig {
                processors: searchers,
                topology: Topology::gp1000(32),
                ..SimConfig::default()
            },
        ),
        (
            "NUMA + module contention",
            SimConfig {
                processors: searchers,
                module_occupancy: Duration::nanos(400),
                ..SimConfig::default()
            },
        ),
    ];

    let mut records = Vec::new();
    println!(
        "{:<26} {:>16} {:>16} {:>8}",
        "memory model", "centralized ms", "distributed ms", "gap"
    );
    for (name, sim_cfg) in models {
        let mut ms = Vec::new();
        for variant in [Variant::Centralized, Variant::Distributed] {
            let inst2 = inst.clone();
            let cfg = TspConfig {
                searchers,
                lock_impl: LockImpl::Blocking,
                expand_ns_per_cell: ns_per_cell,
                ..TspConfig::default()
            };
            let (res, _) = sim::run(sim_cfg.clone(), move || {
                solve_parallel(&inst2, variant, cfg)
            })
            .unwrap();
            ms.push(res.elapsed.as_millis_f64());
        }
        let gap = ms[0] / ms[1];
        println!("{:<26} {:>16.2} {:>16.2} {:>7.2}x", name, ms[0], ms[1], gap);
        records.push(NumaRecord {
            memory_model: name,
            centralized_ms: ms[0],
            distributed_ms: ms[1],
            gap,
        });
    }

    let uma_gap = records[0].gap;
    let worst_gap = records
        .iter()
        .skip(1)
        .map(|r| r.gap)
        .fold(f64::MIN, f64::max);
    println!(
        "\ncentralized/distributed gap: {uma_gap:.2}x under UMA vs up to {worst_gap:.2}x with NUMA \
         effects -> {}",
        if worst_gap > uma_gap {
            "NUMA-ness drives the distributed advantage, as the paper's premise assumes"
        } else {
            "UNEXPECTED: NUMA effects did not widen the gap"
        }
    );

    let path = write_json("ablation_numa", &records);
    println!("\nrecords written to {}", path.display());
}
