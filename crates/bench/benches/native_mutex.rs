//! Criterion benchmarks of the *native* adaptive mutex against standard
//! alternatives, in real time on real threads: `AdaptiveMutex` vs
//! `std::sync::Mutex` vs `parking_lot::Mutex` vs a plain spin loop.
//!
//! Two regimes are measured: uncontended lock/unlock (where the adaptive
//! mutex's single-CAS fast path should be level with the others) and a
//! multi-thread increment hammer (where the feedback loop's chosen
//! configuration matters). Absolute numbers depend on host core count —
//! on a single-core host, spinning regimes degrade exactly as the paper
//! predicts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use adaptive_native::AdaptiveMutex;
use criterion::{criterion_group, criterion_main, Criterion};

fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    let adaptive = AdaptiveMutex::new(0u64);
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            *adaptive.lock() += 1;
        })
    });
    let std_mutex = StdMutex::new(0u64);
    g.bench_function("std", |b| {
        b.iter(|| {
            *std_mutex.lock().unwrap() += 1;
        })
    });
    let pl = parking_lot::Mutex::new(0u64);
    g.bench_function("parking_lot", |b| {
        b.iter(|| {
            *pl.lock() += 1;
        })
    });
    let spin = AtomicBool::new(false);
    let mut value = 0u64;
    g.bench_function("raw_spin", |b| {
        b.iter(|| {
            while spin.swap(true, Ordering::Acquire) {
                std::hint::spin_loop();
            }
            value += 1;
            spin.store(false, Ordering::Release);
        })
    });
    let _ = value;
    g.finish();
}

fn contended(c: &mut Criterion) {
    let threads = 4usize;
    let iters_per_thread = 200u64;

    fn hammer<L, F, G>(make_guard: F, unlock_drop: G, lock: Arc<L>, threads: usize, n: u64)
    where
        L: Send + Sync + 'static,
        F: Fn(&L) + Send + Sync + Copy + 'static,
        G: Fn() + Copy,
    {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..n {
                        make_guard(&lock);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        unlock_drop();
    }

    let mut g = c.benchmark_group("contended_counter");
    g.sample_size(10);
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            let m = Arc::new(AdaptiveMutex::new(0u64));
            hammer(
                |l: &AdaptiveMutex<u64>| {
                    *l.lock() += 1;
                },
                || {},
                m,
                threads,
                iters_per_thread,
            );
        })
    });
    g.bench_function("std", |b| {
        b.iter(|| {
            let m = Arc::new(StdMutex::new(0u64));
            hammer(
                |l: &StdMutex<u64>| {
                    *l.lock().unwrap() += 1;
                },
                || {},
                m,
                threads,
                iters_per_thread,
            );
        })
    });
    g.bench_function("parking_lot", |b| {
        b.iter(|| {
            let m = Arc::new(parking_lot::Mutex::new(0u64));
            hammer(
                |l: &parking_lot::Mutex<u64>| {
                    *l.lock() += 1;
                },
                || {},
                m,
                threads,
                iters_per_thread,
            );
        })
    });
    g.finish();
}

criterion_group!(benches, uncontended, contended);
criterion_main!(benches);
