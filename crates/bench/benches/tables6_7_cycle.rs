//! Tables 6 and 7: cost of a successive Unlock-then-Lock (the "locking
//! cycle") on an already locked lock — the idle gap between a release
//! and the waiting thread's acquisition.
//!
//! Table 6 covers the static locks; Table 7 the adaptive lock explicitly
//! configured as spin and as blocking (its cycle must span the two
//! extremes). Shape targets: spin < spin-with-backoff < blocking;
//! remote > local; adaptive-as-spin near the spin row, adaptive-as-
//! blocking near (or above) the blocking row.

use adaptive_locks::{
    BlockingLock, LockCosts, ReconfigurableLock, SchedKind, SpinBackoffLock, SpinLock,
    WaitingPolicy,
};
use bench::{print_header, print_rows_with_verdict, write_json, Row};
use butterfly_sim::{Duration, NodeId};
use serde::Serialize;
use workloads::measure_cycle_on;

#[derive(Serialize)]
struct CycleRecord {
    lock: String,
    local_us: f64,
    remote_us: f64,
}

fn main() {
    let rounds = 24;
    let local = NodeId(0);
    let remote = NodeId(2);

    let spin_l = measure_cycle_on(local, SpinLock::new_on, rounds);
    let spin_r = measure_cycle_on(remote, SpinLock::new_on, rounds);
    let back_l = measure_cycle_on(local, SpinBackoffLock::new_on, rounds);
    let back_r = measure_cycle_on(remote, SpinBackoffLock::new_on, rounds);
    let block_l = measure_cycle_on(local, BlockingLock::new_on, rounds);
    let block_r = measure_cycle_on(remote, BlockingLock::new_on, rounds);

    let adaptive = |policy: WaitingPolicy| {
        move |n: NodeId| {
            ReconfigurableLock::with_parts("adaptive", n, policy, SchedKind::Fcfs, LockCosts::default())
        }
    };
    let aspin_l = measure_cycle_on(local, adaptive(WaitingPolicy::pure_spin()), rounds);
    let aspin_r = measure_cycle_on(remote, adaptive(WaitingPolicy::pure_spin()), rounds);
    let ablock_l = measure_cycle_on(local, adaptive(WaitingPolicy::pure_blocking()), rounds);
    let ablock_r = measure_cycle_on(remote, adaptive(WaitingPolicy::pure_blocking()), rounds);

    let records = vec![
        CycleRecord { lock: "spin".into(), local_us: spin_l.as_micros_f64(), remote_us: spin_r.as_micros_f64() },
        CycleRecord { lock: "spin-backoff".into(), local_us: back_l.as_micros_f64(), remote_us: back_r.as_micros_f64() },
        CycleRecord { lock: "blocking".into(), local_us: block_l.as_micros_f64(), remote_us: block_r.as_micros_f64() },
        CycleRecord { lock: "adaptive(spin)".into(), local_us: aspin_l.as_micros_f64(), remote_us: aspin_r.as_micros_f64() },
        CycleRecord { lock: "adaptive(blocking)".into(), local_us: ablock_l.as_micros_f64(), remote_us: ablock_r.as_micros_f64() },
    ];

    print_header("Table 6: locking cycle, static locks (local)", "us");
    print_rows_with_verdict(&[
        Row::new("spin", 45.13, spin_l.as_micros_f64()),
        Row::new("spin-with-backoff", 320.36, back_l.as_micros_f64()),
        Row::new("blocking", 510.55, block_l.as_micros_f64()),
    ]);
    print_header("Table 6: locking cycle, static locks (remote)", "us");
    print_rows_with_verdict(&[
        Row::new("spin", 47.89, spin_r.as_micros_f64()),
        Row::new("spin-with-backoff", 356.95, back_r.as_micros_f64()),
        Row::new("blocking", 563.79, block_r.as_micros_f64()),
    ]);

    print_header("Table 7: locking cycle, adaptive lock (local)", "us");
    print_rows_with_verdict(&[
        Row::new("configured as spin", 90.21, aspin_l.as_micros_f64()),
        Row::new("configured as blocking", 565.16, ablock_l.as_micros_f64()),
    ]);
    print_header("Table 7: locking cycle, adaptive lock (remote)", "us");
    print_rows_with_verdict(&[
        Row::new("configured as spin", 101.38, aspin_r.as_micros_f64()),
        Row::new("configured as blocking", 625.63, ablock_r.as_micros_f64()),
    ]);

    // Cross-table shape checks.
    assert!(spin_l < block_l, "spin cycle must undercut blocking cycle");
    assert!(aspin_l < ablock_l, "adaptive-as-spin must undercut adaptive-as-blocking");
    println!(
        "\nadaptive cycle spans the static extremes: spin {:.1}us <= adaptive(spin) {:.1}us, \
         adaptive(blocking) {:.1}us vs blocking {:.1}us",
        spin_l.as_micros_f64(),
        aspin_l.as_micros_f64(),
        ablock_l.as_micros_f64(),
        block_l.as_micros_f64()
    );
    let _ = Duration::ZERO;

    let path = write_json("tables6_7_cycle", &records);
    println!("\nrecords written to {}", path.display());
}
