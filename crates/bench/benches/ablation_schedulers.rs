//! Ablations beyond the paper's own tables, backing the claims its
//! Section 2 recalls from [MS93]:
//!
//! 1. **Lock schedulers on a client-server pattern** — priority and
//!    handoff scheduling beat FCFS for the server's lock latency.
//! 2. **Phased workloads** — the adaptive lock tracks a pattern that
//!    alternates between no-contention and heavy-contention phases, and
//!    stays competitive with the best static configuration in each.
//! 3. **Queue-lock baselines** — ticket and MCS locks vs the paper's
//!    lock family under uniform contention (design-space context).

use std::sync::Arc;

use adaptive_locks::{with_lock, Lock};
use bench::{print_header, print_rows_with_verdict, write_json, Row};
use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};
use cthreads::fork_join_all;
use serde::Serialize;
use workloads::{
    compare_phased, run_all_schedulers, ClientServerConfig, LockSpec, PhasedConfig,
};

#[derive(Serialize)]
struct AblationRecord {
    experiment: &'static str,
    label: String,
    value: f64,
}

fn uniform_contention(spec: LockSpec, threads: usize, iters: u32) -> Duration {
    let (elapsed, _) = sim::run(SimConfig::butterfly(threads), move || {
        let lock: Arc<dyn Lock> = spec.build(ctx::current_node());
        let t0 = ctx::now();
        let procs: Vec<ProcId> = (0..threads).map(ProcId).collect();
        fork_join_all(&procs, "w", |_| {
            let lock = Arc::clone(&lock);
            move || {
                for _ in 0..iters {
                    with_lock(lock.as_ref(), || ctx::advance(Duration::micros(30)));
                    ctx::advance(Duration::micros(60));
                }
            }
        });
        ctx::now().since(t0)
    })
    .unwrap();
    elapsed
}

fn main() {
    let mut records = Vec::new();

    // 1. Scheduler comparison on client-server.
    let cs_cfg = ClientServerConfig::default();
    let cs = run_all_schedulers(&cs_cfg);
    print_header("Ablation: lock schedulers, client-server pattern", "us");
    // [MS93] reports priority best / FCFS worst; encode that ordering as
    // the "paper" column (rank only).
    let rows: Vec<Row> = cs
        .iter()
        .map(|r| {
            let paper_rank = match r.scheduler.as_str() {
                "fcfs" => 3.0,
                "handoff" => 2.0,
                _ => 1.0,
            };
            Row::new(
                format!("{} (mean server wait)", r.scheduler),
                paper_rank,
                r.mean_server_wait_nanos as f64 / 1e3,
            )
        })
        .collect();
    print_rows_with_verdict(&rows);
    for r in &cs {
        records.push(AblationRecord {
            experiment: "client-server",
            label: r.scheduler.clone(),
            value: r.mean_server_wait_nanos as f64 / 1e3,
        });
    }

    // 2. Phased adaptation.
    let phased = compare_phased(&PhasedConfig::default());
    print_header("Ablation: phased workload (solo/storm alternation)", "ms");
    let best_static = phased[..2]
        .iter()
        .map(|r| r.total_nanos)
        .min()
        .unwrap() as f64;
    let rows: Vec<Row> = phased
        .iter()
        .map(|r| Row::new(r.lock.clone(), 0.0, r.total_nanos as f64 / 1e6))
        .collect();
    for r in &rows {
        println!("{:<32} {:>14} {:>14.2}", r.label, "-", r.measured);
    }
    let adaptive = phased[2].total_nanos as f64;
    println!(
        "   adaptive within {:.0}% of best static ({} reconfigurations)",
        (adaptive / best_static - 1.0) * 100.0,
        phased[2].reconfigurations
    );
    for r in &phased {
        records.push(AblationRecord {
            experiment: "phased",
            label: r.lock.clone(),
            value: r.total_nanos as f64 / 1e6,
        });
    }

    // 3. Queue-lock baselines under uniform contention.
    print_header("Ablation: uniform contention, full lock family", "ms");
    for spec in [
        LockSpec::Spin,
        LockSpec::SpinBackoff,
        LockSpec::Ticket,
        LockSpec::Mcs,
        LockSpec::Blocking,
        LockSpec::Combined(10),
        LockSpec::Adaptive { threshold: 6, n: 10 },
    ] {
        let t = uniform_contention(spec, 6, 40);
        println!("{:<32} {:>14} {:>14.2}", spec.label(), "-", t.as_millis_f64());
        records.push(AblationRecord {
            experiment: "uniform-contention",
            label: spec.label(),
            value: t.as_millis_f64(),
        });
    }

    // 4. Scheduler *adaptation* (the paper's stated future work):
    //    an adaptive lock driven by SchedulerAdapt installs the priority
    //    scheduler when queues stay deep and reverts to FCFS when they
    //    drain; measure a deep-contention burst's high-priority waiter
    //    latency with and without it.
    print_header("Ablation: closely-coupled scheduler adaptation", "us");
    let (static_us, adaptive_us, switched) = scheduler_adaptation_run();
    println!("{:<32} {:>14} {:>14.1}", "static FCFS, vip wait", "-", static_us);
    println!("{:<32} {:>14} {:>14.1}", "SchedulerAdapt, vip wait", "-", adaptive_us);
    println!(
        "   scheduler was reconfigured at runtime: {switched}; vip latency {}",
        if adaptive_us < static_us {
            "improved, as the future-work hypothesis predicts"
        } else {
            "did not improve (burst too short for the policy)"
        }
    );
    records.push(AblationRecord {
        experiment: "scheduler-adaptation",
        label: "fcfs-static".into(),
        value: static_us,
    });
    records.push(AblationRecord {
        experiment: "scheduler-adaptation",
        label: "scheduler-adapt".into(),
        value: adaptive_us,
    });

    let path = write_json("ablation_schedulers", &records);
    println!("\nrecords written to {}", path.display());
}

/// Deep-contention burst with one high-priority ("vip") thread among
/// uniform workers; returns (static FCFS vip wait, SchedulerAdapt vip
/// wait, whether the adaptive run actually switched schedulers) in µs.
fn scheduler_adaptation_run() -> (f64, f64, bool) {
    use adaptive_locks::{priority, AdaptiveLock, SchedKind, SchedulerAdapt, WaitingPolicy};

    fn run(adaptive: bool) -> (f64, bool) {
        let ((wait_us, switched), _) = sim::run(SimConfig::butterfly(8), move || {
            let lock = Arc::new(if adaptive {
                AdaptiveLock::with_parts(
                    ctx::current_node(),
                    WaitingPolicy::pure_blocking(),
                    SchedKind::Fcfs,
                    adaptive_locks::LockCosts::default(),
                    Box::new(SchedulerAdapt::new(3, 2)),
                    1,
                )
            } else {
                AdaptiveLock::with_parts(
                    ctx::current_node(),
                    WaitingPolicy::pure_blocking(),
                    SchedKind::Fcfs,
                    adaptive_locks::LockCosts::default(),
                    Box::new(adaptive_core::FnPolicy::new("static", |_| {
                        None::<adaptive_locks::LockDecision>
                    })),
                    1,
                )
            });
            // Seven uniform workers keep the queue deep.
            let workers: Vec<_> = (1..8)
                .map(|p| {
                    let lock = Arc::clone(&lock);
                    cthreads::fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..30 {
                            with_lock(lock.as_ref(), || ctx::advance(Duration::micros(300)));
                        }
                    })
                })
                .collect();
            // Let the queue build and the policy observe it.
            ctx::advance(Duration::millis(3));
            // The vip thread measures its acquisition latency.
            priority::set(10);
            let mut total = 0u64;
            let samples = 6;
            for _ in 0..samples {
                let t0 = ctx::now();
                lock.lock();
                total += ctx::now().since(t0).as_nanos();
                ctx::advance(Duration::micros(50));
                lock.unlock();
                ctx::advance(Duration::micros(200));
            }
            priority::set(0);
            for w in workers {
                w.join();
            }
            let switched = lock
                .inner()
                .transition_log()
                .transitions()
                .iter()
                .any(|t| t.to.starts_with("priority{"));
            (total as f64 / samples as f64 / 1e3, switched)
        })
        .unwrap();
        (wait_us, switched)
    }

    let (static_us, _) = run(false);
    let (adaptive_us, switched) = run(true);
    (static_us, adaptive_us, switched)
}
