//! Tables 4 and 5: latencies of uncontended Lock and Unlock operations
//! for each lock implementation, with the lock placed in local vs
//! remote memory.
//!
//! Shape targets: `atomior` is the cheapest row; the spin locks cost a
//! little more (package overhead on top of one RMW); the blocking lock
//! costs the most (always registers through its guard; release interacts
//! with the thread scheduler); the adaptive lock's Lock op is comparable
//! to a spin lock (single-CAS fast path) while its Unlock sits between
//! spin and blocking (amortized monitoring); every remote column exceeds
//! its local column.

use bench::{print_header, print_rows_with_verdict, write_json, Row};
use butterfly_sim::NodeId;
use serde::Serialize;
use workloads::{atomior_cost, lock_unlock_cost, LockSpec};

#[derive(Serialize)]
struct CostRecord {
    lock: String,
    local_lock_us: f64,
    remote_lock_us: f64,
    local_unlock_us: f64,
    remote_unlock_us: f64,
}

fn main() {
    let iters = 64;
    let local = NodeId(0);
    let remote = NodeId(2);

    let specs = [
        LockSpec::Spin,
        LockSpec::SpinBackoff,
        LockSpec::Blocking,
        LockSpec::Adaptive { threshold: 3, n: 5 },
        // Extra baselines beyond the paper's rows:
        LockSpec::Ticket,
        LockSpec::Mcs,
    ];

    let atom_l = atomior_cost(local, iters);
    let atom_r = atomior_cost(remote, iters);

    let mut records = vec![CostRecord {
        lock: "atomior".into(),
        local_lock_us: atom_l.as_micros_f64(),
        remote_lock_us: atom_r.as_micros_f64(),
        local_unlock_us: 0.0,
        remote_unlock_us: 0.0,
    }];
    for spec in specs {
        let (ll, lu) = lock_unlock_cost(spec, local, iters);
        let (rl, ru) = lock_unlock_cost(spec, remote, iters);
        records.push(CostRecord {
            lock: spec.label(),
            local_lock_us: ll.as_micros_f64(),
            remote_lock_us: rl.as_micros_f64(),
            local_unlock_us: lu.as_micros_f64(),
            remote_unlock_us: ru.as_micros_f64(),
        });
    }

    // Table 4 (Lock op), paper values in microseconds.
    let paper_lock: &[(&str, f64, f64)] = &[
        ("atomior", 30.73, 33.86),
        ("spin", 40.79, 41.10),
        ("spin-backoff", 40.79, 41.15),
        ("blocking", 88.59, 91.73),
        ("adaptive", 40.79, 41.17),
    ];
    print_header("Table 4: cost of the Lock operation (local)", "us");
    let rows: Vec<Row> = paper_lock
        .iter()
        .map(|&(name, p, _)| {
            let m = records.iter().find(|r| r.lock == name).unwrap();
            Row::new(name, p, m.local_lock_us)
        })
        .collect();
    print_rows_with_verdict(&rows);
    print_header("Table 4: cost of the Lock operation (remote)", "us");
    let rows: Vec<Row> = paper_lock
        .iter()
        .map(|&(name, _, p)| {
            let m = records.iter().find(|r| r.lock == name).unwrap();
            Row::new(name, p, m.remote_lock_us)
        })
        .collect();
    print_rows_with_verdict(&rows);

    // Table 5 (Unlock op), paper values in microseconds.
    let paper_unlock: &[(&str, f64, f64)] = &[
        ("spin", 4.99, 7.23),
        ("spin-backoff", 5.01, 7.25),
        ("adaptive", 50.07, 61.69),
        ("blocking", 62.32, 73.45),
    ];
    print_header("Table 5: cost of the Unlock operation (local)", "us");
    let rows: Vec<Row> = paper_unlock
        .iter()
        .map(|&(name, p, _)| {
            let m = records.iter().find(|r| r.lock == name).unwrap();
            Row::new(name, p, m.local_unlock_us)
        })
        .collect();
    print_rows_with_verdict(&rows);
    print_header("Table 5: cost of the Unlock operation (remote)", "us");
    let rows: Vec<Row> = paper_unlock
        .iter()
        .map(|&(name, _, p)| {
            let m = records.iter().find(|r| r.lock == name).unwrap();
            Row::new(name, p, m.remote_unlock_us)
        })
        .collect();
    print_rows_with_verdict(&rows);

    println!("\nextra baselines (not in the paper):");
    for name in ["ticket", "mcs"] {
        let m = records.iter().find(|r| r.lock == name).unwrap();
        println!(
            "  {:<14} lock {:>7.2}/{:<7.2} us  unlock {:>6.2}/{:<6.2} us (local/remote)",
            m.lock, m.local_lock_us, m.remote_lock_us, m.local_unlock_us, m.remote_unlock_us
        );
    }

    let path = write_json("tables4_5_lock_costs", &records);
    println!("\nrecords written to {}", path.display());
}
