//! Tables 1–3: TSP execution time, blocking vs adaptive locks, for the
//! centralized, distributed, and distributed+load-balancing
//! implementations, plus the sequential baseline (Table 1's first
//! column).
//!
//! Paper setup: 32-city instance, 10 processors, one searcher per
//! processor, on a BBN Butterfly GP1000. Here: a seeded random Euclidean
//! instance of 32 cities (`EXPERIMENT_SCALE=full`) or 18 cities
//! (default quick scale) on the simulated Butterfly.
//!
//! Shape targets (the paper's absolute milliseconds are testbed
//! artifacts): adaptive beats blocking in all three implementations;
//! the improvement is largest for the centralized implementation and
//! smallest for the load-balanced one; the distributed implementations
//! beat the centralized one; the parallel runs show a healthy speedup
//! over sequential.

use bench::{improvement_pct, print_header, write_json, Row, Scale};
use butterfly_sim::{self as sim, SimConfig};
use serde::Serialize;
use tsp_app::{solve_parallel, solve_sequential_timed, LockImpl, TspConfig, TspInstance, Variant};

#[derive(Serialize)]
struct TspRecord {
    variant: &'static str,
    lock: &'static str,
    elapsed_ms: f64,
    expanded: u64,
    best: u32,
    qlock_contention: f64,
    qlock_mean_wait_us: f64,
    reconfigurations: u64,
}

fn main() {
    // Quick scale shrinks the instance but keeps the paper's
    // work-per-node to queue-op granularity by scaling the per-cell cost.
    let (cities, searchers, ns_per_cell, seeds): (usize, usize, u64, &[u64]) =
        match bench::scale() {
            Scale::Full => (32, 10, 560, &[1993, 3, 11]),
            Scale::Quick => (24, 10, 3600, &[1993, 3, 11]),
        };
    println!(
        "TSP tables: {cities} cities (euclidean), {searchers} searchers, 1 thread/processor, mean of {} seeds",
        seeds.len()
    );

    // Sequential baseline (Table 1, first column), averaged over seeds.
    let mut seq_ms = 0.0;
    let mut seq_expanded = 0u64;
    let mut oracles = Vec::new();
    for &seed in seeds {
        let inst = TspInstance::random_euclidean(cities, 1000, seed);
        let ((best, stats, elapsed), _) = sim::run(SimConfig::butterfly(1), move || {
            solve_sequential_timed(&inst, ns_per_cell)
        })
        .unwrap();
        seq_ms += elapsed.as_millis_f64() / seeds.len() as f64;
        seq_expanded += stats.expanded;
        oracles.push(best);
    }
    let seq_elapsed_ms = seq_ms;
    println!(
        "sequential: {seq_elapsed_ms:.1} ms mean ({seq_expanded} nodes expanded in total)"
    );

    let mut records = Vec::new();
    let mut table_rows = Vec::new();
    // Paper values (ms): [variant, blocking, adaptive, improvement].
    let paper = [
        (Variant::Centralized, 3207.0, 2636.0, 17.8),
        (Variant::Distributed, 2973.0, 2596.0, 12.7),
        (Variant::Balanced, 2054.0, 1921.0, 6.5),
    ];

    for (variant, paper_blocking, paper_adaptive, paper_pct) in paper {
        let mut measured = Vec::new();
        for lock_impl in [
            LockImpl::Blocking,
            // Tuned per the paper's guidance: threshold and n are
            // lock/application-specific constants. With one searcher per
            // processor, a high threshold keeps contended-but-progressing
            // locks spinning.
            LockImpl::Adaptive { threshold: 12, n: 20 },
        ] {
            let mut mean_ms = 0.0;
            let mut expanded = 0u64;
            let mut contention = 0.0;
            let mut wait_us = 0.0;
            let mut reconf = 0u64;
            for (k, &seed) in seeds.iter().enumerate() {
                let inst2 = TspInstance::random_euclidean(cities, 1000, seed);
                let cfg = TspConfig {
                    searchers,
                    lock_impl,
                    expand_ns_per_cell: ns_per_cell,
                    ..TspConfig::default()
                };
                let (res, _) = sim::run(SimConfig::butterfly(searchers), move || {
                    solve_parallel(&inst2, variant, cfg)
                })
                .unwrap();
                assert_eq!(res.best, oracles[k], "parallel optimum mismatch");
                mean_ms += res.elapsed.as_millis_f64() / seeds.len() as f64;
                expanded += res.stats.expanded;
                contention += res.qlock_stats.contention_ratio() / seeds.len() as f64;
                wait_us += res.qlock_stats.mean_wait().as_micros_f64() / seeds.len() as f64;
                reconf += res.qlock_stats.reconfigurations;
            }
            records.push(TspRecord {
                variant: variant.label(),
                lock: lock_impl.label(),
                elapsed_ms: mean_ms,
                expanded,
                best: oracles[0],
                qlock_contention: contention,
                qlock_mean_wait_us: wait_us,
                reconfigurations: reconf,
            });
            measured.push(mean_ms);
        }
        let (blocking_ms, adaptive_ms) = (measured[0], measured[1]);
        let pct = improvement_pct(blocking_ms, adaptive_ms);

        let table_no = match variant {
            Variant::Centralized => 1,
            Variant::Distributed => 2,
            Variant::Balanced => 3,
        };
        print_header(
            &format!("Table {table_no}: {} implementation", variant.label()),
            "ms",
        );
        let rows = vec![
            Row::new("blocking lock", paper_blocking, blocking_ms),
            Row::new("adaptive lock", paper_adaptive, adaptive_ms),
        ];
        bench::print_rows_with_verdict(&rows);
        println!(
            "   improvement: paper {paper_pct:.1}%  measured {pct:.1}%  (adaptive vs blocking)"
        );
        if table_no == 1 {
            let speedup = seq_elapsed_ms / blocking_ms;
            println!(
                "   speedup over sequential (blocking, {searchers} procs): paper 6.5x  measured {speedup:.1}x"
            );
        }
        table_rows.extend(rows);
    }

    // Cross-table shape: distributed beats centralized.
    let cen = records.iter().find(|r| r.variant == "centralized" && r.lock == "blocking").unwrap();
    let dis = records.iter().find(|r| r.variant == "distributed" && r.lock == "blocking").unwrap();
    println!();
    println!(
        "centralized vs distributed (blocking): {:.1} ms vs {:.1} ms  ({})",
        cen.elapsed_ms,
        dis.elapsed_ms,
        if dis.elapsed_ms < cen.elapsed_ms {
            "distributed faster, as in the paper"
        } else {
            "UNEXPECTED: centralized faster"
        }
    );

    let path = write_json("tables1_3_tsp", &records);
    println!("\nrecords written to {}", path.display());
}
