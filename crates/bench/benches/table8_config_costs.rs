//! Table 8: costs of the basic adaptation mechanisms — explicit
//! attribute-ownership acquisition, waiting-policy reconfiguration,
//! scheduler reconfiguration, and monitoring one state variable — plus
//! the paper's `n1 R n2 W` cost-model view of the two configure
//! operations.
//!
//! Shape targets: monitor > acquisition > configure(scheduler) >
//! configure(waiting policy); remote > local; waiting-policy change is
//! `1R 1W` and scheduler change `5W` exactly (three sub-module pointers
//! plus set/reset of the configuration-delay flag).

use bench::{print_header, print_rows_with_verdict, write_json, Row};
use butterfly_sim::NodeId;
use serde::Serialize;
use workloads::{config_op_costs, config_op_rw_costs};

#[derive(Serialize)]
struct ConfigCostRecord {
    operation: String,
    local_us: f64,
    remote_us: f64,
}

fn main() {
    let (acq_l, pol_l, sch_l, mon_l) = config_op_costs(NodeId(0));
    let (acq_r, pol_r, sch_r, mon_r) = config_op_costs(NodeId(2));

    let records = vec![
        ConfigCostRecord {
            operation: "acquisition".into(),
            local_us: acq_l.as_micros_f64(),
            remote_us: acq_r.as_micros_f64(),
        },
        ConfigCostRecord {
            operation: "configure(waiting policy)".into(),
            local_us: pol_l.as_micros_f64(),
            remote_us: pol_r.as_micros_f64(),
        },
        ConfigCostRecord {
            operation: "configure(scheduler)".into(),
            local_us: sch_l.as_micros_f64(),
            remote_us: sch_r.as_micros_f64(),
        },
        ConfigCostRecord {
            operation: "monitor (one state variable)".into(),
            local_us: mon_l.as_micros_f64(),
            remote_us: mon_r.as_micros_f64(),
        },
    ];

    print_header("Table 8: lock configuration operations (local)", "us");
    print_rows_with_verdict(&[
        Row::new("configure(waiting policy)", 9.87, pol_l.as_micros_f64()),
        Row::new("configure(scheduler)", 12.51, sch_l.as_micros_f64()),
        Row::new("acquisition", 30.75, acq_l.as_micros_f64()),
        Row::new("monitor (one state variable)", 66.03, mon_l.as_micros_f64()),
    ]);
    print_header("Table 8: lock configuration operations (remote)", "us");
    print_rows_with_verdict(&[
        Row::new("configure(waiting policy)", 14.45, pol_r.as_micros_f64()),
        Row::new("configure(scheduler)", 20.83, sch_r.as_micros_f64()),
        Row::new("acquisition", 33.92, acq_r.as_micros_f64()),
    ]);

    let (policy_rw, sched_rw) = config_op_rw_costs();
    println!("\nabstract costs (t = n1 R n2 W):");
    println!("  configure(waiting policy): {policy_rw}   (paper: one read + one write)");
    println!("  configure(scheduler):      {sched_rw}   (paper: 3 sub-modules + set flag + reset flag)");
    assert_eq!(policy_rw.reads, 1);
    assert_eq!(policy_rw.writes, 1);
    assert_eq!(sched_rw.reads, 0);
    assert_eq!(sched_rw.writes, 5);

    let path = write_json("table8_config_costs", &records);
    println!("\nrecords written to {}", path.display());
}
