//! The paper's stated future work, run today: "For massively parallel
//! applications we expect the gain to be even higher because the effect
//! of blocking vs. spinning (useful processing vs. wasted processor
//! cycles) is more pronounced."
//!
//! We oversubscribe the machine — several worker threads per processor,
//! long critical sections — and compare the static locks against the
//! adaptive lock as the thread/processor ratio grows. At one thread per
//! processor spinning is harmless (nothing else to run) and blocking
//! only adds switch costs; once threads share processors, a spinning
//! waiter starves runnable siblings and the right configuration flips
//! to blocking. The adaptive lock must track the best static choice at
//! *every* ratio — and the penalty of the wrong static choice grows
//! with oversubscription, which is why the paper expects adaptivity to
//! matter even more for massively parallel applications.

use std::sync::Arc;

use adaptive_locks::{with_lock, Lock};
use bench::{improvement_pct, write_json, Scale};
use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};
use cthreads::fork;
use serde::Serialize;
use workloads::LockSpec;

#[derive(Serialize)]
struct OversubRecord {
    threads_per_proc: usize,
    blocking_ms: f64,
    adaptive_ms: f64,
    spin_ms: f64,
    adaptive_gain_pct: f64,
}

/// A mixed workload: threads alternate shared-lock critical sections
/// with private work, so a spinning waiter genuinely steals cycles from
/// runnable siblings.
fn run(spec: LockSpec, procs: usize, threads_per_proc: usize, iters: u32) -> Duration {
    let threads = procs * threads_per_proc;
    let (elapsed, _) = sim::run(
        SimConfig {
            processors: procs,
            quantum: Some(Duration::millis(1)),
            ..SimConfig::default()
        },
        move || {
            let lock: Arc<dyn Lock> = spec.build(ctx::current_node());
            let t0 = ctx::now();
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let lock = Arc::clone(&lock);
                    fork(ProcId(i % procs), format!("w{i}"), move || {
                        for _ in 0..iters {
                            with_lock(lock.as_ref(), || ctx::advance(Duration::micros(1_500)));
                            ctx::advance(Duration::micros(200)); // private work
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            ctx::now().since(t0)
        },
    )
    .unwrap();
    elapsed
}

fn main() {
    let (procs, iters) = match bench::scale() {
        Scale::Full => (8usize, 40u32),
        Scale::Quick => (4, 25),
    };
    println!(
        "Oversubscription ablation: {procs} processors, 1.5ms critical sections, 200us private work\n"
    );
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>15}",
        "threads/proc", "blocking ms", "adaptive ms", "spin ms", "vs worst static"
    );

    let mut records = Vec::new();
    for threads_per_proc in [1usize, 2, 4] {
        let blocking = run(LockSpec::Blocking, procs, threads_per_proc, iters);
        let adaptive = run(
            LockSpec::Adaptive { threshold: 3, n: 10 },
            procs,
            threads_per_proc,
            iters,
        );
        let spin = run(LockSpec::Spin, procs, threads_per_proc, iters);
        let best_static = blocking.as_millis_f64().min(spin.as_millis_f64());
        let worst_static = blocking.as_millis_f64().max(spin.as_millis_f64());
        let gain = improvement_pct(worst_static, adaptive.as_millis_f64());
        println!(
            "{:>14} {:>12.2} {:>12.2} {:>12.2} {:>14.1}%",
            threads_per_proc,
            blocking.as_millis_f64(),
            adaptive.as_millis_f64(),
            spin.as_millis_f64(),
            gain
        );
        let _ = best_static;
        records.push(OversubRecord {
            threads_per_proc,
            blocking_ms: blocking.as_millis_f64(),
            adaptive_ms: adaptive.as_millis_f64(),
            spin_ms: spin.as_millis_f64(),
            adaptive_gain_pct: gain,
        });
    }

    // Shape checks. (1) The right static configuration flips with the
    // ratio: spinning is fine at 1 thread/proc, harmful once siblings
    // share the processor. (2) The adaptive lock tracks the best static
    // configuration at every ratio, so the gap it closes (vs the worst
    // static choice) grows with oversubscription.
    let spin_beats_blocking_at_1 = records[0].spin_ms <= records[0].blocking_ms * 1.05;
    let blocking_beats_spin_at_4 = records[2].blocking_ms < records[2].spin_ms;
    println!(
        "\nbest static flips with the ratio: spin ok at 1/proc ({}) and blocking wins at 4/proc ({})",
        spin_beats_blocking_at_1, blocking_beats_spin_at_4
    );
    let adaptive_tracks = records.iter().all(|r| {
        let best = r.blocking_ms.min(r.spin_ms);
        r.adaptive_ms <= best * 1.2
    });
    println!(
        "adaptive within 20% of the best static configuration at every ratio: {}",
        if adaptive_tracks { "yes" } else { "NO (unexpected)" }
    );
    println!(
        "gap closed vs the wrong static choice grows: {:.1}% -> {:.1}% -> {:.1}%",
        records[0].adaptive_gain_pct, records[1].adaptive_gain_pct, records[2].adaptive_gain_pct
    );

    let path = write_json("ablation_oversubscription", &records);
    println!("\nrecords written to {}", path.display());
}
