//! Figures 4–9: locking patterns (number of waiting threads over time)
//! for `qlock` and `glob-act-lock` in the centralized, distributed, and
//! distributed+load-balancing TSP implementations.
//!
//! Shape targets: the centralized `qlock` shows sustained, high waiting
//! counts (Figure 4); the distributed implementations show much lower
//! `qlock` contention (Figures 6 and 8); `glob-act-lock` shows bursts
//! around the start/drain phases (Figures 5, 7, 9).

use bench::{write_csv, write_json, Scale};
use butterfly_sim::{self as sim, SimConfig};
use serde::Serialize;
use thread_monitor::{pattern_series, to_long_csv, Series};
use tsp_app::{solve_parallel, LockImpl, TspConfig, TspInstance, Variant};

#[derive(Serialize)]
struct PatternSummary {
    figure: &'static str,
    series: String,
    samples: usize,
    mean_waiting: f64,
    max_waiting: f64,
}

fn main() {
    let (cities, searchers, ns_per_cell) = match bench::scale() {
        Scale::Full => (32usize, 10usize, 560u64),
        Scale::Quick => (24, 10, 3600),
    };
    let seed = 1993;
    let inst = TspInstance::random_euclidean(cities, 1000, seed);
    println!("Locking patterns: {cities}-city TSP, {searchers} searchers, blocking locks (as in the paper's figures)");

    let figures = [
        (Variant::Centralized, "fig4", "fig5"),
        (Variant::Distributed, "fig6", "fig7"),
        (Variant::Balanced, "fig8", "fig9"),
    ];

    let mut all_series: Vec<Series> = Vec::new();
    let mut summaries = Vec::new();

    for (variant, qfig, afig) in figures {
        let inst2 = inst.clone();
        let cfg = TspConfig {
            searchers,
            lock_impl: LockImpl::Blocking,
            expand_ns_per_cell: ns_per_cell,
            trace_locks: true,
            ..TspConfig::default()
        };
        let (res, _) = sim::run(SimConfig::butterfly(searchers), move || {
            solve_parallel(&inst2, variant, cfg)
        })
        .unwrap();

        let q = pattern_series(format!("{}/qlock", variant.label()), &res.qlock_trace);
        let a = pattern_series(format!("{}/glob-act-lock", variant.label()), &res.act_trace);

        for (fig, s) in [(qfig, &q), (afig, &a)] {
            println!(
                "\n{fig}: {:<28} mean waiting {:.2}, max {:.0}, {} samples",
                s.name,
                s.mean(),
                s.max(),
                s.len()
            );
            println!("  {}", s.sparkline(64));
            summaries.push(PatternSummary {
                figure: fig,
                series: s.name.clone(),
                samples: s.len(),
                mean_waiting: s.mean(),
                max_waiting: s.max(),
            });
        }
        all_series.push(q);
        all_series.push(a);
    }

    // Shape checks across figures.
    let mean_of = |name: &str| {
        all_series
            .iter()
            .find(|s| s.name == name)
            .map(Series::mean)
            .unwrap_or(0.0)
    };
    let qc = mean_of("centralized/qlock");
    let qd = mean_of("distributed/qlock");
    let qb = mean_of("distributed+lb/qlock");
    println!();
    println!(
        "qlock mean waiting: centralized {qc:.2} vs distributed {qd:.2} vs lb {qb:.2} -> {}",
        if qc > qd && qc > qb {
            "centralized highest, as in the paper"
        } else {
            "UNEXPECTED ordering"
        }
    );

    let cpath = write_csv("fig4_9_patterns", &to_long_csv(&all_series));
    let jpath = write_json("fig4_9_patterns", &summaries);
    println!("\nwritten to {} and {}", cpath.display(), jpath.display());
}
