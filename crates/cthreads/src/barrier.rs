//! A generation-counting barrier for simulated threads.

use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<ThreadId>,
}

/// A reusable barrier for a fixed party of `n` simulated threads.
///
/// Cloning yields another handle to the same barrier.
#[derive(Clone)]
pub struct Barrier {
    n: usize,
    /// Simulated word charged on arrival/inspection so barrier traffic is
    /// visible to the NUMA cost model.
    cell: SimWord,
    state: Arc<Mutex<BarrierState>>,
}

/// Result of [`Barrier::wait`]: exactly one thread per generation is the
/// leader (mirrors `std::sync::BarrierWaitResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    /// Whether this thread was the last to arrive.
    pub is_leader: bool,
    /// The generation that completed.
    pub generation: u64,
}

impl Barrier {
    /// Create a barrier for `n` threads, homed on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_on(node: NodeId, n: usize) -> Barrier {
        assert!(n > 0, "barrier party must be non-empty");
        Barrier {
            n,
            cell: SimWord::new_on(node, 0),
            state: Arc::new(Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Create a barrier homed on the caller's node.
    pub fn new_local(n: usize) -> Barrier {
        Barrier::new_on(ctx::current_node(), n)
    }

    /// Arrive at the barrier and block until all `n` parties have
    /// arrived. The last arrival wakes everyone and is the leader.
    pub fn wait(&self) -> BarrierWaitResult {
        self.cell.fetch_add(1); // charged arrival
        let my_gen;
        {
            let mut s = self.state.lock().unwrap();
            my_gen = s.generation;
            s.arrived += 1;
            if s.arrived == self.n {
                s.arrived = 0;
                s.generation += 1;
                let ws = std::mem::take(&mut s.waiters);
                drop(s);
                for w in ws {
                    ctx::unpark(w);
                }
                return BarrierWaitResult {
                    is_leader: true,
                    generation: my_gen,
                };
            }
            s.waiters.push(ctx::current());
        }
        loop {
            ctx::park();
            let s = self.state.lock().unwrap();
            if s.generation > my_gen {
                return BarrierWaitResult {
                    is_leader: false,
                    generation: my_gen,
                };
            }
            // Spurious wake (stale unpark permit): re-register and wait.
            drop(s);
            let mut s = self.state.lock().unwrap();
            if s.generation > my_gen {
                return BarrierWaitResult {
                    is_leader: false,
                    generation: my_gen,
                };
            }
            s.waiters.push(ctx::current());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::fork;
    use butterfly_sim::{self as sim, Duration, ProcId, SimConfig, SimCell};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn all_parties_pass_together() {
        let (log, _) = sim::run(cfg(4), || {
            let bar = Barrier::new_local(4);
            let log = SimCell::new_local(Vec::<(usize, u8)>::new());
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (b2, l2) = (bar.clone(), log.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(100 * p as u64));
                        l2.poke(|v| v.push((p, 0)));
                        b2.wait();
                        l2.poke(|v| v.push((p, 1)));
                    })
                })
                .collect();
            log.poke(|v| v.push((0, 0)));
            bar.wait();
            log.poke(|v| v.push((0, 1)));
            for h in handles {
                h.join();
            }
            log.peek()
        })
        .unwrap();
        // Every "before" entry must precede every "after" entry.
        let last_before = log.iter().rposition(|&(_, ph)| ph == 0).unwrap();
        let first_after = log.iter().position(|&(_, ph)| ph == 1).unwrap();
        assert!(last_before < first_after, "barrier leaked: {log:?}");
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let (leaders, _) = sim::run(cfg(3), || {
            let bar = Barrier::new_local(3);
            let handles: Vec<_> = (1..3)
                .map(|p| {
                    let b2 = bar.clone();
                    fork(ProcId(p), format!("w{p}"), move || {
                        (0..4).map(|_| b2.wait().is_leader as u32).sum::<u32>()
                    })
                })
                .collect();
            let mine: u32 = (0..4).map(|_| bar.wait().is_leader as u32).sum();
            let others: u32 = handles.into_iter().map(|h| h.join()).sum();
            mine + others
        })
        .unwrap();
        assert_eq!(leaders, 4, "one leader per each of the 4 generations");
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let (r, _) = sim::run(cfg(1), || {
            let bar = Barrier::new_local(1);
            let a = bar.wait();
            let b = bar.wait();
            (a, b)
        })
        .unwrap();
        assert!(r.0.is_leader && r.1.is_leader);
        assert_eq!(r.0.generation, 0);
        assert_eq!(r.1.generation, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_party_barrier_rejected() {
        // Constructing outside a sim is fine for new_on; validation fires
        // before any ctx use.
        let _ = Barrier::new_on(sim::NodeId(0), 0);
    }
}
