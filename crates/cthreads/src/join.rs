//! Forking and joining of simulated threads, in the style of the
//! multiprocessor Cthreads package the paper builds on (`cthread_fork` /
//! `cthread_join`).

use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, ProcId, SimWord, ThreadId};

/// State shared between a forked thread and its join handle.
struct JoinState<T> {
    /// Simulated completion flag, homed on the child's node: joiners poll
    /// or block on it, and pay the NUMA cost of reading it.
    done: SimWord,
    /// Host-side slot for the result value (transferred out of band; the
    /// simulated cost of result delivery is the `done` flag traffic).
    value: Mutex<Option<T>>,
    /// Threads parked in `join`, to be unparked at completion.
    waiters: Mutex<Vec<ThreadId>>,
}

/// Owner side of a forked thread; consume with [`JoinHandle::join`].
pub struct JoinHandle<T> {
    tid: ThreadId,
    state: Arc<JoinState<T>>,
}

/// Fork a simulated thread on processor `proc`, returning a handle that
/// yields the closure's result.
///
/// The spawning thread is charged the configured thread-creation cost.
pub fn fork<T, F>(proc: ProcId, name: impl Into<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let state = Arc::new(JoinState {
        done: SimWord::new_on(proc.node(), 0),
        value: Mutex::new(None),
        waiters: Mutex::new(Vec::new()),
    });
    let st = Arc::clone(&state);
    let tid = ctx::spawn(proc, name, move || {
        let v = f();
        *st.value.lock().unwrap() = Some(v);
        st.done.store(1);
        let waiters = std::mem::take(&mut *st.waiters.lock().unwrap());
        for w in waiters {
            ctx::unpark(w);
        }
    });
    JoinHandle { tid, state }
}

/// Fork on the current thread's processor.
pub fn fork_local<T, F>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    fork(ctx::current_proc(), name, f)
}

impl<T> JoinHandle<T> {
    /// The simulated thread's id.
    pub fn thread(&self) -> ThreadId {
        self.tid
    }

    /// Whether the thread has completed (no simulated cost; a monitor-
    /// style peek).
    pub fn is_finished(&self) -> bool {
        self.state.done.peek() == 1
    }

    /// Block until the thread completes and return its result. The caller
    /// is descheduled while waiting, freeing its processor for other
    /// ready threads.
    pub fn join(self) -> T {
        loop {
            // Register before the final check so a completion racing with
            // our park is caught by the unpark permit.
            self.state.waiters.lock().unwrap().push(ctx::current());
            if self.state.done.load() == 1 {
                break;
            }
            ctx::park();
        }
        self.state
            .value
            .lock()
            .unwrap()
            .take()
            .expect("joined thread completed without a result")
    }
}

/// Fork one thread per processor in `procs` and join them all, returning
/// results in order. The paper's TSP master does exactly this with its
/// searcher threads.
pub fn fork_join_all<T, F>(procs: &[ProcId], name_prefix: &str, make: impl Fn(usize) -> F) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let handles: Vec<JoinHandle<T>> = procs
        .iter()
        .enumerate()
        .map(|(i, &p)| fork(p, format!("{name_prefix}{i}"), make(i)))
        .collect();
    handles.into_iter().map(JoinHandle::join).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, Duration, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn fork_and_join_returns_value() {
        let (v, _) = sim::run(cfg(2), || {
            let h = fork(ProcId(1), "child", || {
                ctx::advance(Duration::micros(100));
                7u32
            });
            h.join()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn join_already_finished_thread() {
        let (v, _) = sim::run(cfg(2), || {
            let h = fork(ProcId(1), "child", || 3u8);
            ctx::advance(Duration::millis(5)); // child certainly done
            assert!(h.is_finished());
            h.join()
        })
        .unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn joiner_frees_processor_while_waiting() {
        // Root joins a slow child on proc 1; a second thread on proc 0
        // must be able to run while root is parked in join.
        let (ran, _) = sim::run(cfg(2), || {
            let flag = sim::SimWord::new_local(0);
            let f2 = flag.clone();
            let slow = fork(ProcId(1), "slow", || {
                ctx::advance(Duration::millis(2));
            });
            fork(ProcId(0), "peer", move || {
                f2.store(1);
            });
            slow.join();
            flag.load()
        })
        .unwrap();
        assert_eq!(ran, 1, "peer on the joiner's processor never ran");
    }

    #[test]
    fn fork_join_all_collects_in_order() {
        let (vs, _) = sim::run(cfg(4), || {
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |i| move || {
                // Finish in reverse order to prove result order is by
                // index, not completion.
                ctx::advance(Duration::micros(100 * (4 - i as u64)));
                i * 10
            })
        })
        .unwrap();
        assert_eq!(vs, vec![0, 10, 20, 30]);
    }

    #[test]
    fn many_joiners_is_an_error_free_single_consumer() {
        // JoinHandle is consumed by join(); this is a compile-time
        // property, but verify is_finished works for observers.
        let (ok, _) = sim::run(cfg(2), || {
            let h = fork(ProcId(1), "c", || ());
            let t = h.thread();
            h.join();
            t.0 > 0
        })
        .unwrap();
        assert!(ok);
    }
}
