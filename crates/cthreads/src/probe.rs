//! Observation hooks for synchronization objects.
//!
//! Invariant oracles (see `locks::LockOracle`) need to see what a
//! semaphore or condition variable *did* — who queued, who was granted a
//! wakeup, who acquired — without the primitive depending on the oracle
//! crate. [`SyncProbe`] is that seam: the `cthreads` primitives emit
//! [`ProbeEvent`]s to an attached probe, and higher-level crates implement
//! the trait. An unattached probe costs one relaxed pointer check.

use std::sync::{Arc, OnceLock};

use butterfly_sim::ThreadId;

/// One observable step in a synchronization object's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// The thread registered as a waiter.
    Enqueue(ThreadId),
    /// The object selected the thread to proceed (handoff/notify).
    Grant(ThreadId),
    /// The thread obtained the resource (permit, lock, ...).
    Acquire(ThreadId),
    /// The thread returned the resource.
    Release(ThreadId),
}

/// A sink for [`ProbeEvent`]s, attached to a primitive under test.
///
/// Implementations must be cheap and must not call back into the probed
/// primitive (the event is emitted while internal state is consistent but
/// possibly while internal locks are held).
pub trait SyncProbe: Send + Sync {
    /// Observe one protocol step.
    fn on_event(&self, ev: ProbeEvent);
}

/// Shared, late-bound slot for an optional probe; primitives embed one.
#[derive(Clone, Default)]
pub(crate) struct ProbeSlot(Arc<OnceLock<Arc<dyn SyncProbe>>>);

impl ProbeSlot {
    pub(crate) fn attach(&self, probe: Arc<dyn SyncProbe>) {
        self.0
            .set(probe)
            .unwrap_or_else(|_| panic!("a probe is already attached to this object"));
    }

    #[inline]
    pub(crate) fn emit(&self, ev: ProbeEvent) {
        if let Some(p) = self.0.get() {
            p.on_event(ev);
        }
    }
}
