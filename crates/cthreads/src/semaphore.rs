//! A counting semaphore for simulated threads.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

use crate::probe::{ProbeEvent, ProbeSlot, SyncProbe};

struct SemState {
    permits: u64,
    waiters: VecDeque<ThreadId>,
}

/// A counting semaphore; clones share state.
#[derive(Clone)]
pub struct Semaphore {
    /// Simulated word charged on acquire/release so semaphore traffic is
    /// visible to the NUMA model.
    cell: SimWord,
    state: Arc<Mutex<SemState>>,
    probe: ProbeSlot,
}

impl Semaphore {
    /// Semaphore with `permits` initial permits, homed on `node`.
    pub fn new_on(node: NodeId, permits: u64) -> Semaphore {
        Semaphore {
            cell: SimWord::new_on(node, permits),
            state: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
            probe: ProbeSlot::default(),
        }
    }

    /// Semaphore homed on the caller's node.
    pub fn new_local(permits: u64) -> Semaphore {
        Semaphore::new_on(ctx::current_node(), permits)
    }

    /// Attach an invariant probe; every subsequent protocol step is
    /// reported to it. At most one probe per semaphore.
    pub fn attach_probe(&self, probe: Arc<dyn SyncProbe>) {
        self.probe.attach(probe);
    }

    /// Acquire one permit, blocking while none are available (FIFO).
    pub fn acquire(&self) {
        self.cell.fetch_sub(1); // charged accounting RMW
        let me = ctx::current();
        loop {
            let next_to_wake = {
                let mut s = self.state.lock().unwrap();
                if !s.waiters.contains(&me) {
                    // Fast path: permits available and nobody queued.
                    if s.permits > 0 && s.waiters.is_empty() {
                        s.permits -= 1;
                        self.probe.emit(ProbeEvent::Acquire(me));
                        return;
                    }
                    s.waiters.push_back(me);
                    self.probe.emit(ProbeEvent::Enqueue(me));
                }
                if s.permits > 0 && s.waiters.front() == Some(&me) {
                    s.permits -= 1;
                    s.waiters.pop_front();
                    self.probe.emit(ProbeEvent::Grant(me));
                    self.probe.emit(ProbeEvent::Acquire(me));
                    // Cascade: if more permits remain (several releases
                    // landed before we woke), pass the wake along so the
                    // next waiter is not stranded.
                    if s.permits > 0 {
                        s.waiters.front().copied()
                    } else {
                        None
                    }
                } else {
                    drop(s);
                    ctx::park();
                    continue;
                }
            };
            if let Some(t) = next_to_wake {
                ctx::unpark(t);
            }
            return;
        }
    }

    /// Try to acquire one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        self.cell.load();
        let mut s = self.state.lock().unwrap();
        if s.permits > 0 && s.waiters.is_empty() {
            s.permits -= 1;
            self.probe.emit(ProbeEvent::Acquire(ctx::current()));
            true
        } else {
            false
        }
    }

    /// Return one permit, waking the first waiter.
    pub fn release(&self) {
        self.cell.fetch_add(1); // charged accounting RMW
        let waiter = {
            let mut s = self.state.lock().unwrap();
            s.permits += 1;
            self.probe.emit(ProbeEvent::Release(ctx::current()));
            s.waiters.front().copied()
        };
        if let Some(tid) = waiter {
            ctx::unpark(tid);
        }
    }

    /// Current permit count (monitor peek).
    pub fn permits(&self) -> u64 {
        self.state.lock().unwrap().permits
    }

    /// Run `f` while holding one permit.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let r = f();
        self.release();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::fork;
    use butterfly_sim::{self as sim, Duration, ProcId, SimConfig, SimCell};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn permits_bound_concurrency() {
        // 2 permits, 4 workers with overlapping holds: at most 2 inside.
        let (max_inside, _) = sim::run(cfg(4), || {
            let sem = Semaphore::new_local(2);
            let inside = SimCell::new_local((0i64, 0i64)); // (current, max)
            let handles: Vec<_> = (0..4)
                .map(|p| {
                    let (sem, inside) = (sem.clone(), inside.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..5 {
                            sem.with(|| {
                                inside.poke(|v| {
                                    v.0 += 1;
                                    v.1 = v.1.max(v.0);
                                });
                                ctx::advance(Duration::micros(50));
                                inside.poke(|v| v.0 -= 1);
                            });
                            ctx::advance(Duration::micros(10));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            inside.peek().1
        })
        .unwrap();
        assert!(max_inside >= 2, "parallelism never reached the permit count");
        assert!(max_inside <= 2, "semaphore admitted more than its permits");
    }

    #[test]
    fn try_acquire_respects_exhaustion() {
        let (out, _) = sim::run(cfg(1), || {
            let sem = Semaphore::new_local(1);
            let a = sem.try_acquire();
            let b = sem.try_acquire();
            sem.release();
            let c = sem.try_acquire();
            (a, b, c, sem.permits())
        })
        .unwrap();
        assert!(out.0 && !out.1 && out.2);
        assert_eq!(out.3, 0);
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let (ok, _) = sim::run(cfg(2), || {
            let sem = Semaphore::new_local(0);
            let s2 = sem.clone();
            fork(ProcId(1), "releaser", move || {
                ctx::advance(Duration::millis(1));
                s2.release();
            });
            let t0 = ctx::now();
            sem.acquire();
            // The releaser waits 1ms from *its* start; allow for the
            // thread-creation charge between t0 and its clock.
            ctx::now().since(t0) >= Duration::micros(700)
        })
        .unwrap();
        assert!(ok, "acquire returned before the release");
    }

    #[test]
    fn zero_permit_semaphore_as_signal() {
        let (n, _) = sim::run(cfg(3), || {
            let sem = Semaphore::new_local(0);
            let done = SimCell::new_local(0u32);
            let handles: Vec<_> = (1..3)
                .map(|p| {
                    let (sem, done) = (sem.clone(), done.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        sem.acquire();
                        done.poke(|v| *v += 1);
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            sem.release();
            sem.release();
            for h in handles {
                h.join();
            }
            done.peek()
        })
        .unwrap();
        assert_eq!(n, 2);
    }
}
