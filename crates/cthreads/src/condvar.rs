//! A condition variable for simulated threads.
//!
//! The Cthreads interface couples condition variables with a mutex held
//! by the caller. Our lock types live in a higher-level crate, so this
//! condition variable is *lock-agnostic*: [`Condvar::wait_with`] takes
//! `release` / `reacquire` closures that unlock and relock whatever mutual
//! exclusion the caller holds. As with POSIX condition variables, wakeups
//! may be spurious; always re-check the predicate in a loop.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

use crate::probe::{ProbeEvent, ProbeSlot, SyncProbe};

/// A simulated condition variable.
///
/// Cloning yields another handle to the same condition variable.
#[derive(Clone)]
pub struct Condvar {
    /// One simulated word of state; waiter registration/deregistration is
    /// charged against it so condvar traffic shows up in NUMA accounting.
    cell: SimWord,
    waiters: Arc<Mutex<VecDeque<ThreadId>>>,
    probe: ProbeSlot,
}

impl Condvar {
    /// Create a condition variable homed on `node`.
    pub fn new_on(node: NodeId) -> Condvar {
        Condvar {
            cell: SimWord::new_on(node, 0),
            waiters: Arc::new(Mutex::new(VecDeque::new())),
            probe: ProbeSlot::default(),
        }
    }

    /// Create a condition variable homed on the caller's node.
    pub fn new_local() -> Condvar {
        Condvar::new_on(ctx::current_node())
    }

    /// Attach an invariant probe; waiter registration and notifications
    /// are reported to it. At most one probe per condition variable.
    pub fn attach_probe(&self, probe: Arc<dyn SyncProbe>) {
        self.probe.attach(probe);
    }

    /// Atomically (with respect to simulated threads) register as a
    /// waiter, run `release` (dropping the caller's mutual exclusion),
    /// block, and on wakeup run `reacquire` and return its result.
    pub fn wait_with<R>(&self, release: impl FnOnce(), reacquire: impl FnOnce() -> R) -> R {
        self.cell.fetch_add(1); // charged registration write
        let me = ctx::current();
        self.waiters.lock().unwrap().push_back(me);
        self.probe.emit(ProbeEvent::Enqueue(me));
        release();
        ctx::park();
        reacquire()
    }

    /// Wake one waiter, if any. Returns whether a waiter was woken.
    pub fn notify_one(&self) -> bool {
        self.cell.load(); // charged inspection of waiter state
        let w = self.waiters.lock().unwrap().pop_front();
        match w {
            Some(tid) => {
                self.probe.emit(ProbeEvent::Grant(tid));
                ctx::unpark(tid);
                true
            }
            None => false,
        }
    }

    /// Wake all waiters. Returns how many were woken.
    pub fn notify_all(&self) -> usize {
        self.cell.load();
        let ws = std::mem::take(&mut *self.waiters.lock().unwrap());
        let n = ws.len();
        for tid in ws {
            self.probe.emit(ProbeEvent::Grant(tid));
            ctx::unpark(tid);
        }
        n
    }

    /// Number of currently registered waiters (monitor peek, no cost).
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::fork;
    use butterfly_sim::{self as sim, Duration, ProcId, SimConfig, SimWord};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn notify_one_wakes_single_waiter() {
        let (v, _) = sim::run(cfg(2), || {
            let cv = Condvar::new_local();
            let flag = SimWord::new_local(0);
            let (cv2, f2) = (cv.clone(), flag.clone());
            let h = fork(ProcId(1), "waiter", move || {
                while f2.load() == 0 {
                    cv2.wait_with(|| {}, || {});
                }
                99u32
            });
            ctx::advance(Duration::millis(1));
            flag.store(1);
            cv.notify_one();
            h.join()
        })
        .unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let (n, _) = sim::run(cfg(4), || {
            let cv = Condvar::new_local();
            let go = SimWord::new_local(0);
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (cv2, g2) = (cv.clone(), go.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        while g2.load() == 0 {
                            cv2.wait_with(|| {}, || {});
                        }
                        1u32
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            assert_eq!(cv.waiter_count(), 3);
            go.store(1);
            assert_eq!(cv.notify_all(), 3);
            handles.into_iter().map(|h| h.join()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn notify_one_without_waiters_is_false() {
        let (ok, _) = sim::run(cfg(1), || {
            let cv = Condvar::new_local();
            !cv.notify_one() && cv.notify_all() == 0
        })
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn wait_with_runs_release_before_blocking() {
        let (order, _) = sim::run(cfg(2), || {
            let cv = Condvar::new_local();
            let released = SimWord::new_local(0);
            let (cv2, r2) = (cv.clone(), released.clone());
            let h = fork(ProcId(1), "w", move || {
                cv2.wait_with(|| r2.store(1), || 5u32)
            });
            // Wait for the release side-effect, then notify.
            while released.load() == 0 {
                ctx::advance(Duration::micros(10));
            }
            cv.notify_one();
            h.join()
        })
        .unwrap();
        assert_eq!(order, 5);
    }
}
