//! # cthreads
//!
//! A user-level thread package for the Butterfly simulator, modelled on
//! the multiprocessor version of Cthreads that the paper's experiments
//! use as their substrate ([Muk91] in the paper's bibliography).
//!
//! The package provides:
//!
//! * [`fork`] / [`JoinHandle::join`] — `cthread_fork` / `cthread_join`;
//! * [`Condvar`] — condition variables (lock-agnostic: pair with any
//!   mutual-exclusion object via release/reacquire closures);
//! * [`Barrier`] — generation-counting reusable barriers;
//! * [`channel`] — a shared mailbox for message passing (used by the
//!   thread-monitor substrate);
//! * re-exported scheduling verbs ([`yield_now`], [`sleep`]) from the
//!   simulator's per-processor scheduler.
//!
//! Threads are pinned to the processor they are forked on, exactly like
//! the paper's TSP searchers ("each searcher thread executes on a
//! dedicated processor"). Blocking primitives deschedule the caller so
//! other ready threads on the same processor can run — the property the
//! paper's spin-vs-block experiments hinge on.
//!
//! ```
//! use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};
//! use cthreads::fork;
//!
//! let (v, _) = sim::run(SimConfig::butterfly(2), || {
//!     let h = fork(ProcId(1), "worker", || {
//!         ctx::advance(Duration::micros(100));
//!         21 * 2
//!     });
//!     h.join()
//! })
//! .unwrap();
//! assert_eq!(v, 42);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod barrier;
mod channel;
mod condvar;
mod join;
mod probe;
mod semaphore;

pub use barrier::{Barrier, BarrierWaitResult};
pub use channel::{channel, channel_on, Receiver, RecvError, Sender};
pub use condvar::Condvar;
pub use join::{fork, fork_join_all, fork_local, JoinHandle};
pub use probe::{ProbeEvent, SyncProbe};
pub use semaphore::Semaphore;

/// Yield the processor to the next ready thread on the same processor
/// (re-export of the simulator's scheduler verb).
pub use butterfly_sim::ctx::yield_now;

/// Sleep for a span of virtual time, releasing the processor.
pub use butterfly_sim::ctx::sleep;
