//! A simulated multi-producer multi-consumer channel.
//!
//! Used by the thread-monitor substrate to stream trace records from
//! application threads to a monitor thread, and generally useful for
//! message-passing between simulated threads. Sends are charged one write
//! against the channel's home node, receives one read — the cost shape of
//! a shared mailbox on the Butterfly.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waiters: VecDeque<ThreadId>,
    senders: usize,
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: all senders dropped")
    }
}

impl std::error::Error for RecvError {}

/// Sending half; clone for additional producers.
pub struct Sender<T> {
    cell: SimWord,
    state: Arc<Mutex<ChanState<T>>>,
}

/// Receiving half; clone for additional consumers.
pub struct Receiver<T> {
    cell: SimWord,
    state: Arc<Mutex<ChanState<T>>>,
}

/// Create an unbounded channel homed on `node`.
pub fn channel_on<T: Send>(node: NodeId) -> (Sender<T>, Receiver<T>) {
    let state = Arc::new(Mutex::new(ChanState {
        queue: VecDeque::new(),
        recv_waiters: VecDeque::new(),
        senders: 1,
    }));
    let cell = SimWord::new_on(node, 0);
    (
        Sender {
            cell: cell.clone(),
            state: Arc::clone(&state),
        },
        Receiver { cell, state },
    )
}

/// Create an unbounded channel homed on the caller's node.
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    channel_on(ctx::current_node())
}

impl<T: Send> Sender<T> {
    /// Enqueue a message (charged one write to the channel's home node)
    /// and wake one blocked receiver, if any.
    pub fn send(&self, value: T) {
        self.cell.store(0); // charged mailbox write
        let waiter = {
            let mut s = self.state.lock().unwrap();
            s.queue.push_back(value);
            s.recv_waiters.pop_front()
        };
        if let Some(tid) = waiter {
            ctx::unpark(tid);
        }
    }

    /// Number of queued messages (monitor peek, no simulated cost).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty (monitor peek).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.lock().unwrap().senders += 1;
        Sender {
            cell: self.cell.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waiters = {
            let mut s = self.state.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                std::mem::take(&mut s.recv_waiters)
            } else {
                VecDeque::new()
            }
        };
        // Wake blocked receivers so they can observe closure. Drop can run
        // outside the simulation (teardown), where unpark is unavailable.
        if butterfly_sim::ctx::in_sim() {
            for tid in waiters {
                ctx::unpark(tid);
            }
        }
    }
}

impl<T: Send> Receiver<T> {
    /// Dequeue a message, blocking while the channel is empty. Returns
    /// `Err(RecvError)` once empty with no remaining senders.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            self.cell.load(); // charged mailbox read
            {
                let mut s = self.state.lock().unwrap();
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s.recv_waiters.push_back(ctx::current());
            }
            ctx::park();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.cell.load();
        self.state.lock().unwrap().queue.pop_front()
    }

    /// Drain everything currently queued (single charged read).
    pub fn drain(&self) -> Vec<T> {
        self.cell.load();
        self.state.lock().unwrap().queue.drain(..).collect()
    }

    /// Whether all senders have been dropped (the queue may still hold
    /// undelivered messages). Monitor peek, no simulated cost.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().senders == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            cell: self.cell.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::fork;
    use butterfly_sim::{self as sim, Duration, ProcId, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn send_then_recv() {
        let (v, _) = sim::run(cfg(1), || {
            let (tx, rx) = channel::<u32>();
            tx.send(11);
            tx.send(22);
            (rx.recv().unwrap(), rx.recv().unwrap())
        })
        .unwrap();
        assert_eq!(v, (11, 22));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (v, _) = sim::run(cfg(2), || {
            let (tx, rx) = channel::<u64>();
            fork(ProcId(1), "producer", move || {
                ctx::advance(Duration::millis(1));
                tx.send(5);
            });
            let t0 = ctx::now();
            let v = rx.recv().unwrap();
            assert!(ctx::now().since(t0) >= Duration::millis(1) - Duration::micros(200));
            v
        })
        .unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let (r, _) = sim::run(cfg(2), || {
            let (tx, rx) = channel::<u8>();
            let h = fork(ProcId(1), "producer", move || {
                tx.send(1);
                // tx dropped here
            });
            h.join();
            let first = rx.recv();
            let second = rx.recv();
            (first, second)
        })
        .unwrap();
        assert_eq!(r.0, Ok(1));
        assert_eq!(r.1, Err(RecvError));
    }

    #[test]
    fn blocked_receiver_woken_by_sender_drop() {
        let (r, _) = sim::run(cfg(2), || {
            let (tx, rx) = channel::<u8>();
            fork(ProcId(1), "producer", move || {
                ctx::advance(Duration::millis(1));
                drop(tx);
            });
            rx.recv()
        })
        .unwrap();
        assert_eq!(r, Err(RecvError));
    }

    #[test]
    fn try_recv_and_drain() {
        let (out, _) = sim::run(cfg(1), || {
            let (tx, rx) = channel::<u8>();
            assert_eq!(rx.try_recv(), None);
            tx.send(1);
            tx.send(2);
            tx.send(3);
            let first = rx.try_recv();
            let rest = rx.drain();
            (first, rest)
        })
        .unwrap();
        assert_eq!(out.0, Some(1));
        assert_eq!(out.1, vec![2, 3]);
    }

    #[test]
    fn multiple_producers() {
        let (sum, _) = sim::run(cfg(4), || {
            let (tx, rx) = channel::<u64>();
            for p in 1..4 {
                let txp = tx.clone();
                fork(ProcId(p), format!("p{p}"), move || {
                    for i in 0..10 {
                        txp.send(p as u64 * 100 + i);
                    }
                });
            }
            drop(tx);
            let mut sum = 0;
            let mut n = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
                n += 1;
            }
            assert_eq!(n, 30);
            sum
        })
        .unwrap();
        let expected: u64 = (1..4u64).map(|p| (0..10).map(|i| p * 100 + i).sum::<u64>()).sum();
        assert_eq!(sum, expected);
    }
}
