//! # thread-monitor
//!
//! The monitoring substrate of the adaptive-objects paper: a
//! general-purpose thread monitor in the style of \[GS93\] with
//! insertable sensors/probes, bounded per-thread trace buffers, a
//! loosely-coupled *local monitor* thread with central aggregation, and
//! the time-series capture used for the paper's locking-pattern figures
//! (Figures 4–9).
//!
//! The closely-coupled "customized lock monitor" the adaptive lock uses
//! lives inside `adaptive-locks` (inline sampling from the unlocking
//! thread); this crate provides the general machinery and the tools to
//! compare both couplings (delivery-lag accounting in
//! [`SensorSummary::mean_lag_nanos`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod central;
mod chrome;
mod local;
mod snapshot;
mod timeseries;
mod trace;

pub use central::{spawn_pipeline, CentralReport, ForwardingMonitor, SummaryBatch};
pub use chrome::ChromeTrace;
pub use local::{spawn_local_monitor, MonitorReport, Probe, ProbePort, SensorSummary};
pub use snapshot::{SnapshotSink, TextSnapshot};
pub use timeseries::{to_long_csv, Series};
pub use trace::{TraceBuffer, TraceEvent};

use adaptive_locks::{Lock, PatternSample};

/// Convert a lock's pattern trace (one sample per unlock) into a named
/// [`Series`] — the exact data behind the paper's Figures 4–9.
pub fn pattern_series(name: impl Into<String>, samples: &[PatternSample]) -> Series {
    Series::from_points(
        name,
        samples
            .iter()
            .map(|s| (s.at.as_nanos(), s.waiting as f64))
            .collect(),
    )
}

/// Drain a lock's trace into a series directly.
pub fn take_pattern_series(name: impl Into<String>, lock: &dyn Lock) -> Series {
    pattern_series(name, &lock.take_trace())
}
