//! Prometheus-style text snapshots.
//!
//! The Chrome-trace exporter answers "what happened over time"; this
//! module answers "what is true right now" in the de-facto standard
//! scrape format: one `name{label="value"} number` line per metric.
//! [`TextSnapshot`] is the builder (fed from [`Series`] tails, lock
//! stats, or arbitrary gauges) and [`SnapshotSink`] is the periodic
//! collector — a background thread that re-renders on an interval and
//! keeps the latest text available to whatever serves it (the control
//! plane's `snapshot` command, a file writer, a debug endpoint).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::timeseries::Series;

/// Builder for one point-in-time text exposition.
#[derive(Debug, Default, Clone)]
pub struct TextSnapshot {
    lines: Vec<String>,
}

impl TextSnapshot {
    /// An empty snapshot.
    pub fn new() -> TextSnapshot {
        TextSnapshot::default()
    }

    /// Add one gauge sample: `name{labels...} value`.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        let mut line = String::from(name);
        if !labels.is_empty() {
            line.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(k);
                line.push_str("=\"");
                // Minimal escaping per the exposition format.
                for c in v.chars() {
                    match c {
                        '\\' => line.push_str("\\\\"),
                        '"' => line.push_str("\\\""),
                        '\n' => line.push_str("\\n"),
                        c => line.push(c),
                    }
                }
                line.push('"');
            }
            line.push('}');
        }
        line.push(' ');
        // Integers render without a trailing `.0` so counters look like
        // counters.
        if value.fract() == 0.0 && value.abs() < 9e15 {
            line.push_str(&format!("{}", value as i64));
        } else {
            line.push_str(&format!("{value}"));
        }
        self.lines.push(line);
        self
    }

    /// Add the most recent value of a series as a gauge (no-op for an
    /// empty series).
    pub fn series_last(&mut self, name: &str, labels: &[(&str, &str)], series: &Series) -> &mut Self {
        if let Some(&(_, v)) = series.points.last() {
            self.gauge(name, labels, v);
        }
        self
    }

    /// Number of samples added.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Render the exposition text: lines sorted (stable scrape diffs),
    /// newline-terminated.
    pub fn render(&self) -> String {
        let mut lines = self.lines.clone();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// A periodic snapshot collector: re-runs `collect` every `interval`
/// on a background thread and retains the latest rendered text.
pub struct SnapshotSink {
    latest: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotSink {
    /// Spawn the collector. The first collection happens immediately,
    /// so [`SnapshotSink::latest`] is never empty after construction.
    pub fn spawn(
        interval: Duration,
        collect: impl Fn() -> TextSnapshot + Send + 'static,
    ) -> SnapshotSink {
        let latest = Arc::new(Mutex::new(collect().render()));
        let latest2 = Arc::clone(&latest);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                std::thread::park_timeout(interval);
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let text = collect().render();
                if let Ok(mut l) = latest2.lock() {
                    *l = text;
                }
            }
        });
        SnapshotSink {
            latest,
            stop,
            thread: Some(thread),
        }
    }

    /// The most recently rendered exposition text.
    pub fn latest(&self) -> String {
        match self.latest.lock() {
            Ok(l) => l.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Stop and join the collector.
    pub fn stop(mut self) {
        self.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn signal(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }
}

impl Drop for SnapshotSink {
    fn drop(&mut self) {
        self.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn gauges_render_sorted_prometheus_lines() {
        let mut s = TextSnapshot::new();
        s.gauge("lock_waiting", &[("lock", "b")], 3.0)
            .gauge("lock_waiting", &[("lock", "a")], 1.5)
            .gauge("up", &[], 1.0);
        let text = s.render();
        assert_eq!(
            text,
            "lock_waiting{lock=\"a\"} 1.5\nlock_waiting{lock=\"b\"} 3\nup 1\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = TextSnapshot::new();
        s.gauge("m", &[("path", "a\"b\\c")], 1.0);
        assert_eq!(s.render(), "m{path=\"a\\\"b\\\\c\"} 1\n");
    }

    #[test]
    fn series_last_takes_the_tail_sample() {
        let series = Series::from_points("w", vec![(1, 4.0), (9, 7.0), (5, 6.0)]);
        let mut s = TextSnapshot::new();
        s.series_last("lock_waiting", &[("lock", "w")], &series);
        assert_eq!(s.render(), "lock_waiting{lock=\"w\"} 7\n");
        let empty = Series::new("none");
        let before = s.len();
        s.series_last("x", &[], &empty);
        assert_eq!(s.len(), before, "empty series adds nothing");
    }

    #[test]
    fn sink_collects_periodically_and_serves_latest() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let sink = SnapshotSink::spawn(Duration::from_millis(1), move || {
            let mut s = TextSnapshot::new();
            s.gauge("ticks", &[], n2.fetch_add(1, Ordering::Relaxed) as f64);
            s
        });
        assert!(sink.latest().starts_with("ticks "), "collected immediately");
        // Wait until at least one periodic re-collection happened.
        while n.load(Ordering::Relaxed) < 3 {
            std::thread::yield_now();
        }
        sink.stop();
        assert!(n.load(Ordering::Relaxed) >= 3);
    }
}
