//! Trace events and bounded per-thread trace buffers.
//!
//! The general-purpose thread monitor \[GS93\] lets users insert data
//! collecting *sensors* and *probes* into an application. Application
//! threads deposit [`TraceEvent`]s into bounded buffers; a monitor thread
//! drains them. Overflow drops the oldest events and is counted — the
//! "information overload" phenomenon Section 3 warns about.

use std::collections::VecDeque;
use std::sync::Mutex;

use butterfly_sim::{ctx, ThreadId, VirtualTime};
use serde::Serialize;

/// One monitored datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// Virtual-time nanoseconds of the observation.
    pub at_nanos: u64,
    /// Observing thread.
    #[serde(skip)]
    pub thread: ThreadId,
    /// Sensor name.
    pub sensor: &'static str,
    /// Observed value.
    pub value: i64,
}

impl TraceEvent {
    /// Capture an event now, from inside a simulated thread.
    pub fn now(sensor: &'static str, value: i64) -> TraceEvent {
        TraceEvent {
            at_nanos: ctx::now().as_nanos(),
            thread: ctx::current(),
            sensor,
            value,
        }
    }

    /// The observation instant.
    pub fn at(&self) -> VirtualTime {
        VirtualTime(self.at_nanos)
    }
}

/// A bounded FIFO trace buffer with overflow accounting.
#[derive(Debug)]
pub struct TraceBuffer {
    inner: Mutex<BufferState>,
    capacity: usize,
}

#[derive(Debug)]
struct BufferState {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    deposited: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` undrained events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            inner: Mutex::new(BufferState {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
                deposited: 0,
            }),
            capacity,
        }
    }

    /// Deposit an event; drops the oldest on overflow.
    pub fn deposit(&self, ev: TraceEvent) {
        let mut s = self.inner.lock().unwrap();
        if s.events.len() == self.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        s.events.push_back(ev);
        s.deposited += 1;
    }

    /// Drain everything currently buffered.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.drain(..).collect()
    }

    /// Undrained event count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Events ever deposited.
    pub fn deposited(&self) -> u64 {
        self.inner.lock().unwrap().deposited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, SimConfig};

    #[test]
    fn deposit_and_drain_fifo() {
        let buf = TraceBuffer::new(8);
        for v in 0..3 {
            buf.deposit(TraceEvent {
                at_nanos: v as u64,
                thread: ThreadId(0),
                sensor: "x",
                value: v,
            });
        }
        let out = buf.drain();
        assert_eq!(out.iter().map(|e| e.value).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(buf.is_empty());
        assert_eq!(buf.deposited(), 3);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest() {
        let buf = TraceBuffer::new(2);
        for v in 0..5 {
            buf.deposit(TraceEvent {
                at_nanos: v as u64,
                thread: ThreadId(0),
                sensor: "x",
                value: v,
            });
        }
        assert_eq!(buf.dropped(), 3);
        let out = buf.drain();
        assert_eq!(out.iter().map(|e| e.value).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn capture_now_stamps_time_and_thread() {
        let ((ev, t0), _) = sim::run(SimConfig::butterfly(1), || {
            let t0 = ctx::now();
            ctx::advance(sim::Duration::micros(7));
            (TraceEvent::now("waiting", 3), t0)
        })
        .unwrap();
        assert_eq!(ev.at(), t0 + sim::Duration::micros(7));
        assert_eq!(ev.sensor, "waiting");
        assert_eq!(ev.value, 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
