//! The loosely-coupled monitor: a dedicated monitor thread on its own
//! processor, fed by application-thread probes.
//!
//! This reproduces the structure of the general-purpose thread monitor
//! \[GS93\] the paper started from: application threads send trace data
//! to a *local monitor* (a thread on a dedicated processor) which
//! performs low-level processing and forwards summaries to a *central
//! monitor*. The paper found this pipeline "too loosely coupled to be
//! used in adaptive lock objects" — observations arrive late — which is
//! why the adaptive lock's customized monitor samples inline instead.
//! Both are provided so the coupling trade-off is measurable.

use std::collections::HashMap;

use butterfly_sim::{ctx, Duration, ProcId, VirtualTime};
use cthreads::{channel_on, JoinHandle, Receiver, Sender};
use serde::Serialize;

use crate::trace::TraceEvent;

/// Per-sensor aggregate computed by the monitor thread.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SensorSummary {
    /// Observations received.
    pub count: u64,
    /// Minimum observed value.
    pub min: i64,
    /// Maximum observed value.
    pub max: i64,
    /// Mean observed value.
    pub mean: f64,
    /// Last observed value.
    pub last: i64,
    /// Mean delivery lag: virtual time between an observation being made
    /// and the monitor thread processing it.
    pub mean_lag_nanos: u64,
}

/// Final report of a local monitor run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MonitorReport {
    /// Aggregates keyed by sensor name.
    pub sensors: HashMap<&'static str, SensorSummary>,
    /// Total events processed.
    pub events: u64,
}

impl MonitorReport {
    /// Aggregate for one sensor.
    pub fn sensor(&self, name: &str) -> Option<&SensorSummary> {
        self.sensors.get(name)
    }
}

/// Application-side handle for depositing observations.
#[derive(Clone)]
pub struct ProbePort {
    tx: Sender<TraceEvent>,
}

impl ProbePort {
    /// Record `value` for `sensor` now (charged as one mailbox write).
    pub fn record(&self, sensor: &'static str, value: i64) {
        self.tx.send(TraceEvent::now(sensor, value));
    }
}

/// A named probe bound to a port — the "insertable sensor" of [GS93].
pub struct Probe {
    sensor: &'static str,
    port: ProbePort,
}

impl Probe {
    /// Create a probe for `sensor` on `port`.
    pub fn new(sensor: &'static str, port: ProbePort) -> Probe {
        Probe { sensor, port }
    }

    /// Record one observation.
    pub fn record(&self, value: i64) {
        self.port.record(self.sensor, value);
    }
}

/// Spawn a local monitor thread on `proc` (a *dedicated* processor in
/// the paper's setup). Returns the probe port for application threads
/// and a join handle yielding the final [`MonitorReport`].
///
/// `poll` is the monitor's processing period: it drains its mailbox, then
/// sleeps — the source of the loosely-coupled lag. The monitor exits when
/// every [`ProbePort`] clone has been dropped.
pub fn spawn_local_monitor(proc: ProcId, poll: Duration) -> (ProbePort, JoinHandle<MonitorReport>) {
    let (tx, rx): (Sender<TraceEvent>, Receiver<TraceEvent>) = channel_on(proc.node());
    let handle = cthreads::fork(proc, "local-monitor", move || run_monitor(rx, poll));
    (ProbePort { tx }, handle)
}

fn run_monitor(rx: Receiver<TraceEvent>, poll: Duration) -> MonitorReport {
    struct Acc {
        count: u64,
        min: i64,
        max: i64,
        sum: i64,
        last: i64,
        lag_sum: u64,
    }
    let mut accs: HashMap<&'static str, Acc> = HashMap::new();
    let mut events = 0u64;
    // Polling loop: the periodic drain is exactly what makes this
    // pipeline loosely coupled — observations sit in the mailbox for up
    // to one polling period before they are processed.
    loop {
        let batch = rx.drain();
        if batch.is_empty() && rx.is_closed() {
            break;
        }
        for ev in batch {
            process(&mut accs, &mut events, ev);
        }
        ctx::sleep(poll);
    }

    fn process(accs: &mut HashMap<&'static str, Acc>, events: &mut u64, ev: TraceEvent) {
        *events += 1;
        let lag = ctx::now().saturating_since(VirtualTime(ev.at_nanos)).as_nanos();
        let a = accs.entry(ev.sensor).or_insert(Acc {
            count: 0,
            min: i64::MAX,
            max: i64::MIN,
            sum: 0,
            last: 0,
            lag_sum: 0,
        });
        a.count += 1;
        a.min = a.min.min(ev.value);
        a.max = a.max.max(ev.value);
        a.sum += ev.value;
        a.last = ev.value;
        a.lag_sum += lag;
    }

    MonitorReport {
        sensors: accs
            .into_iter()
            .map(|(k, a)| {
                (
                    k,
                    SensorSummary {
                        count: a.count,
                        min: a.min,
                        max: a.max,
                        mean: a.sum as f64 / a.count as f64,
                        last: a.last,
                        mean_lag_nanos: a.lag_sum / a.count,
                    },
                )
            })
            .collect(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, SimConfig};
    use cthreads::fork;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn monitor_aggregates_observations() {
        let (report, _) = sim::run(cfg(2), || {
            let (port, handle) = spawn_local_monitor(ProcId(1), Duration::micros(100));
            for v in [3, 1, 7, 5] {
                port.record("waiting", v);
                ctx::advance(Duration::micros(50));
            }
            port.record("other", 42);
            drop(port);
            handle.join()
        })
        .unwrap();
        assert_eq!(report.events, 5);
        let w = report.sensor("waiting").unwrap();
        assert_eq!(w.count, 4);
        assert_eq!(w.min, 1);
        assert_eq!(w.max, 7);
        assert_eq!(w.last, 5);
        assert!((w.mean - 4.0).abs() < 1e-9);
        assert_eq!(report.sensor("other").unwrap().count, 1);
        assert!(report.sensor("missing").is_none());
    }

    #[test]
    fn loosely_coupled_monitor_lags_observations() {
        // With a slow polling period, mean delivery lag must be visible —
        // the phenomenon that motivated the closely-coupled lock monitor.
        let (report, _) = sim::run(cfg(2), || {
            let (port, handle) = spawn_local_monitor(ProcId(1), Duration::millis(5));
            for v in 0..20 {
                port.record("waiting", v);
                ctx::advance(Duration::micros(200));
            }
            drop(port);
            handle.join()
        })
        .unwrap();
        let w = report.sensor("waiting").unwrap();
        assert!(
            w.mean_lag_nanos > 500_000,
            "expected visible lag, got {}ns",
            w.mean_lag_nanos
        );
    }

    #[test]
    fn probes_from_multiple_threads() {
        let (report, _) = sim::run(cfg(4), || {
            let (port, handle) = spawn_local_monitor(ProcId(3), Duration::micros(100));
            let workers: Vec<_> = (0..3)
                .map(|p| {
                    let probe = Probe::new("load", port.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        for i in 0..10 {
                            probe.record(i);
                            ctx::advance(Duration::micros(30));
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            drop(port);
            handle.join()
        })
        .unwrap();
        assert_eq!(report.sensor("load").unwrap().count, 30);
    }
}
