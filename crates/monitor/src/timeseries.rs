//! Time series for the paper's locking-pattern figures.
//!
//! Figures 4–9 plot `no-of-waiting-threads` against time for specific
//! locks in each TSP implementation. [`Series`] holds such a curve,
//! supports bucketed resampling (the paper's plots are effectively
//! smoothed), and renders to CSV or a quick ASCII sparkline for terminal
//! reports.

use serde::Serialize;

/// A named (time, value) series; time in virtual nanoseconds.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label, e.g. `qlock/centralized`.
    pub name: String,
    /// Ordered samples `(at_nanos, value)`.
    pub points: Vec<(u64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Build from `(at_nanos, value)` pairs.
    pub fn from_points(name: impl Into<String>, points: Vec<(u64, f64)>) -> Series {
        let mut s = Series {
            name: name.into(),
            points,
        };
        s.points.sort_by_key(|&(t, _)| t);
        s
    }

    /// Append a sample (must be called in time order for plotting
    /// helpers to be meaningful; out-of-order appends are sorted at use).
    pub fn push(&mut self, at_nanos: u64, value: f64) {
        self.points.push((at_nanos, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max)
    }

    /// Mean-of-bucket resampling with buckets of `bucket_nanos`. Empty
    /// buckets are omitted.
    pub fn bucket_mean(&self, bucket_nanos: u64) -> Series {
        assert!(bucket_nanos > 0, "bucket width must be positive");
        let mut out = Series::new(self.name.clone());
        if self.points.is_empty() {
            return out;
        }
        let mut pts = self.points.clone();
        pts.sort_by_key(|&(t, _)| t);
        let mut bucket = pts[0].0 / bucket_nanos;
        let (mut sum, mut n) = (0.0, 0u64);
        for (t, v) in pts {
            let b = t / bucket_nanos;
            if b != bucket {
                out.push(bucket * bucket_nanos, sum / n as f64);
                bucket = b;
                sum = 0.0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        out.push(bucket * bucket_nanos, sum / n as f64);
        out
    }

    /// Render as `time_ms,value` CSV (header included).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_ms,value\n");
        for &(t, v) in &self.points {
            s.push_str(&format!("{:.3},{}\n", t as f64 / 1e6, v));
        }
        s
    }

    /// A terminal sparkline of `width` buckets (for quick looks at
    /// locking patterns in bench output).
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.points.is_empty() || width == 0 {
            return String::new();
        }
        let t0 = self.points.iter().map(|&(t, _)| t).min().unwrap();
        let t1 = self.points.iter().map(|&(t, _)| t).max().unwrap();
        let span = (t1 - t0).max(1);
        let mut sums = vec![0.0; width];
        let mut counts = vec![0u64; width];
        for &(t, v) in &self.points {
            let i = (((t - t0) as u128 * (width as u128 - 1)) / span as u128) as usize;
            sums[i] += v;
            counts[i] += 1;
        }
        let vals: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
            .collect();
        let max = vals.iter().copied().filter(|v| v.is_finite()).fold(0.0_f64, f64::max);
        vals.iter()
            .map(|&v| {
                if !v.is_finite() {
                    ' '
                } else if max == 0.0 {
                    BARS[0]
                } else {
                    BARS[((v / max * 7.0).round() as usize).min(7)]
                }
            })
            .collect()
    }
}

/// Write several series as a single long-format CSV
/// (`series,time_ms,value`).
pub fn to_long_csv(series: &[Series]) -> String {
    let mut s = String::from("series,time_ms,value\n");
    for sr in series {
        for &(t, v) in &sr.points {
            s.push_str(&format!("{},{:.3},{}\n", sr.name, t as f64 / 1e6, v));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::from_points("test", vec![(0, 1.0), (500, 3.0), (1_000, 5.0), (1_500, 7.0)])
    }

    #[test]
    fn stats() {
        let s = series();
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 4.0).abs() < 1e-9);
        assert_eq!(s.max(), 7.0);
        assert!(!s.is_empty());
        assert_eq!(Series::new("e").mean(), 0.0);
    }

    #[test]
    fn bucketing_averages_within_buckets() {
        let b = series().bucket_mean(1_000);
        assert_eq!(b.points.len(), 2);
        assert_eq!(b.points[0], (0, 2.0)); // mean of 1.0 and 3.0
        assert_eq!(b.points[1], (1_000, 6.0)); // mean of 5.0 and 7.0
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = series().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "time_ms,value");
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("0.000,1"));
    }

    #[test]
    fn long_csv_includes_series_names() {
        let csv = to_long_csv(&[series(), Series::from_points("b", vec![(1, 9.0)])]);
        assert!(csv.contains("test,"));
        assert!(csv.contains("b,"));
    }

    #[test]
    fn sparkline_has_requested_width() {
        let sl = series().sparkline(8);
        assert_eq!(sl.chars().count(), 8);
        // Rising series: last bucket is the full bar.
        assert_eq!(sl.chars().last().unwrap(), '█');
    }

    #[test]
    fn from_points_sorts() {
        let s = Series::from_points("x", vec![(10, 1.0), (5, 2.0)]);
        assert_eq!(s.points[0].0, 5);
    }
}
