//! The central monitor: the top of the [GS93] pipeline.
//!
//! Application threads deposit observations with *local monitors* (one
//! per processor group, each on its own processor); local monitors
//! periodically forward per-sensor summaries to a single *central
//! monitor* ("possibly running in a remote machine" in the paper — here,
//! a thread on a designated node whose mailbox traffic pays remote
//! reference costs). The central monitor merges summaries into a
//! machine-wide view.

use std::collections::HashMap;

use butterfly_sim::{ctx, Duration, ProcId};
use cthreads::{channel_on, JoinHandle, Receiver, Sender};
use serde::Serialize;

use crate::local::SensorSummary;
use crate::trace::TraceEvent;

/// A summary batch forwarded by one local monitor.
#[derive(Debug, Clone, Serialize)]
pub struct SummaryBatch {
    /// Which local monitor sent it.
    pub source: usize,
    /// Per-sensor partial aggregates: (count, min, max, sum, last).
    pub sensors: Vec<(&'static str, u64, i64, i64, i64, i64)>,
}

/// The machine-wide aggregation produced by the central monitor.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CentralReport {
    /// Merged aggregates keyed by sensor name.
    pub sensors: HashMap<&'static str, SensorSummary>,
    /// Batches received.
    pub batches: u64,
    /// Local monitors that reported.
    pub sources: usize,
}

impl CentralReport {
    /// Merged aggregate for one sensor.
    pub fn sensor(&self, name: &str) -> Option<&SensorSummary> {
        self.sensors.get(name)
    }
}

/// A local monitor stage that forwards to the central monitor.
pub struct ForwardingMonitor {
    tx: Sender<TraceEvent>,
}

impl ForwardingMonitor {
    /// Deposit an observation (one charged mailbox write).
    pub fn record(&self, sensor: &'static str, value: i64) {
        self.tx.send(TraceEvent::now(sensor, value));
    }
}

impl Clone for ForwardingMonitor {
    fn clone(&self) -> Self {
        ForwardingMonitor {
            tx: self.tx.clone(),
        }
    }
}

/// Spawn a two-level monitoring pipeline: one local monitor on each
/// processor in `local_procs` (forwarding summaries every `period`) and
/// the central monitor on `central_proc`. Returns one deposit port per
/// local monitor and the central join handle.
pub fn spawn_pipeline(
    local_procs: &[ProcId],
    central_proc: ProcId,
    period: Duration,
) -> (Vec<ForwardingMonitor>, JoinHandle<CentralReport>) {
    let (ctx_tx, ctx_rx): (Sender<SummaryBatch>, Receiver<SummaryBatch>) =
        channel_on(central_proc.node());

    let mut ports = Vec::with_capacity(local_procs.len());
    for (i, &proc) in local_procs.iter().enumerate() {
        let (tx, rx): (Sender<TraceEvent>, Receiver<TraceEvent>) = channel_on(proc.node());
        let up = ctx_tx.clone();
        cthreads::fork(proc, format!("local-monitor{i}"), move || {
            run_local(i, rx, up, period)
        });
        ports.push(ForwardingMonitor { tx });
    }
    drop(ctx_tx);

    let central = cthreads::fork(central_proc, "central-monitor", move || {
        run_central(ctx_rx)
    });
    (ports, central)
}

/// Local stage: drain deposits, accumulate, forward a batch per period.
fn run_local(
    id: usize,
    rx: Receiver<TraceEvent>,
    up: Sender<SummaryBatch>,
    period: Duration,
) {
    let mut acc: HashMap<&'static str, (u64, i64, i64, i64, i64)> = HashMap::new();
    loop {
        let batch = rx.drain();
        let closed = batch.is_empty() && rx.is_closed();
        for ev in batch {
            let e = acc.entry(ev.sensor).or_insert((0, i64::MAX, i64::MIN, 0, 0));
            e.0 += 1;
            e.1 = e.1.min(ev.value);
            e.2 = e.2.max(ev.value);
            e.3 += ev.value;
            e.4 = ev.value;
        }
        if !acc.is_empty() {
            up.send(SummaryBatch {
                source: id,
                sensors: acc
                    .drain()
                    .map(|(k, (c, mn, mx, sum, last))| (k, c, mn, mx, sum, last))
                    .collect(),
            });
        }
        if closed {
            break;
        }
        ctx::sleep(period);
    }
}

/// Central stage: merge batches until every local monitor is gone.
fn run_central(rx: Receiver<SummaryBatch>) -> CentralReport {
    struct Acc {
        count: u64,
        min: i64,
        max: i64,
        sum: i64,
        last: i64,
    }
    let mut accs: HashMap<&'static str, Acc> = HashMap::new();
    let mut batches = 0u64;
    let mut sources = std::collections::HashSet::new();
    while let Ok(batch) = rx.recv() {
        batches += 1;
        sources.insert(batch.source);
        for (sensor, c, mn, mx, sum, last) in batch.sensors {
            let a = accs.entry(sensor).or_insert(Acc {
                count: 0,
                min: i64::MAX,
                max: i64::MIN,
                sum: 0,
                last: 0,
            });
            a.count += c;
            a.min = a.min.min(mn);
            a.max = a.max.max(mx);
            a.sum += sum;
            a.last = last;
        }
    }
    CentralReport {
        sensors: accs
            .into_iter()
            .map(|(k, a)| {
                (
                    k,
                    SensorSummary {
                        count: a.count,
                        min: a.min,
                        max: a.max,
                        mean: a.sum as f64 / a.count.max(1) as f64,
                        last: a.last,
                        mean_lag_nanos: 0, // lag is a local-stage metric
                    },
                )
            })
            .collect(),
        batches,
        sources: sources.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, SimConfig};
    use cthreads::fork;

    #[test]
    fn two_level_pipeline_aggregates_across_sources() {
        let (report, _) = sim::run(SimConfig::butterfly(6), || {
            // Local monitors on procs 3 and 4, central on proc 5.
            let (ports, central) = spawn_pipeline(
                &[ProcId(3), ProcId(4)],
                ProcId(5),
                Duration::micros(200),
            );
            let workers: Vec<_> = (0..3)
                .map(|p| {
                    let port = ports[p % 2].clone();
                    fork(ProcId(p), format!("w{p}"), move || {
                        for i in 0..10 {
                            port.record("waiting", i);
                            ctx::advance(Duration::micros(40));
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            drop(ports);
            central.join()
        })
        .unwrap();
        let w = report.sensor("waiting").unwrap();
        assert_eq!(w.count, 30, "all three workers' deposits must arrive");
        assert_eq!(w.min, 0);
        assert_eq!(w.max, 9);
        assert!((w.mean - 4.5).abs() < 1e-9);
        assert_eq!(report.sources, 2, "both local monitors must report");
        assert!(report.batches >= 2);
    }

    #[test]
    fn pipeline_with_single_stage_still_terminates() {
        let (report, _) = sim::run(SimConfig::butterfly(3), || {
            let (ports, central) =
                spawn_pipeline(&[ProcId(1)], ProcId(2), Duration::micros(100));
            ports[0].record("x", 7);
            drop(ports);
            central.join()
        })
        .unwrap();
        assert_eq!(report.sensor("x").unwrap().count, 1);
        assert_eq!(report.sensor("x").unwrap().last, 7);
    }
}
