//! Chrome-trace export: render a simulation run as a `chrome://tracing`
//! / Perfetto-compatible JSON file, with one row per simulated thread
//! and optional counter tracks for lock waiting patterns.

use butterfly_sim::SimReport;
use serde::Serialize;

use crate::timeseries::Series;

#[derive(Serialize)]
struct TraceEventJson {
    name: String,
    ph: &'static str,
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u32,
    tid: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<serde_json::Value>,
}

/// Builder for a Chrome-trace document.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<TraceEventJson>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Add one complete-span row per simulated thread (spawn → finish).
    pub fn add_thread_spans(&mut self, report: &SimReport) -> &mut Self {
        for (i, span) in report.thread_spans.iter().enumerate() {
            let start_us = span.spawned_at.as_nanos() as f64 / 1e3;
            let end_us = span
                .finished_at
                .map(|t| t.as_nanos() as f64 / 1e3)
                .unwrap_or(report.end_time.as_nanos() as f64 / 1e3);
            self.events.push(TraceEventJson {
                name: span.name.clone(),
                ph: "X",
                ts: start_us,
                dur: Some((end_us - start_us).max(0.0)),
                pid: 1,
                tid: i as u32,
                args: None,
            });
        }
        self
    }

    /// Add a counter track from a time series (e.g. a lock's waiting
    /// pattern).
    pub fn add_counter(&mut self, series: &Series) -> &mut Self {
        for &(t, v) in &series.points {
            self.events.push(TraceEventJson {
                name: series.name.clone(),
                ph: "C",
                ts: t as f64 / 1e3,
                dur: None,
                pid: 1,
                tid: 0,
                args: Some(serde_json::json!({ "waiting": v })),
            });
        }
        self
    }

    /// Add an instant event (a vertical marker in the trace viewer) —
    /// used for discrete occurrences like a circuit-breaker transition,
    /// with `detail` shown in the event's args.
    pub fn add_instant(&mut self, name: impl Into<String>, at_nanos: u64, detail: &str) -> &mut Self {
        self.events.push(TraceEventJson {
            name: name.into(),
            ph: "i",
            ts: at_nanos as f64 / 1e3,
            dur: None,
            pid: 1,
            tid: 0,
            args: Some(serde_json::json!({ "detail": detail })),
        });
        self
    }

    /// Number of events accumulated.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the Chrome trace-event JSON array format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events).expect("trace serialization")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, ctx, Duration, ProcId, SimConfig};

    #[test]
    fn thread_spans_become_complete_events() {
        let (_, report) = sim::run(SimConfig::butterfly(2), || {
            let h = cthreads::fork(ProcId(1), "worker", || {
                ctx::advance(Duration::micros(100));
            });
            h.join();
        })
        .unwrap();
        let mut tr = ChromeTrace::new();
        tr.add_thread_spans(&report);
        assert_eq!(tr.len(), report.thread_spans.len());
        let json = tr.to_json();
        assert!(json.contains("\"worker\""));
        assert!(json.contains("\"ph\": \"X\""));
        // Valid JSON round trip.
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.as_array().unwrap().len() >= 2);
    }

    #[test]
    fn counter_tracks_carry_values() {
        let s = Series::from_points("qlock", vec![(1_000, 3.0), (2_000, 5.0)]);
        let mut tr = ChromeTrace::new();
        tr.add_counter(&s);
        assert_eq!(tr.len(), 2);
        let json = tr.to_json();
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"waiting\": 5.0") || json.contains("\"waiting\":5.0"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let tr = ChromeTrace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.to_json(), "[]");
    }
}
