//! # adaptive-service
//!
//! The paper's claim, taken to service scale: a sharded in-memory
//! KV/counter store where **every shard is guarded by its own
//! [`AdaptiveMutex`](adaptive_native::AdaptiveMutex)** — so per-object
//! lock configuration can diverge with per-shard load, which a single
//! global lock choice cannot do.
//!
//! Three adaptive mechanisms stack on the plain sharded store:
//!
//! * **Per-shard policy divergence** — each shard lock runs
//!   [`HotShardPolicy`] (or any static
//!   [`PolicyChoice`](adaptive_native::PolicyChoice)); under Zipfian
//!   skew the hot shards observably settle on different engines and
//!   spin attributes than the cold ones ([`divergence`] asserts this
//!   from stats, not vibes).
//! * **Hot-shard write batching** — every mutation goes through the
//!   mutex's `with_locked` op-shipping path, so when a hot shard's
//!   policy installs the flat-combining engine, queued writes are
//!   batched through a single combiner pass instead of a handoff
//!   per op.
//! * **Resharding** — [`ShardedStore::maintenance`] splits a shard
//!   (extendible-hashing style: local depth + directory doubling) when
//!   its contended-acquisition rate crosses a threshold, halving the
//!   load the hottest lock sees.
//!
//! The store integrates with the PR 8 control plane: pass a
//! [`BreakerHub`](adaptive_control::BreakerHub) and every shard lock is
//! registered (and retired shards unregistered) by name, so breakers,
//! the socket command router, and snapshot sinks see shard locks like
//! any other supervised lock.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::unwrap_used)]

mod policy;
mod router;
mod store;

pub use policy::HotShardPolicy;
pub use router::{scramble, ShardRouter};
pub use store::{
    divergence, DivergenceVerdict, ServiceConfig, ShardSnapshot, ShardedStore, ServicePolicy,
};
