//! The sharded store: an extendible-hashing directory of shards, each
//! guarded by its own `AdaptiveMutex`.
//!
//! ## Concurrency protocol
//!
//! The directory (`RwLock<Vec<Arc<Shard>>>`) and the shard locks are
//! never held together by an operation: an op reads the directory,
//! clones the routed shard's `Arc`, **drops the directory guard**, and
//! only then takes the shard lock. A shard found `retired` means a
//! split raced the routing — the op re-reads the directory and retries
//! (the rewire is a handful of pointer stores, so the window is tiny).
//!
//! A split holds the shard lock only to mark it retired and take its
//! contents, releases it, then takes the directory write lock to
//! rewire. Since no op holds directory-then-shard, the two lock levels
//! cannot deadlock.
//!
//! ## Resharding
//!
//! Classic extendible hashing: the directory has `2^global_depth`
//! slots indexed by the low bits of the mixed hash; each shard carries
//! a `local_depth ≤ global_depth` and owns every slot whose low
//! `local_depth` bits match. Splitting partitions the shard's keys on
//! hash bit `local_depth`, doubling the directory first if
//! `local_depth == global_depth`. [`ShardedStore::maintenance`] splits
//! any shard whose *contended-acquisition ratio* crossed the configured
//! threshold — the lock's own contention statistics, not key counts,
//! decide where more parallelism is needed.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use adaptive_control::BreakerHub;
use adaptive_native::{AdaptiveMutex, LockAlgorithm, PolicyChoice};
use serde::Serialize;

use crate::policy::HotShardPolicy;
use crate::router::{scramble, ShardRouter};

/// How each shard's lock is configured.
#[derive(Debug, Clone, Copy)]
pub enum ServicePolicy {
    /// Every shard gets the same fixed configuration — the baseline the
    /// adaptive layer must beat.
    Static(PolicyChoice),
    /// Every shard runs [`HotShardPolicy`]: attribute tuning while
    /// cold, flat-combining write batching while hot.
    HotShard {
        /// Waiting level that marks a shard hot.
        high_water: u64,
        /// Consecutive samples before migrating (both directions).
        patience: u32,
    },
}

impl ServicePolicy {
    /// Row label for reports.
    pub fn label(&self) -> String {
        match self {
            ServicePolicy::Static(p) => p.label(),
            ServicePolicy::HotShard { .. } => "hot-shard".into(),
        }
    }

    fn build(&self, data: ShardData) -> AdaptiveMutex<ShardData> {
        match *self {
            ServicePolicy::Static(p) => p.build_mutex(data),
            ServicePolicy::HotShard { high_water, patience } => AdaptiveMutex::with_policy(
                data,
                Box::new(HotShardPolicy::new(high_water, patience)),
                2,
            ),
        }
    }

    /// Build the lock for a split child: adaptive children inherit the
    /// parent's installed engine (a hot shard's halves are still hot —
    /// resetting them to spin-park would un-batch the hottest keys
    /// exactly when batching pays), while static children stay whatever
    /// the static choice dictates.
    fn build_child(&self, data: ShardData, parent: LockAlgorithm) -> AdaptiveMutex<ShardData> {
        match *self {
            ServicePolicy::Static(_) => self.build(data),
            ServicePolicy::HotShard { high_water, patience } => {
                let m = AdaptiveMutex::with_policy(
                    data,
                    Box::new(HotShardPolicy::starting(high_water, patience, parent)),
                    2,
                );
                // The lock is unshared until the directory rewire
                // publishes it, so the switch installs immediately.
                m.set_algorithm(parent);
                m
            }
        }
    }
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Initial directory depth: the store starts with `2^initial_depth`
    /// shards.
    pub initial_depth: u32,
    /// No shard ever exceeds this local depth (caps the shard count at
    /// `2^max_depth`).
    pub max_depth: u32,
    /// Split a shard once its contended-acquisition *rate* — contended
    /// acquisitions per second, measured between maintenance passes —
    /// reaches this. A rate, not a ratio: on an oversubscribed host the
    /// contended *fraction* stays tiny everywhere (contention appears
    /// only at preemption boundaries), but hot shards still rack up
    /// contended events orders of magnitude faster than cold ones.
    pub split_contended_per_sec: f64,
    /// ... but only after it has absorbed this many acquisitions
    /// (don't split on startup noise).
    pub split_min_acquisitions: u64,
    /// ... and only while its contended rate is at least this multiple
    /// of the mean rate across all shards. Splitting answers *skew*:
    /// a uniformly busy store gains nothing from more shards (every
    /// split briefly retires a shard mid-run), so uniform contention —
    /// however high in absolute terms — must not cascade the whole
    /// directory to `max_depth`. Zero disables the gate. A store with
    /// a single shard has no imbalance to measure and always passes.
    pub split_imbalance_factor: f64,
    /// ... held for this many *consecutive* maintenance passes. One
    /// pass's rates are a handful of events on a short window — on a
    /// saturated host they concentrate on whichever shards sat at a
    /// scheduler slice boundary, so any single window shows some shard
    /// far above the mean and the imbalance gate alone would still
    /// cascade. Genuine skew re-elects the same shard pass after pass;
    /// noise rotates. Values ≤ 1 split on the first qualifying pass.
    pub split_sustain: u32,
    /// Per-shard lock policy.
    pub policy: ServicePolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            initial_depth: 3,
            max_depth: 8,
            split_contended_per_sec: 50.0,
            split_min_acquisitions: 10_000,
            split_imbalance_factor: 3.0,
            split_sustain: 3,
            policy: ServicePolicy::HotShard { high_water: 3, patience: 2 },
        }
    }
}

/// What a shard lock protects.
struct ShardData {
    map: HashMap<u64, u64>,
    /// Set by a split after the contents were taken; routes that still
    /// reach this shard must retry through the (rewired) directory.
    retired: bool,
}

/// One shard: an immutable identity plus the guarded data.
struct Shard {
    id: u64,
    local_depth: u32,
    lock: Arc<AdaptiveMutex<ShardData>>,
    /// Contended-acquisition count as of the last maintenance pass;
    /// the baseline for the per-second split-rate computation.
    seen_contended: AtomicU64,
    /// Consecutive maintenance passes this shard's contended rate has
    /// satisfied every split gate (see `ServiceConfig::split_sustain`).
    split_streak: AtomicU32,
}

impl Shard {
    fn name(&self) -> String {
        format!("shard-{}", self.id)
    }
}

/// Point-in-time view of one shard: identity, occupancy, and the lock
/// configuration its policy has settled on — the evidence rows for the
/// hot-vs-cold divergence verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// Registry name (`shard-<id>`).
    pub name: String,
    /// Extendible-hashing local depth.
    pub local_depth: u32,
    /// Live keys.
    pub keys: usize,
    /// Engine currently installed on the shard lock.
    pub algorithm: String,
    /// Current spin attribute.
    pub spin_limit: u32,
    /// Waiters at snapshot time.
    pub waiting: u32,
    /// Total lock acquisitions — the load ranking.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Times a waiter fully parked.
    pub parked: u64,
    /// Critical sections executed for other threads by a combining
    /// drain — direct evidence of write batching.
    pub combined_ops: u64,
    /// Engine migrations installed on this lock.
    pub algorithm_switches: u64,
    /// Attribute retunes applied by the feedback loop.
    pub reconfigurations: u64,
}

/// The hot-vs-cold divergence verdict, computed from shard snapshots:
/// did the busiest and idlest shards actually settle on different lock
/// configurations?
#[derive(Debug, Clone, Serialize)]
pub struct DivergenceVerdict {
    /// Busiest shard (most acquisitions).
    pub hot_name: String,
    /// Its engine.
    pub hot_algorithm: String,
    /// Its spin attribute.
    pub hot_spin_limit: u32,
    /// Its acquisition count.
    pub hot_acquisitions: u64,
    /// Idlest shard (fewest acquisitions).
    pub cold_name: String,
    /// Its engine.
    pub cold_algorithm: String,
    /// Its spin attribute.
    pub cold_spin_limit: u32,
    /// Its acquisition count.
    pub cold_acquisitions: u64,
    /// Distinct engines across all shards.
    pub engines: Vec<String>,
    /// True when hot and cold settled on different engines or
    /// different spin attributes.
    pub diverged: bool,
}

/// Compute the divergence verdict over a set of shard snapshots.
pub fn divergence(snapshots: &[ShardSnapshot]) -> Option<DivergenceVerdict> {
    let hot = snapshots.iter().max_by_key(|s| s.acquisitions)?;
    let cold = snapshots.iter().min_by_key(|s| s.acquisitions)?;
    let engines: BTreeSet<&str> = snapshots.iter().map(|s| s.algorithm.as_str()).collect();
    Some(DivergenceVerdict {
        hot_name: hot.name.clone(),
        hot_algorithm: hot.algorithm.clone(),
        hot_spin_limit: hot.spin_limit,
        hot_acquisitions: hot.acquisitions,
        cold_name: cold.name.clone(),
        cold_algorithm: cold.algorithm.clone(),
        cold_spin_limit: cold.spin_limit,
        cold_acquisitions: cold.acquisitions,
        engines: engines.iter().map(|e| e.to_string()).collect(),
        diverged: hot.algorithm != cold.algorithm || hot.spin_limit != cold.spin_limit,
    })
}

/// The sharded KV/counter store. See the module docs for the
/// concurrency protocol.
pub struct ShardedStore {
    dir: RwLock<Vec<Arc<Shard>>>,
    config: ServiceConfig,
    next_id: AtomicU64,
    splits: AtomicU64,
    hub: Mutex<Option<Arc<BreakerHub>>>,
    last_maintenance: Mutex<Instant>,
}

impl ShardedStore {
    /// An empty store with `2^initial_depth` shards.
    pub fn new(config: ServiceConfig) -> ShardedStore {
        let depth = config.initial_depth.min(config.max_depth);
        let next_id = AtomicU64::new(0);
        let shards: Vec<Arc<Shard>> = (0..1u64 << depth)
            .map(|_| {
                Arc::new(Shard {
                    id: next_id.fetch_add(1, Ordering::Relaxed),
                    local_depth: depth,
                    lock: Arc::new(config.policy.build(ShardData {
                        map: HashMap::new(),
                        retired: false,
                    })),
                    seen_contended: AtomicU64::new(0),
                    split_streak: AtomicU32::new(0),
                })
            })
            .collect();
        ShardedStore {
            dir: RwLock::new(shards),
            config,
            next_id,
            splits: AtomicU64::new(0),
            hub: Mutex::new(None),
            last_maintenance: Mutex::new(Instant::now()),
        }
    }

    fn read_dir(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<Shard>>> {
        match self.dir.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn write_dir(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Arc<Shard>>> {
        match self.dir.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn router(&self) -> ShardRouter {
        ShardRouter::new(self.read_dir().len().trailing_zeros())
    }

    fn shard_for(&self, key: u64) -> Arc<Shard> {
        let dir = self.read_dir();
        let slot = (scramble(key) & (dir.len() as u64 - 1)) as usize;
        Arc::clone(&dir[slot])
    }

    fn shard_at(&self, slot: usize) -> Option<Arc<Shard>> {
        let dir = self.read_dir();
        dir.get(slot).map(Arc::clone)
    }

    /// Run `f` on the shard owning `key`, retrying through the
    /// directory if a split retired the routed shard mid-flight.
    fn with_key_shard<R: Send>(
        &self,
        key: u64,
        f: impl Fn(&mut HashMap<u64, u64>) -> R + Send + Sync,
    ) -> R {
        loop {
            let shard = self.shard_for(key);
            let fr = &f;
            let done = shard
                .lock
                .with_locked(move |data| if data.retired { None } else { Some(fr(&mut data.map)) });
            if let Some(r) = done {
                return r;
            }
            // The routed shard is retired: its keys are being
            // partitioned right now on another thread. Yield rather
            // than spin — on a saturated host a spin loop here steals
            // the timeslice the partitioner needs to finish.
            std::thread::yield_now();
        }
    }

    /// Like `with_key_shard` for one-shot closures: the
    /// op moves into the critical section and is executed exactly once
    /// — a routed-to-retired shard returns it un-run for the retry.
    fn with_key_shard_once<R, F>(&self, key: u64, mut f: F) -> R
    where
        R: Send,
        F: FnOnce(&mut HashMap<u64, u64>) -> R + Send,
    {
        loop {
            let shard = self.shard_for(key);
            let done = shard.lock.with_locked(
                move |data| {
                    if data.retired {
                        Err(f)
                    } else {
                        Ok(f(&mut data.map))
                    }
                },
            );
            match done {
                Ok(r) => return r,
                Err(back) => {
                    f = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Read a key.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.with_key_shard(key, move |m| m.get(&key).copied())
    }

    /// Write a key; returns the previous value.
    pub fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.with_key_shard(key, move |m| m.insert(key, value))
    }

    /// Add `by` to a counter key (missing counters start at 0); returns
    /// the new value. On a flat-combining hot shard these ship as ops
    /// and are executed in batches by a single combiner.
    pub fn increment(&self, key: u64, by: u64) -> u64 {
        self.with_key_shard(key, move |m| {
            let v = m.entry(key).or_insert(0);
            *v = v.wrapping_add(by);
            *v
        })
    }

    /// Read `key` through `f` inside the shard critical section: `f`
    /// sees the current value (or `None`) and computes the response
    /// while the record is pinned. This is the knob every other
    /// workload in this workspace exposes as `cs_iters` — the request
    /// processing a real service does under the lock (decode,
    /// validate, serialize). Runs exactly once.
    pub fn read<R: Send>(&self, key: u64, f: impl FnOnce(Option<u64>) -> R + Send) -> R {
        self.with_key_shard_once(key, move |m| f(m.get(&key).copied()))
    }

    /// Read-modify-write `key` inside the shard critical section: `f`
    /// maps the current value (or `None`) to the new value, which is
    /// stored and returned. Like [`ShardedStore::read`], the closure is
    /// where a workload models per-request work done under the lock.
    /// Runs exactly once.
    pub fn update(&self, key: u64, f: impl FnOnce(Option<u64>) -> u64 + Send) -> u64 {
        self.with_key_shard_once(key, move |m| {
            let v = f(m.get(&key).copied());
            m.insert(key, v);
            v
        })
    }

    /// Fold over every key/value pair, shard by shard (each shard
    /// visited atomically under its lock; the whole scan is not a
    /// snapshot — run it at quiescence when exact totals matter).
    pub fn scan<A: Send>(&self, mut acc: A, f: impl Fn(&mut A, u64, u64) + Send + Sync) -> A {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut slot = 0usize;
        while let Some(shard) = self.shard_at(slot) {
            if seen.contains(&shard.id) {
                slot += 1;
                continue;
            }
            let fr = &f;
            let acc_ref = &mut acc;
            let visited = shard.lock.with_locked(move |data| {
                if data.retired {
                    return false;
                }
                for (&k, &v) in &data.map {
                    fr(acc_ref, k, v);
                }
                true
            });
            if visited {
                seen.insert(shard.id);
                slot += 1;
            }
            // A retired shard means a split is rewiring this slot;
            // re-read it until the child appears.
        }
        acc
    }

    /// Total number of live keys.
    pub fn len(&self) -> usize {
        self.scan(0usize, |n, _, _| *n += 1)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of every value — the conservation oracle for counter
    /// workloads.
    pub fn total(&self) -> u128 {
        self.scan(0u128, |t, _, v| *t += u128::from(v))
    }

    /// Distinct shards currently wired into the directory.
    pub fn shard_count(&self) -> usize {
        self.distinct_shards().len()
    }

    /// Splits performed since creation.
    pub fn splits(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }

    /// Current directory slot count (`2^global_depth`).
    pub fn slots(&self) -> usize {
        self.read_dir().len()
    }

    fn distinct_shards(&self) -> Vec<Arc<Shard>> {
        let dir = self.read_dir();
        let mut by_id: BTreeMap<u64, Arc<Shard>> = BTreeMap::new();
        for shard in dir.iter() {
            by_id.entry(shard.id).or_insert_with(|| Arc::clone(shard));
        }
        by_id.into_values().collect()
    }

    /// Snapshot every shard's identity, occupancy, and lock
    /// configuration.
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.distinct_shards()
            .iter()
            .map(|shard| {
                let stats = shard.lock.stats();
                ShardSnapshot {
                    name: shard.name(),
                    local_depth: shard.local_depth,
                    keys: shard.lock.with_locked(|d| d.map.len()),
                    algorithm: shard.lock.algorithm().label().to_string(),
                    spin_limit: shard.lock.spin_limit(),
                    waiting: shard.lock.waiting_now(),
                    acquisitions: stats.acquisitions,
                    contended: stats.contended,
                    parked: stats.parked,
                    combined_ops: stats.combined_ops,
                    algorithm_switches: stats.algorithm_switches,
                    reconfigurations: stats.reconfigurations,
                }
            })
            .collect()
    }

    /// Register every shard lock with a [`BreakerHub`] (names
    /// `shard-<id>`). The store keeps the hub and maintains the
    /// registry across splits: retired shards are unregistered, their
    /// children registered.
    pub fn register_with_hub(&self, hub: Arc<BreakerHub>) {
        for shard in self.distinct_shards() {
            hub.register(shard.name(), shard.lock.clone());
        }
        *self.hub_slot() = Some(hub);
    }

    fn hub_slot(&self) -> std::sync::MutexGuard<'_, Option<Arc<BreakerHub>>> {
        match self.hub.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// One maintenance pass: split every shard whose contended-
    /// acquisition rate (per second, measured since the previous pass)
    /// crossed the configured threshold *and* stands out against the
    /// directory — at least `split_imbalance_factor` times the mean
    /// rate across all shards. Returns the number of splits made. Call
    /// periodically from a maintenance tick (the load generator does);
    /// ops never split inline, so their tail is not taxed.
    pub fn maintenance(&self) -> usize {
        let secs = {
            let mut last = match self.last_maintenance.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let now = Instant::now();
            let dt = now - *last;
            *last = now;
            // Back-to-back passes still get a sane denominator.
            (dt.as_nanos() as f64 / 1e9).max(1e-6)
        };
        // First pass: roll every shard's contended baseline forward and
        // compute this interval's rates, so the mean is taken over the
        // same window for everyone (and a shard that later crosses the
        // acquisition floor doesn't report its whole history as one
        // interval's rate).
        let shards = self.distinct_shards();
        let rated: Vec<(Arc<Shard>, u64, f64)> = shards
            .into_iter()
            .map(|shard| {
                let stats = shard.lock.stats();
                let prev = shard.seen_contended.swap(stats.contended, Ordering::Relaxed);
                let rate = stats.contended.saturating_sub(prev) as f64 / secs;
                (shard, stats.acquisitions, rate)
            })
            .collect();
        let peers = rated.len();
        let mean_rate = rated.iter().map(|&(_, _, r)| r).sum::<f64>() / peers.max(1) as f64;
        let mut performed = 0;
        for (shard, acquisitions, rate) in rated {
            // The imbalance gate: a lone shard has no peers to compare
            // against, so it always passes.
            let stands_out =
                peers <= 1 || rate >= self.config.split_imbalance_factor * mean_rate;
            let qualifies = shard.local_depth < self.config.max_depth
                && acquisitions >= self.config.split_min_acquisitions
                && rate >= self.config.split_contended_per_sec
                && stands_out;
            if !qualifies {
                // One window's contended events are sparse and cluster at
                // scheduler slice boundaries; a shard that fails any gate
                // restarts its streak rather than coasting on old heat.
                shard.split_streak.store(0, Ordering::Relaxed);
                continue;
            }
            let streak = shard.split_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak < self.config.split_sustain {
                continue;
            }
            if self.split(&shard) {
                performed += 1;
            } else {
                // Lost the race (someone else retired it); start over.
                shard.split_streak.store(0, Ordering::Relaxed);
            }
        }
        self.splits.fetch_add(performed as u64, Ordering::Relaxed);
        performed
    }

    /// Split one shard: retire it, partition its keys on hash bit
    /// `local_depth`, rewire (and double, if needed) the directory.
    fn split(&self, old: &Arc<Shard>) -> bool {
        // Phase 1 — retire under the shard lock only.
        let taken = old.lock.with_locked(|data| {
            if data.retired {
                return None;
            }
            data.retired = true;
            Some(std::mem::take(&mut data.map))
        });
        let Some(map) = taken else {
            return false; // another maintenance pass won the race
        };

        // Phase 2 — partition on the next hash bit.
        let bit = 1u64 << old.local_depth;
        let (mut low, mut high) = (HashMap::new(), HashMap::new());
        for (k, v) in map {
            if scramble(k) & bit != 0 {
                high.insert(k, v);
            } else {
                low.insert(k, v);
            }
        }
        let parent_algo = old.lock.algorithm();
        let child = |map: HashMap<u64, u64>| {
            // Only a child that actually received keys inherits the
            // parent's (possibly hot) engine; an empty child has no
            // traffic to justify it — and, getting no samples, would
            // otherwise sit on the inherited engine forever.
            let algo = if map.is_empty() { LockAlgorithm::SpinPark } else { parent_algo };
            Arc::new(Shard {
                id: self.next_id.fetch_add(1, Ordering::Relaxed),
                local_depth: old.local_depth + 1,
                lock: Arc::new(
                    self.config
                        .policy
                        .build_child(ShardData { map, retired: false }, algo),
                ),
                seen_contended: AtomicU64::new(0),
                split_streak: AtomicU32::new(0),
            })
        };
        let (s_low, s_high) = (child(low), child(high));

        // Phase 3 — rewire under the directory write lock.
        {
            let mut dir = self.write_dir();
            let global_depth = dir.len().trailing_zeros();
            if old.local_depth == global_depth {
                // Double: new slot i mirrors old slot i % old_len.
                let doubled: Vec<Arc<Shard>> = dir.iter().chain(dir.iter()).cloned().collect();
                *dir = doubled;
            }
            for (slot, entry) in dir.iter_mut().enumerate() {
                if entry.id == old.id {
                    *entry =
                        Arc::clone(if slot as u64 & bit != 0 { &s_high } else { &s_low });
                }
            }
        }

        // Phase 4 — keep the control-plane registry current.
        if let Some(hub) = self.hub_slot().clone() {
            hub.unregister(&old.name());
            hub.register(s_low.name(), s_low.lock.clone());
            hub.register(s_high.name(), s_high.lock.clone());
        }
        true
    }

    /// The store's current router (slot arithmetic for the present
    /// directory size).
    pub fn current_router(&self) -> ShardRouter {
        self.router()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: ServicePolicy) -> ServiceConfig {
        ServiceConfig {
            initial_depth: 1,
            max_depth: 4,
            split_contended_per_sec: 0.0,
            split_min_acquisitions: 1,
            split_imbalance_factor: 0.0,
            split_sustain: 1,
            policy,
        }
    }

    #[test]
    fn get_put_increment_scan_round_trip() {
        let store = ShardedStore::new(ServiceConfig::default());
        assert!(store.is_empty());
        assert_eq!(store.put(7, 100), None);
        assert_eq!(store.put(7, 200), Some(100));
        assert_eq!(store.get(7), Some(200));
        assert_eq!(store.get(8), None);
        assert_eq!(store.increment(9, 5), 5);
        assert_eq!(store.increment(9, 5), 10);
        assert_eq!(store.len(), 2);
        assert_eq!(store.total(), 210);
        let keys = store.scan(Vec::new(), |v: &mut Vec<u64>, k, _| v.push(k));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn read_and_update_run_their_closure_exactly_once_across_splits() {
        let store = ShardedStore::new(tiny(ServicePolicy::Static(PolicyChoice::FixedSpin(64))));
        // Upsert semantics: None for a missing key, then read-modify-write.
        assert_eq!(store.update(3, |v| v.unwrap_or(0) + 10), 10);
        assert_eq!(store.update(3, |v| v.unwrap_or(0) + 10), 20);
        assert_eq!(store.read(3, |v| v.map(|x| x * 2)), Some(40));
        assert!(!store.read(4, |v| v.is_some()));
        // Splits rewire the directory under the ops; each closure must
        // still run exactly once (runs counts every execution).
        for k in 0..200u64 {
            store.put(k, 1);
        }
        while store.maintenance() > 0 {}
        assert!(store.splits() > 0);
        let mut runs = 0u32;
        for k in 0..200u64 {
            store.update(k, |v| {
                runs += 1;
                v.expect("key was written before the splits") + 1
            });
        }
        assert_eq!(runs, 200, "an update closure ran twice or not at all");
        // The put loop overwrote key 3, so every key holds exactly 2.
        assert_eq!(store.total(), 400);
    }

    #[test]
    fn splits_preserve_every_key_and_deepen_the_directory() {
        let store = ShardedStore::new(tiny(ServicePolicy::Static(PolicyChoice::FixedSpin(64))));
        assert_eq!(store.shard_count(), 2);
        for k in 0..500u64 {
            store.put(k, k);
        }
        // Thresholds are zeroed, so every touched shard splits.
        let mut rounds = 0;
        while store.maintenance() > 0 && rounds < 8 {
            rounds += 1;
        }
        assert!(store.splits() > 0, "zeroed thresholds must trigger splits");
        assert!(store.shard_count() > 2);
        assert!(store.slots() >= store.shard_count());
        // Nothing lost, nothing duplicated, every key still routable.
        assert_eq!(store.len(), 500);
        for k in 0..500u64 {
            assert_eq!(store.get(k), Some(k), "key {k} lost across resharding");
        }
        // Every shard is capped at max_depth.
        assert!(store.snapshots().iter().all(|s| s.local_depth <= 4));
    }

    #[test]
    fn concurrent_increments_survive_a_mid_run_split() {
        let store = Arc::new(ShardedStore::new(tiny(ServicePolicy::HotShard {
            high_water: 2,
            patience: 2,
        })));
        let threads = 4;
        let per = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..per {
                        store.increment((t * per + i) % 97, 1);
                        if i % 500 == 0 {
                            store.maintenance();
                        }
                    }
                });
            }
        });
        assert_eq!(
            store.total(),
            u128::from(threads * per),
            "increments lost or double-applied across concurrent resharding"
        );
        assert!(store.len() <= 97);
    }

    #[test]
    fn split_children_inherit_a_hot_parents_engine() {
        // One shard takes every op: back-to-back increments give the
        // policy sub-microsecond sample gaps, which read as heat and
        // migrate the shard to flat combining.
        let store = ShardedStore::new(ServiceConfig {
            initial_depth: 0,
            max_depth: 2,
            split_contended_per_sec: 0.0,
            split_min_acquisitions: 1,
            split_imbalance_factor: 0.0,
            split_sustain: 1,
            policy: ServicePolicy::HotShard { high_water: 64, patience: 2 },
        });
        let mut flipped = false;
        for i in 0..40_000u64 {
            store.increment(i % 64, 1);
            if i % 512 == 0
                && store.snapshots().iter().any(|s| s.algorithm == "flat-combining")
            {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "sustained single-shard traffic must batch");
        // Zeroed thresholds split it; the children must come up batched
        // rather than re-paying cold-start detection.
        assert!(store.maintenance() > 0, "the hot shard must split");
        let snaps = store.snapshots();
        assert!(snaps.len() >= 2);
        for s in &snaps {
            assert_eq!(
                s.algorithm, "flat-combining",
                "{} lost the parent's engine across the split", s.name
            );
        }
    }

    #[test]
    fn snapshots_rank_load_and_feed_the_divergence_verdict() {
        let store = ShardedStore::new(ServiceConfig {
            initial_depth: 2,
            ..ServiceConfig::default()
        });
        // Hammer one key so its shard outranks the others.
        for _ in 0..200 {
            store.increment(42, 1);
        }
        let snaps = store.snapshots();
        assert_eq!(snaps.len(), 4);
        let verdict = divergence(&snaps).expect("non-empty snapshot set");
        assert!(verdict.hot_acquisitions >= verdict.cold_acquisitions);
        assert!(!verdict.engines.is_empty());
    }

    #[test]
    fn hub_registry_follows_splits() {
        let store = ShardedStore::new(tiny(ServicePolicy::Static(PolicyChoice::FixedSpin(64))));
        let hub = Arc::new(BreakerHub::default());
        store.register_with_hub(Arc::clone(&hub));
        assert_eq!(hub.names().len(), 2);
        for k in 0..200u64 {
            store.increment(k, 1);
        }
        while store.maintenance() > 0 {}
        let names = hub.names();
        assert_eq!(names.len(), store.shard_count(), "registry must track live shards");
        let snaps = store.snapshots();
        for s in &snaps {
            assert!(names.contains(&s.name), "{} missing from hub", s.name);
        }
    }

    #[test]
    fn divergence_on_identical_configs_is_false() {
        let mk = |name: &str, acq: u64| ShardSnapshot {
            name: name.into(),
            local_depth: 2,
            keys: 1,
            algorithm: "spin-park".into(),
            spin_limit: 64,
            waiting: 0,
            acquisitions: acq,
            contended: 0,
            parked: 0,
            combined_ops: 0,
            algorithm_switches: 0,
            reconfigurations: 0,
        };
        let v = divergence(&[mk("a", 100), mk("b", 1)]).expect("two snapshots");
        assert!(!v.diverged);
        let mut hot = mk("a", 100);
        hot.algorithm = "flat-combining".into();
        let v = divergence(&[hot, mk("b", 1)]).expect("two snapshots");
        assert!(v.diverged);
        assert_eq!(v.hot_name, "a");
        assert_eq!(v.cold_name, "b");
    }
}
