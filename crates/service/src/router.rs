//! Hash-based shard routing.
//!
//! Keys are `u64`s (a real service would hash its string keys down to
//! one); the router finalizes them through the splitmix64 mixer so
//! *adjacent* keys — and the low-rank keys a Zipfian sampler emits —
//! land on unrelated shards, then routes on the low bits of the mixed
//! hash. Low bits (not high) because the store grows by extendible
//! hashing: a directory of `2^global_depth` slots indexed by
//! `hash & (2^global_depth - 1)`, where splitting a shard only needs
//! one more low bit.

/// splitmix64's finalizer: a cheap, statistically strong bit mixer
/// (Steele et al.'s SplittableRandom). Used both to spread keys across
/// shards and to decorrelate per-worker RNG seeds.
pub fn scramble(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Routes keys to directory slots: the pure-arithmetic half of the
/// store, separated so routing invariants are testable without any
/// locks or shards in the picture.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    global_depth: u32,
}

impl ShardRouter {
    /// Router over a directory of `2^global_depth` slots.
    pub fn new(global_depth: u32) -> ShardRouter {
        assert!(global_depth <= 32, "directory of 2^{global_depth} slots is absurd");
        ShardRouter { global_depth }
    }

    /// The directory's slot count.
    pub fn slots(&self) -> usize {
        1usize << self.global_depth
    }

    /// Current global depth (low bits consumed by routing).
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Mixed hash of a key — the value all routing bits come from.
    pub fn hash(&self, key: u64) -> u64 {
        scramble(key)
    }

    /// Directory slot for a key.
    pub fn slot(&self, key: u64) -> usize {
        (self.hash(key) & (self.slots() as u64 - 1)) as usize
    }

    /// The router after one directory doubling.
    pub fn deepened(&self) -> ShardRouter {
        ShardRouter::new(self.global_depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_spreads_adjacent_keys() {
        // The 8 hottest Zipf ranks must not pile onto one slot of an
        // 8-slot directory just because they are numerically adjacent.
        let router = ShardRouter::new(3);
        let slots: std::collections::BTreeSet<usize> = (0..8).map(|k| router.slot(k)).collect();
        assert!(slots.len() >= 4, "adjacent keys collapsed onto {slots:?}");
    }

    #[test]
    fn slot_is_stable_and_in_range() {
        let router = ShardRouter::new(4);
        for key in [0u64, 1, 17, u64::MAX, 0xdead_beef] {
            let s = router.slot(key);
            assert!(s < router.slots());
            assert_eq!(s, router.slot(key), "routing must be deterministic");
        }
    }

    #[test]
    fn deepening_preserves_the_low_bits() {
        // Extendible hashing's contract: after a directory doubling,
        // a key's new slot differs from its old slot only in the new
        // top bit — so only split shards need their entries moved.
        let before = ShardRouter::new(3);
        let after = before.deepened();
        for key in 0..2000u64 {
            assert_eq!(after.slot(key) % before.slots(), before.slot(key));
        }
    }
}
