//! The hot-shard adaptation policy.
//!
//! Shards under a Zipfian workload are not equal: a handful absorb
//! most of the traffic while the long tail sits nearly idle. One lock
//! configuration cannot serve both — which is the paper's thesis, per
//! object. [`HotShardPolicy`] is the per-shard feedback loop that makes
//! the divergence happen:
//!
//! * **Cold / warm shards** ride the paper's `simple-adapt` on the
//!   spin-park engine, tuning the spin count to the observed waiting
//!   level (an idle shard drifts toward pure spin; a mildly busy one
//!   toward park-early).
//! * **Hot shards** migrate to the **flat-combining** engine. Every
//!   store mutation goes through `with_locked`, so on this engine
//!   queued writes are *batched*: one combiner executes the whole
//!   wait-list's ops in a single lock tenure instead of paying a
//!   handoff per op. That is the write-batching layer, implemented as
//!   a lock engine choice rather than extra queueing code.
//! * Sustained calm migrates back to spin-park, so a shard whose keys
//!   went cold stops paying the combining indirection.
//!
//! ## How heat is detected
//!
//! Two signals, either sufficient, `patience` consecutive samples of
//! hysteresis in both directions:
//!
//! 1. **Queue depth**: `waiting ≥ high_water` at a sample. Direct
//!    contention evidence — decisive on multiprocessor hosts where
//!    waiters pile up while a holder runs elsewhere.
//! 2. **Sample rate**: the feedback loop delivers one observation per
//!    `N` acquisitions, so the *gap between samples* is inversely
//!    proportional to the shard's traffic. An EWMA of that gap below
//!    [`HOT_SAMPLE_GAP_NANOS`] marks the shard hot even when queues
//!    never form — the regime of an oversubscribed host, where the
//!    single runnable holder means `waiting` stays 0 on exactly the
//!    shards doing all the work, and contention appears only as
//!    preemption convoys. Rate is the signal that *precedes* convoys.
//!
//! Calm is the conjunction: a near-empty queue *and* a sample gap at
//! least eight times the hot threshold.

use std::time::Instant;

use adaptive_core::AdaptationPolicy;
use adaptive_native::{
    LockAlgorithm, NativeDecision, NativeObservation, NativeSimpleAdapt,
};

/// EWMA sample gap at or below which a shard counts as hot (30µs
/// between samples ≈ tens of thousands of acquisitions per second).
/// Deliberately tight: under Zipfian service load the *hot* shard's
/// sample gap sits well under this while merely-busy shards sit a few
/// multiples above it, so only genuinely hot shards pay the batching
/// migration.
pub const HOT_SAMPLE_GAP_NANOS: u64 = 30_000;

/// Calm needs the EWMA gap at or above this multiple of the hot gap.
const COLD_GAP_FACTOR: u64 = 8;

/// Gaps are clamped here before entering the EWMA so one long idle
/// period can't poison the average for thousands of samples.
const GAP_CLAMP_NANOS: u64 = 1_000_000_000;

/// Per-shard policy: `simple-adapt` attribute tuning while cold,
/// flat-combining write batching while hot. See the module docs.
#[derive(Debug, Clone)]
pub struct HotShardPolicy {
    /// Waiting level that marks a shard hot.
    pub high_water: u64,
    /// Consecutive samples required before migrating (both directions).
    pub patience: u32,
    tuner: NativeSimpleAdapt,
    algo: LockAlgorithm,
    hot_streak: u32,
    calm_streak: u32,
    last_sample: Option<Instant>,
    ewma_gap_nanos: u64,
}

impl HotShardPolicy {
    /// Policy with the given hot threshold and migration patience.
    pub fn new(high_water: u64, patience: u32) -> HotShardPolicy {
        HotShardPolicy::starting(high_water, patience, LockAlgorithm::SpinPark)
    }

    /// Policy whose belief starts at `algo` — for shards born from a
    /// split, which inherit the parent's installed engine instead of
    /// re-paying cold-start detection. A policy born on a non-spin-park
    /// engine seeds its gap EWMA *hot*: the parent's traffic justified
    /// the engine, so the child must see sustained calm (not just its
    /// first few samples) before reverting.
    pub fn starting(high_water: u64, patience: u32, algo: LockAlgorithm) -> HotShardPolicy {
        let ewma = if algo == LockAlgorithm::SpinPark {
            GAP_CLAMP_NANOS
        } else {
            HOT_SAMPLE_GAP_NANOS
        };
        HotShardPolicy {
            high_water: high_water.max(1),
            patience: patience.max(1),
            tuner: NativeSimpleAdapt::new(2, 32),
            algo,
            hot_streak: 0,
            calm_streak: 0,
            last_sample: None,
            ewma_gap_nanos: ewma,
        }
    }

    /// The engine this policy currently believes is installed.
    pub fn algorithm(&self) -> LockAlgorithm {
        self.algo
    }

    /// Smoothed nanoseconds between feedback-loop samples.
    pub fn ewma_gap_nanos(&self) -> u64 {
        self.ewma_gap_nanos
    }

    /// [`AdaptationPolicy::decide`] with the inter-sample gap supplied
    /// by the caller instead of read from the wall clock — the
    /// deterministic entry point for tests and simulations.
    pub fn decide_with_gap(
        &mut self,
        obs: NativeObservation,
        gap_nanos: u64,
    ) -> Option<NativeDecision> {
        let gap = gap_nanos.min(GAP_CLAMP_NANOS);
        self.ewma_gap_nanos = (self.ewma_gap_nanos / 2).saturating_add(gap / 2);
        let busy = obs.waiting >= self.high_water || self.ewma_gap_nanos <= HOT_SAMPLE_GAP_NANOS;
        // Busy reads the smoothed gap (heat must be sustained), but
        // calm reads the *raw* gap: on a saturated host one scheduler
        // hiccup puts a multi-millisecond gap into the EWMA, which then
        // reads "idle" for several samples even though traffic never
        // stopped — and the engine flaps. A raw-gap streak is immune:
        // the next on-rate sample resets it, while a genuinely quiet
        // shard stretches every gap and passes `patience` in a row.
        let calm = obs.waiting <= 1 && gap >= HOT_SAMPLE_GAP_NANOS * COLD_GAP_FACTOR;
        match self.algo {
            LockAlgorithm::SpinPark => {
                self.calm_streak = 0;
                if busy {
                    self.hot_streak += 1;
                    if self.hot_streak >= self.patience {
                        self.algo = LockAlgorithm::Combining;
                        self.hot_streak = 0;
                        return Some(NativeDecision::SetAlgorithm(LockAlgorithm::Combining));
                    }
                } else {
                    self.hot_streak = 0;
                }
                self.tuner.decide(obs)
            }
            _ => {
                self.hot_streak = 0;
                if calm {
                    self.calm_streak += 1;
                    if self.calm_streak >= self.patience {
                        self.algo = LockAlgorithm::SpinPark;
                        self.calm_streak = 0;
                        return Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark));
                    }
                } else {
                    self.calm_streak = 0;
                }
                None
            }
        }
    }
}

impl AdaptationPolicy<NativeObservation> for HotShardPolicy {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        let now = Instant::now();
        let gap = match self.last_sample {
            Some(prev) => u64::try_from((now - prev).as_nanos()).unwrap_or(u64::MAX),
            None => GAP_CLAMP_NANOS,
        };
        self.last_sample = Some(now);
        self.decide_with_gap(obs, gap)
    }

    fn name(&self) -> &'static str {
        "hot-shard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALM_GAP: u64 = HOT_SAMPLE_GAP_NANOS * COLD_GAP_FACTOR * 4;
    const WARM_GAP: u64 = HOT_SAMPLE_GAP_NANOS * 3;

    #[test]
    fn sustained_queueing_batches_and_sustained_calm_unbatches() {
        let mut p = HotShardPolicy::new(3, 2);
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // One hot sample is not enough (gap is calm; waiting carries it).
        assert!(p.decide_with_gap(NativeObservation::of(5), CALM_GAP).is_some());
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // Second consecutive hot sample migrates to combining.
        assert_eq!(
            p.decide_with_gap(NativeObservation::of(4), CALM_GAP),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::Combining))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::Combining);
        // Still busy: stays batched.
        assert_eq!(p.decide_with_gap(NativeObservation::of(4), CALM_GAP), None);
        assert_eq!(p.decide_with_gap(NativeObservation::of(2), CALM_GAP), None);
        // Calm twice in a row: back to spin-park.
        assert_eq!(p.decide_with_gap(NativeObservation::of(1), CALM_GAP), None);
        assert_eq!(
            p.decide_with_gap(NativeObservation::of(0), CALM_GAP),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
    }

    #[test]
    fn a_fast_sample_rate_alone_marks_a_shard_hot() {
        // waiting stays 0 the whole time — the oversubscribed-host
        // regime — but samples arrive at half the hot gap, so the EWMA
        // sinks under the threshold and the shard batches anyway.
        let hot_gap = HOT_SAMPLE_GAP_NANOS / 2;
        let mut p = HotShardPolicy::new(64, 2);
        let mut switched_at = None;
        for i in 0..24 {
            if let Some(NativeDecision::SetAlgorithm(LockAlgorithm::Combining)) =
                p.decide_with_gap(NativeObservation::of(0), hot_gap)
            {
                switched_at = Some(i);
                break;
            }
        }
        assert!(switched_at.is_some(), "rate heat never fired: ewma={}", p.ewma_gap_nanos());
        assert_eq!(p.algorithm(), LockAlgorithm::Combining);
        // A busy shard must NOT unbatch just because queues are empty:
        // gaps stay hot, so calm never accumulates.
        for _ in 0..8 {
            assert_eq!(p.decide_with_gap(NativeObservation::of(0), hot_gap), None);
        }
        assert_eq!(p.algorithm(), LockAlgorithm::Combining);
        // Traffic stops: long gaps drain the EWMA and it unbatches.
        let mut reverted = false;
        for _ in 0..12 {
            if p.decide_with_gap(NativeObservation::of(0), CALM_GAP)
                == Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
            {
                reverted = true;
                break;
            }
        }
        assert!(reverted, "a cooled shard must return to spin-park");
    }

    #[test]
    fn a_cool_sample_resets_the_hot_streak() {
        let mut p = HotShardPolicy::new(3, 2);
        assert!(p.decide_with_gap(NativeObservation::of(5), CALM_GAP).is_some());
        // Cool in both signals: streak restarts, attribute tuning runs.
        assert!(
            p.decide_with_gap(NativeObservation::of(0), CALM_GAP).is_some(),
            "cool sample tunes attributes"
        );
        assert!(p.decide_with_gap(NativeObservation::of(5), CALM_GAP).is_some());
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark, "streak must restart");
    }

    #[test]
    fn warm_middle_ground_neither_batches_nor_flaps() {
        // Gaps between hot and calm with shallow queues: the policy
        // stays on spin-park and keeps tuning attributes.
        let mut p = HotShardPolicy::new(3, 2);
        for _ in 0..16 {
            p.decide_with_gap(NativeObservation::of(1), WARM_GAP);
            assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        }
    }

    #[test]
    fn cold_shards_keep_tuning_attributes() {
        let mut p = HotShardPolicy::new(8, 4);
        // An idle shard gets the pure-spin decision from simple-adapt.
        assert_eq!(
            p.decide_with_gap(NativeObservation::of(0), CALM_GAP),
            Some(NativeDecision::PureSpin)
        );
    }

    #[test]
    fn a_policy_born_batched_does_not_instantly_revert() {
        // A split child inherits the hot parent's combining engine; its
        // seeded-hot EWMA means a couple of empty-queue samples (the
        // child's first moments, before traffic lands) must not bounce
        // it back to spin-park.
        let mut p = HotShardPolicy::starting(3, 2, LockAlgorithm::Combining);
        assert_eq!(p.algorithm(), LockAlgorithm::Combining);
        for _ in 0..4 {
            assert_eq!(
                p.decide_with_gap(NativeObservation::of(0), HOT_SAMPLE_GAP_NANOS),
                None
            );
        }
        assert_eq!(p.algorithm(), LockAlgorithm::Combining);
        // Sustained real calm still reverts it eventually.
        let mut reverted = false;
        for _ in 0..16 {
            if p.decide_with_gap(NativeObservation::of(0), CALM_GAP)
                == Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
            {
                reverted = true;
                break;
            }
        }
        assert!(reverted, "an inherited engine must still cool down: ewma={}", p.ewma_gap_nanos());
    }

    #[test]
    fn the_wall_clock_entry_point_tracks_real_gaps() {
        let mut p = HotShardPolicy::new(64, 2);
        // Rapid back-to-back calls: real gaps are nanoseconds, so the
        // EWMA collapses below the hot threshold and the shard batches.
        let mut batched = false;
        for _ in 0..24 {
            if p.decide(NativeObservation::of(0))
                == Some(NativeDecision::SetAlgorithm(LockAlgorithm::Combining))
            {
                batched = true;
                break;
            }
        }
        assert!(batched, "back-to-back samples must read as heat: ewma={}", p.ewma_gap_nanos());
    }
}
