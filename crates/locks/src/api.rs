//! The common lock interface and per-lock statistics.

use butterfly_sim::{ctx, Duration, VirtualTime};

/// Fixed software overheads of the lock package, mirroring the Cthreads
/// wrapper costs that separate e.g. the raw `atomior` latency from the
/// `spin-lock` latency in the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockCosts {
    /// Charged at the top of every `lock` operation (call/registration
    /// bookkeeping).
    pub lock_overhead: Duration,
    /// Charged at the top of every `unlock` operation.
    pub unlock_overhead: Duration,
    /// Extra processing cost of sensing one monitored state variable
    /// (the paper's `monitor (one state variable)` row in Table 8 is much
    /// more than a bare read).
    pub monitor_overhead: Duration,
}

impl Default for LockCosts {
    fn default() -> Self {
        LockCosts {
            lock_overhead: Duration::micros(8),
            unlock_overhead: Duration::micros(3),
            monitor_overhead: Duration::micros(10),
        }
    }
}

impl LockCosts {
    /// A zero-overhead cost model (isolates the raw memory protocol, as
    /// in the paper's `atomior` row).
    pub const fn free() -> LockCosts {
        LockCosts {
            lock_overhead: Duration::ZERO,
            unlock_overhead: Duration::ZERO,
            monitor_overhead: Duration::ZERO,
        }
    }
}

/// Aggregate statistics kept by every lock (host-side: collecting them
/// costs no simulated time; the *sampling* an adaptive lock performs is
/// charged separately).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Total unlock operations.
    pub releases: u64,
    /// Grants handed directly to a registered waiter.
    pub handoffs: u64,
    /// Sum of waiting time across contended acquisitions (ns).
    pub total_wait_nanos: u64,
    /// Largest number of simultaneous waiters observed.
    pub max_waiting: u64,
    /// Reconfigurations applied (adaptive/reconfigurable locks).
    pub reconfigurations: u64,
}

impl LockStats {
    /// Mean waiting time per contended acquisition.
    pub fn mean_wait(&self) -> Duration {
        Duration(
            self.total_wait_nanos
                .checked_div(self.contended)
                .unwrap_or(0),
        )
    }

    /// Fraction of acquisitions that were contended.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// A time-stamped sample of a lock's waiting-thread count — one point of
/// the paper's "locking pattern" figures (4–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSample {
    /// When the sample was taken.
    pub at: VirtualTime,
    /// Number of threads waiting for the lock at that instant.
    pub waiting: u64,
}

/// The mutual-exclusion interface shared by every lock in this crate.
///
/// All methods must be called from inside a simulated thread.
pub trait Lock: Send + Sync {
    /// Acquire the lock, waiting according to the lock's policy.
    fn lock(&self);

    /// Release the lock. Must be called by the current holder.
    fn unlock(&self);

    /// Attempt to acquire without waiting.
    fn try_lock(&self) -> bool;

    /// Lock-kind name for reports.
    fn name(&self) -> &'static str;

    /// Current number of waiting threads (monitor peek, no simulated
    /// cost). Locks without waiter bookkeeping report 0.
    fn waiting_now(&self) -> u64 {
        0
    }

    /// Statistics snapshot.
    fn stats(&self) -> LockStats {
        LockStats::default()
    }

    /// Enable locking-pattern tracing (records a [`PatternSample`] at
    /// every unlock). Off by default; no-op for locks without waiter
    /// bookkeeping.
    fn enable_tracing(&self) {}

    /// Drain collected pattern samples.
    fn take_trace(&self) -> Vec<PatternSample> {
        Vec::new()
    }
}

/// Run `f` with the lock held (guard-style convenience).
pub fn with_lock<R>(lock: &dyn Lock, f: impl FnOnce() -> R) -> R {
    lock.lock();
    let r = f();
    lock.unlock();
    r
}

/// Charge a lock operation's fixed software overhead.
#[inline]
pub(crate) fn charge_overhead(d: Duration) {
    if d > Duration::ZERO {
        ctx::advance(d);
    }
}

/// Per-thread lock priority, consulted by priority lock schedulers at
/// registration time. Defaults to 0; higher is more urgent.
pub mod priority {
    use std::cell::Cell;

    thread_local! {
        static PRIORITY: Cell<i32> = const { Cell::new(0) };
    }

    /// Set the calling simulated thread's lock priority.
    pub fn set(p: i32) {
        PRIORITY.with(|c| c.set(p));
    }

    /// The calling simulated thread's lock priority.
    pub fn get() -> i32 {
        PRIORITY.with(|c| c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_derived_metrics() {
        let s = LockStats {
            acquisitions: 10,
            contended: 4,
            total_wait_nanos: 8_000,
            ..LockStats::default()
        };
        assert_eq!(s.mean_wait(), Duration(2_000));
        assert!((s.contention_ratio() - 0.4).abs() < 1e-9);
        assert_eq!(LockStats::default().mean_wait(), Duration::ZERO);
        assert_eq!(LockStats::default().contention_ratio(), 0.0);
    }

    #[test]
    fn default_costs_are_ordered() {
        let c = LockCosts::default();
        assert!(c.lock_overhead > c.unlock_overhead);
        assert!(c.monitor_overhead >= c.lock_overhead);
        assert_eq!(LockCosts::free().lock_overhead, Duration::ZERO);
    }

    #[test]
    fn priority_defaults_to_zero() {
        assert_eq!(priority::get(), 0);
        priority::set(7);
        assert_eq!(priority::get(), 7);
        priority::set(0);
    }
}
