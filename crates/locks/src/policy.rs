//! Waiting policies — the mutable attributes of a (re)configurable lock.
//!
//! Section 5.1's attribute table maps `{spin-time, delay-time,
//! sleep-time, timeout}` values onto resulting lock behaviours. The
//! `spin` field is the paper's `no-of-spins`: how many probes a waiter
//! makes before it considers sleeping.

use adaptive_core::{AttrSet, AttrValue};
use butterfly_sim::Duration;

/// The four mutable attributes of a lock's waiting policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingPolicy {
    /// `spin-time`: number of probe iterations before sleeping is
    /// considered (`u32::MAX` ≈ "pure spin").
    pub spin: u32,
    /// `delay-time`: busy-wait backoff inserted between probes, growing
    /// linearly with the probe count (0 = tight spinning).
    pub delay: Duration,
    /// `sleep-time`: when nonzero, a waiter that exhausts its spins
    /// blocks; the value bounds each sleep episode (`Duration::MAX`-like
    /// large values mean "sleep until granted").
    pub sleep: Duration,
    /// `timeout`: when nonzero, bounds a *conditional* acquire
    /// ([`crate::ReconfigurableLock::lock_timeout`]); plain `lock()`
    /// ignores it.
    pub timeout: Duration,
}

/// "Sleep until granted" sentinel for [`WaitingPolicy::sleep`].
pub const SLEEP_FOREVER: Duration = Duration(u64::MAX / 4);

/// The behaviours of Section 5.1's attribute table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Spin until granted.
    PureSpin,
    /// Spin with backoff delays until granted.
    SpinBackoff,
    /// Block immediately, wake on grant.
    PureSleep,
    /// Bounded overall wait (timeout attribute set).
    ConditionalSleepSpin,
    /// Spin a bounded number of probes, then sleep (combined lock).
    MixedSleepSpin,
}

impl WaitingPolicy {
    /// `spin=n, delay=0, sleep=0, timeout=0` — pure spin.
    pub fn pure_spin() -> WaitingPolicy {
        WaitingPolicy {
            spin: u32::MAX,
            delay: Duration::ZERO,
            sleep: Duration::ZERO,
            timeout: Duration::ZERO,
        }
    }

    /// `spin=n, delay=n` — spin with backoff.
    pub fn backoff(delay: Duration) -> WaitingPolicy {
        WaitingPolicy {
            spin: u32::MAX,
            delay,
            sleep: Duration::ZERO,
            timeout: Duration::ZERO,
        }
    }

    /// `spin=0, sleep=n` — pure sleep (blocking).
    pub fn pure_blocking() -> WaitingPolicy {
        WaitingPolicy {
            spin: 0,
            delay: Duration::ZERO,
            sleep: SLEEP_FOREVER,
            timeout: Duration::ZERO,
        }
    }

    /// Spin `spins` probes, then sleep until granted — the paper's
    /// *combined* lock ("spins 10 times initially before blocking").
    /// Each probe carries a delay on the order of a remote memory
    /// reference, so the spin count translates into waiting time the way
    /// it did on the Butterfly (the paper's mixed sleep/spin row sets
    /// spin-time, delay-time, and sleep-time together).
    pub fn combined(spins: u32) -> WaitingPolicy {
        WaitingPolicy {
            spin: spins,
            delay: Duration::micros(4),
            sleep: SLEEP_FOREVER,
            timeout: Duration::ZERO,
        }
    }

    /// Full mixed policy: spin with backoff, sleep in bounded episodes,
    /// re-spin after each.
    pub fn mixed(spins: u32, delay: Duration, sleep: Duration) -> WaitingPolicy {
        WaitingPolicy {
            spin: spins,
            delay,
            sleep,
            timeout: Duration::ZERO,
        }
    }

    /// Add a conditional-acquire bound.
    pub fn with_timeout(mut self, timeout: Duration) -> WaitingPolicy {
        self.timeout = timeout;
        self
    }

    /// Classify per the paper's attribute table.
    pub fn kind(&self) -> LockKind {
        if self.timeout > Duration::ZERO {
            LockKind::ConditionalSleepSpin
        } else if self.sleep == Duration::ZERO {
            if self.delay == Duration::ZERO {
                LockKind::PureSpin
            } else {
                LockKind::SpinBackoff
            }
        } else if self.spin == 0 {
            LockKind::PureSleep
        } else {
            LockKind::MixedSleepSpin
        }
    }

    /// Whether a waiter under this policy ever blocks.
    pub fn blocks(&self) -> bool {
        self.sleep > Duration::ZERO
    }

    /// The model-level attribute view (`Φ` instance) of this policy.
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::new()
            .with("spin-time", AttrValue::Int(self.spin as i64))
            .with("delay-time", AttrValue::Int(self.delay.as_nanos() as i64))
            .with("sleep-time", AttrValue::Int(self.sleep.as_nanos() as i64))
            .with("timeout", AttrValue::Int(self.timeout.as_nanos() as i64))
    }

    /// Compact descriptor for transition logs.
    pub fn descriptor(&self) -> String {
        match self.kind() {
            LockKind::PureSpin => "spin".to_string(),
            LockKind::SpinBackoff => format!("spin+backoff({})", self.delay),
            LockKind::PureSleep => "blocking".to_string(),
            LockKind::ConditionalSleepSpin => format!("conditional({})", self.timeout),
            LockKind::MixedSleepSpin => format!("combined(spin={})", self.spin),
        }
    }
}

impl Default for WaitingPolicy {
    /// The adaptive lock's initial configuration: a moderate combined
    /// policy (spin a little, then block).
    fn default() -> Self {
        WaitingPolicy::combined(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_table() {
        assert_eq!(WaitingPolicy::pure_spin().kind(), LockKind::PureSpin);
        assert_eq!(
            WaitingPolicy::backoff(Duration::micros(2)).kind(),
            LockKind::SpinBackoff
        );
        assert_eq!(WaitingPolicy::pure_blocking().kind(), LockKind::PureSleep);
        assert_eq!(WaitingPolicy::combined(10).kind(), LockKind::MixedSleepSpin);
        assert_eq!(
            WaitingPolicy::mixed(5, Duration::micros(1), Duration::micros(100)).kind(),
            LockKind::MixedSleepSpin
        );
        assert_eq!(
            WaitingPolicy::pure_spin()
                .with_timeout(Duration::millis(1))
                .kind(),
            LockKind::ConditionalSleepSpin
        );
    }

    #[test]
    fn blocking_predicate() {
        assert!(!WaitingPolicy::pure_spin().blocks());
        assert!(WaitingPolicy::pure_blocking().blocks());
        assert!(WaitingPolicy::combined(3).blocks());
    }

    #[test]
    fn attr_set_mirrors_fields() {
        let p = WaitingPolicy::combined(7);
        let a = p.attr_set();
        assert_eq!(a.get_int("spin-time").unwrap(), 7);
        assert_eq!(a.get_int("sleep-time").unwrap(), SLEEP_FOREVER.as_nanos() as i64);
        assert_eq!(a.get_int("delay-time").unwrap(), 4_000);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn descriptors_are_informative() {
        assert_eq!(WaitingPolicy::pure_spin().descriptor(), "spin");
        assert_eq!(WaitingPolicy::pure_blocking().descriptor(), "blocking");
        assert_eq!(WaitingPolicy::combined(10).descriptor(), "combined(spin=10)");
    }

    #[test]
    fn default_is_moderate_combined() {
        let p = WaitingPolicy::default();
        assert_eq!(p.kind(), LockKind::MixedSleepSpin);
        assert_eq!(p.spin, 10);
    }
}
