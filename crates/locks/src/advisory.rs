//! The advisory (speculative) lock.
//!
//! "The owner of such a lock advises other requesting threads whether to
//! spin or sleep while waiting, dynamically changing some attributes of
//! its internal state during different phases of computation" [MS93].
//! The paper's earlier experiments found this lock to perform well for
//! variable-length critical sections: the owner knows whether its
//! current critical section is short (advise spin) or long (advise
//! sleep).

use adaptive_core::{AttrError, OwnerId};
use butterfly_sim::{ctx, NodeId};

use crate::api::{Lock, LockCosts, LockStats, PatternSample};
use crate::policy::WaitingPolicy;
use crate::reconfigurable::ReconfigurableLock;
use crate::scheduler::SchedKind;

/// The owner's advice to waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Critical section will be short: spin.
    Spin,
    /// Critical section will be long: sleep.
    Sleep,
}

/// A lock whose waiting policy is steered explicitly by its owner.
pub struct AdvisoryLock {
    inner: ReconfigurableLock,
    owner_agent: OwnerId,
}

impl AdvisoryLock {
    /// Create on an explicit node (initial advice: spin).
    pub fn new_on(node: NodeId) -> AdvisoryLock {
        AdvisoryLock {
            inner: ReconfigurableLock::with_parts(
                "advisory",
                node,
                WaitingPolicy::pure_spin(),
                SchedKind::Fcfs,
                LockCosts::default(),
            ),
            owner_agent: OwnerId(u64::MAX - 1),
        }
    }

    /// Create on the caller's node.
    pub fn new_local() -> AdvisoryLock {
        AdvisoryLock::new_on(ctx::current_node())
    }

    /// Post advice for threads that arrive from now on. Typically called
    /// by the owner right after acquiring, when it knows what kind of
    /// critical section it is entering. Costs one attribute
    /// reconfiguration (`1R 1W`).
    pub fn advise(&self, advice: Advice) -> Result<(), AttrError> {
        let policy = match advice {
            Advice::Spin => WaitingPolicy::pure_spin(),
            Advice::Sleep => WaitingPolicy::pure_blocking(),
        };
        self.inner.configure_policy(self.owner_agent, policy)
    }

    /// Current advice.
    pub fn advice(&self) -> Advice {
        if self.inner.policy().blocks() {
            Advice::Sleep
        } else {
            Advice::Spin
        }
    }

    /// The wrapped reconfigurable lock.
    pub fn inner(&self) -> &ReconfigurableLock {
        &self.inner
    }
}

impl Lock for AdvisoryLock {
    fn lock(&self) {
        self.inner.lock();
    }

    fn unlock(&self) {
        self.inner.unlock();
    }

    fn try_lock(&self) -> bool {
        self.inner.try_lock()
    }

    fn name(&self) -> &'static str {
        "advisory"
    }

    fn waiting_now(&self) -> u64 {
        self.inner.waiting_now()
    }

    fn stats(&self) -> LockStats {
        self.inner.stats()
    }

    fn enable_tracing(&self) {
        self.inner.enable_tracing();
    }

    fn take_trace(&self) -> Vec<PatternSample> {
        self.inner.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::fork_join_all;
    use std::sync::Arc;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn advice_switches_policy() {
        let (out, _) = sim::run(cfg(1), || {
            let lock = AdvisoryLock::new_local();
            assert_eq!(lock.advice(), Advice::Spin);
            lock.advise(Advice::Sleep).unwrap();
            let a1 = lock.advice();
            lock.advise(Advice::Spin).unwrap();
            let a2 = lock.advice();
            (a1, a2, lock.inner().stats().reconfigurations)
        })
        .unwrap();
        assert_eq!(out.0, Advice::Sleep);
        assert_eq!(out.1, Advice::Spin);
        assert_eq!(out.2, 2);
    }

    #[test]
    fn phased_usage_preserves_mutual_exclusion() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = Arc::new(AdvisoryLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |i| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for round in 0..10 {
                        l.lock();
                        // Owner advises based on upcoming section length.
                        let long = (round + i) % 3 == 0;
                        let _ = l.advise(if long { Advice::Sleep } else { Advice::Spin });
                        let v = c.read();
                        ctx::advance(if long {
                            Duration::micros(300)
                        } else {
                            Duration::micros(5)
                        });
                        c.write(v + 1);
                        l.unlock();
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 40);
    }
}
