//! The adaptive lock: a reconfigurable lock with a built-in monitor and
//! a user-provided adaptation policy, wired into a closely-coupled
//! feedback loop (paper Sections 4–5).
//!
//! The customized lock monitor uses the application threads themselves
//! (here: the unlocking thread) to collect information — the paper found
//! a dedicated monitor thread "too loosely coupled to be used in adaptive
//! lock objects". The default sensor samples `no-of-waiting-threads`
//! once during every other unlock operation.

use std::sync::Mutex;

use adaptive_core::{AdaptationPolicy, FeedbackLoop, LoopStats, OwnerId, SamplingGate};
use butterfly_sim::{ctx, NodeId, VirtualTime};

use crate::api::{Lock, LockCosts, LockStats, PatternSample};
use crate::policy::WaitingPolicy;
use crate::reconfigurable::ReconfigurableLock;
use crate::scheduler::SchedKind;

/// What the lock monitor reports to the adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockObservation {
    /// Sampled `no-of-waiting-threads`.
    pub waiting: u64,
    /// Virtual time of the sample.
    pub at: VirtualTime,
}

/// A reconfiguration decision (`d_c`) emitted by a lock adaptation
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockDecision {
    /// Configure the lock to be pure spin (lowest-latency handoff).
    PureSpin,
    /// Configure the lock to be pure blocking.
    PureBlocking,
    /// Install a combined policy with this many initial spins.
    SetSpins(u32),
    /// Install an arbitrary waiting policy.
    SetPolicy(WaitingPolicy),
    /// Install a different lock scheduler.
    SetScheduler(SchedKind),
}

/// A boxed lock adaptation policy.
pub type BoxedLockPolicy =
    Box<dyn AdaptationPolicy<LockObservation, Decision = LockDecision> + Send>;

/// The paper's `simple-adapt` policy:
///
/// ```text
/// IF   waiting == 0                 -> configure pure spin
/// ELIF waiting <= Waiting-Threshold -> no-of-spins += n
/// ELSE                              -> no-of-spins -= 2n
/// IF   no-of-spins <= 0             -> configure pure blocking
/// ```
///
/// `Waiting-Threshold` and `n` are lock-specific constants that depend
/// on the locking pattern and critical-section length; the paper leaves
/// finding their exact relationship to future work, so they are plain
/// public fields here.
///
/// Re-entry from pure blocking: once spins have decayed to zero, a light
/// sample re-enters the combined configuration at the *default* spin
/// count rather than creeping up from `n`. Growing from `n` would emit a
/// barely-spinning combined policy and then a reconfiguration per sample
/// while it climbs — exactly the configuration thrash Section 5 adapts
/// to avoid. The paper's rules describe movement *within* the combined
/// regime; leaving pure blocking is a regime change, so it restarts from
/// the same spin count a fresh lock starts with.
#[derive(Debug, Clone)]
pub struct SimpleAdapt {
    /// The waiting-thread threshold above which spins are cut.
    pub waiting_threshold: u64,
    /// The spin increment `n`.
    pub n: u32,
    /// Upper clamp on the spin count.
    pub max_spins: u32,
    spins: i64,
}

impl SimpleAdapt {
    /// Policy with the given threshold and increment, starting from the
    /// default combined policy's spin count.
    pub fn new(waiting_threshold: u64, n: u32) -> SimpleAdapt {
        SimpleAdapt {
            waiting_threshold,
            n,
            max_spins: 1 << 14,
            spins: WaitingPolicy::default().spin as i64,
        }
    }

    /// Current nominal spin count (for inspection in tests/reports).
    pub fn spins(&self) -> i64 {
        self.spins
    }
}

impl Default for SimpleAdapt {
    fn default() -> Self {
        SimpleAdapt::new(3, 5)
    }
}

impl AdaptationPolicy<LockObservation> for SimpleAdapt {
    type Decision = LockDecision;

    fn decide(&mut self, obs: LockObservation) -> Option<LockDecision> {
        if obs.waiting == 0 {
            // No contention: lowest-latency configuration.
            return Some(LockDecision::PureSpin);
        }
        if obs.waiting <= self.waiting_threshold {
            self.spins = if self.spins == 0 {
                // Regime change out of pure blocking: restart from the
                // default combined spin count instead of creeping up from
                // `n` (which thrashes, see the type-level docs).
                i64::from(WaitingPolicy::default().spin.min(self.max_spins))
            } else {
                (self.spins + i64::from(self.n)).min(i64::from(self.max_spins))
            };
        } else {
            self.spins -= 2 * i64::from(self.n);
        }
        if self.spins <= 0 {
            self.spins = 0;
            Some(LockDecision::PureBlocking)
        } else {
            Some(LockDecision::SetSpins(self.spins as u32))
        }
    }

    fn name(&self) -> &'static str {
        "simple-adapt"
    }
}

/// Extension policy: `simple-adapt` with hysteresis — two thresholds so
/// the policy does not thrash when waiting oscillates around a single
/// threshold.
#[derive(Debug, Clone)]
pub struct HysteresisAdapt {
    /// Below (or at) this, spins grow.
    pub low: u64,
    /// Above this, spins shrink; between the two nothing changes.
    pub high: u64,
    /// Spin step.
    pub n: u32,
    /// Upper clamp on the spin count.
    pub max_spins: u32,
    spins: i64,
}

impl HysteresisAdapt {
    /// Policy with a dead band `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: u64, high: u64, n: u32) -> HysteresisAdapt {
        assert!(low <= high, "hysteresis band inverted");
        HysteresisAdapt {
            low,
            high,
            n,
            max_spins: 1 << 14,
            spins: WaitingPolicy::default().spin as i64,
        }
    }
}

impl AdaptationPolicy<LockObservation> for HysteresisAdapt {
    type Decision = LockDecision;

    fn decide(&mut self, obs: LockObservation) -> Option<LockDecision> {
        if obs.waiting == 0 {
            return Some(LockDecision::PureSpin);
        }
        if obs.waiting <= self.low {
            self.spins = if self.spins == 0 {
                // Regime change out of pure blocking (see SimpleAdapt).
                i64::from(WaitingPolicy::default().spin.min(self.max_spins))
            } else {
                (self.spins + i64::from(self.n)).min(i64::from(self.max_spins))
            };
        } else if obs.waiting > self.high {
            self.spins -= 2 * i64::from(self.n);
        } else {
            return None; // inside the dead band
        }
        if self.spins <= 0 {
            self.spins = 0;
            Some(LockDecision::PureBlocking)
        } else {
            Some(LockDecision::SetSpins(self.spins as u32))
        }
    }

    fn name(&self) -> &'static str {
        "hysteresis-adapt"
    }
}

/// Extension policy: adapt on an exponentially weighted moving average of
/// the waiting count instead of raw samples (robust to bursty patterns).
#[derive(Debug, Clone)]
pub struct EwmaAdapt {
    /// Threshold on the smoothed waiting count.
    pub waiting_threshold: f64,
    /// Smoothing factor in `(0, 1]` (1 = no smoothing).
    pub alpha: f64,
    /// Spin step.
    pub n: u32,
    /// Upper clamp on the spin count.
    pub max_spins: u32,
    ewma: f64,
    spins: i64,
}

impl EwmaAdapt {
    /// Policy smoothing with factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(waiting_threshold: f64, alpha: f64, n: u32) -> EwmaAdapt {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaAdapt {
            waiting_threshold,
            alpha,
            n,
            max_spins: 1 << 14,
            ewma: 0.0,
            spins: WaitingPolicy::default().spin as i64,
        }
    }

    /// Current smoothed waiting estimate.
    pub fn ewma(&self) -> f64 {
        self.ewma
    }
}

impl AdaptationPolicy<LockObservation> for EwmaAdapt {
    type Decision = LockDecision;

    fn decide(&mut self, obs: LockObservation) -> Option<LockDecision> {
        self.ewma = self.alpha * obs.waiting as f64 + (1.0 - self.alpha) * self.ewma;
        if self.ewma < 0.5 {
            return Some(LockDecision::PureSpin);
        }
        if self.ewma <= self.waiting_threshold {
            self.spins = if self.spins == 0 {
                // Regime change out of pure blocking (see SimpleAdapt).
                i64::from(WaitingPolicy::default().spin.min(self.max_spins))
            } else {
                (self.spins + i64::from(self.n)).min(i64::from(self.max_spins))
            };
        } else {
            self.spins -= 2 * i64::from(self.n);
        }
        if self.spins <= 0 {
            self.spins = 0;
            Some(LockDecision::PureBlocking)
        } else {
            Some(LockDecision::SetSpins(self.spins as u32))
        }
    }

    fn name(&self) -> &'static str {
        "ewma-adapt"
    }
}

/// Extension policy realizing the paper's future-work direction of
/// "applying closely-coupled adaptation to alter lock *schedulers* in
/// different phases of a computation": when the waiting queue stays deep
/// for several consecutive samples, grant order starts to matter and the
/// policy installs the priority scheduler; when the queue stays shallow,
/// it reverts to FCFS (whose registration/release paths are cheapest).
#[derive(Debug, Clone)]
pub struct SchedulerAdapt {
    /// Queue depth at or above which a sample counts as "deep".
    pub depth_threshold: u64,
    /// Consecutive deep (shallow) samples required to switch to
    /// Priority (back to FCFS).
    pub consecutive: u32,
    deep_run: u32,
    shallow_run: u32,
    current: SchedKind,
}

impl SchedulerAdapt {
    /// Policy switching to Priority after `consecutive` samples at depth
    /// `depth_threshold` or more.
    pub fn new(depth_threshold: u64, consecutive: u32) -> SchedulerAdapt {
        assert!(consecutive > 0, "need at least one sample to decide");
        SchedulerAdapt {
            depth_threshold,
            consecutive,
            deep_run: 0,
            shallow_run: 0,
            current: SchedKind::Fcfs,
        }
    }

    /// Scheduler the policy believes is installed.
    pub fn current(&self) -> SchedKind {
        self.current
    }
}

impl AdaptationPolicy<LockObservation> for SchedulerAdapt {
    type Decision = LockDecision;

    fn decide(&mut self, obs: LockObservation) -> Option<LockDecision> {
        if obs.waiting >= self.depth_threshold {
            self.deep_run += 1;
            self.shallow_run = 0;
        } else {
            self.shallow_run += 1;
            self.deep_run = 0;
        }
        if self.deep_run >= self.consecutive && self.current != SchedKind::Priority {
            self.current = SchedKind::Priority;
            return Some(LockDecision::SetScheduler(SchedKind::Priority));
        }
        if self.shallow_run >= self.consecutive && self.current != SchedKind::Fcfs {
            self.current = SchedKind::Fcfs;
            return Some(LockDecision::SetScheduler(SchedKind::Fcfs));
        }
        None
    }

    fn name(&self) -> &'static str {
        "scheduler-adapt"
    }
}

/// The adaptive lock object.
pub struct AdaptiveLock {
    inner: ReconfigurableLock,
    gate: SamplingGate,
    feedback: Mutex<FeedbackLoop<BoxedLockPolicy>>,
    /// Agent id the feedback loop reconfigures as (the lock object
    /// itself; implicit ownership through the unlock method).
    self_agent: OwnerId,
}

impl AdaptiveLock {
    /// Adaptive lock with the paper's defaults: combined initial policy,
    /// FCFS scheduler, `simple-adapt`, sampling every other unlock.
    pub fn new_on(node: NodeId) -> AdaptiveLock {
        AdaptiveLock::with_policy(node, Box::new(SimpleAdapt::default()), 2)
    }

    /// Adaptive lock on the caller's node.
    pub fn new_local() -> AdaptiveLock {
        AdaptiveLock::new_on(ctx::current_node())
    }

    /// Adaptive lock with an explicit adaptation policy and sampling
    /// period (`sample_every` unlock operations per sample).
    pub fn with_policy(node: NodeId, policy: BoxedLockPolicy, sample_every: u64) -> AdaptiveLock {
        AdaptiveLock::with_parts(
            node,
            WaitingPolicy::default(),
            SchedKind::Fcfs,
            LockCosts::default(),
            policy,
            sample_every,
        )
    }

    /// Full-control constructor.
    pub fn with_parts(
        node: NodeId,
        initial: WaitingPolicy,
        sched: SchedKind,
        costs: LockCosts,
        policy: BoxedLockPolicy,
        sample_every: u64,
    ) -> AdaptiveLock {
        AdaptiveLock {
            inner: ReconfigurableLock::with_parts("adaptive", node, initial, sched, costs),
            gate: SamplingGate::every(sample_every),
            feedback: Mutex::new(FeedbackLoop::new(policy)),
            self_agent: OwnerId(u64::MAX), // the object itself
        }
    }

    /// The wrapped reconfigurable lock (for inspection: policy, log,
    /// scheduler).
    pub fn inner(&self) -> &ReconfigurableLock {
        &self.inner
    }

    /// Attach an invariant oracle to the wrapped reconfigurable lock, so
    /// invariants are checked across mid-flight reconfigurations too.
    pub fn attach_oracle(&self, oracle: std::sync::Arc<crate::oracle::LockOracle>) {
        self.inner.attach_oracle(oracle);
    }

    /// Feedback-loop statistics (samples seen, decisions applied).
    pub fn loop_stats(&self) -> LoopStats {
        self.feedback.lock().unwrap().stats()
    }

    fn apply(&self, d: LockDecision) {
        let r = match d {
            LockDecision::PureSpin => self
                .inner
                .configure_policy(self.self_agent, WaitingPolicy::pure_spin()),
            LockDecision::PureBlocking => self
                .inner
                .configure_policy(self.self_agent, WaitingPolicy::pure_blocking()),
            LockDecision::SetSpins(n) => self
                .inner
                .configure_policy(self.self_agent, WaitingPolicy::combined(n)),
            LockDecision::SetPolicy(p) => self.inner.configure_policy(self.self_agent, p),
            LockDecision::SetScheduler(k) => {
                self.inner.configure_scheduler(k);
                Ok(())
            }
        };
        // Attribute ownership may have been acquired by an external
        // agent; the built-in loop then skips the reconfiguration (it
        // does not own the attributes).
        let _ = r;
    }
}

impl Lock for AdaptiveLock {
    fn lock(&self) {
        self.inner.lock();
    }

    fn unlock(&self) {
        self.inner.unlock();
        // Closely-coupled feedback loop, driven by the unlocking thread:
        // monitor -> policy -> reconfigure, inline.
        if self.gate.tick() {
            let obs = LockObservation {
                waiting: self.inner.sense_waiting(),
                at: ctx::now(),
            };
            // Collect decisions under the loop mutex, apply after
            // dropping it: `configure_*` makes charged simulator calls
            // (yield points), and holding a host mutex across a yield
            // deadlocks any other unlocker that samples concurrently.
            let mut decisions = Vec::new();
            {
                let mut fb = self.feedback.lock().unwrap();
                fb.step(obs, |d| decisions.push(d));
            }
            for d in decisions {
                self.apply(d);
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.inner.try_lock()
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn waiting_now(&self) -> u64 {
        self.inner.waiting_now()
    }

    fn stats(&self) -> LockStats {
        self.inner.stats()
    }

    fn enable_tracing(&self) {
        self.inner.enable_tracing();
    }

    fn take_trace(&self) -> Vec<PatternSample> {
        self.inner.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use crate::policy::LockKind;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::fork_join_all;
    use std::sync::Arc;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simple_adapt_follows_paper_rules() {
        let mut p = SimpleAdapt::new(3, 5);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        // Zero waiters -> pure spin.
        assert_eq!(p.decide(obs(0)), Some(LockDecision::PureSpin));
        // Light waiting -> spins grow by n.
        let base = p.spins();
        assert_eq!(p.decide(obs(2)), Some(LockDecision::SetSpins((base + 5) as u32)));
        // Heavy waiting -> spins shrink by 2n.
        assert_eq!(p.decide(obs(9)), Some(LockDecision::SetSpins(base as u32 + 5 - 10)));
        // Keep shrinking until pure blocking.
        let mut last = None;
        for _ in 0..10 {
            last = p.decide(obs(9));
        }
        assert_eq!(last, Some(LockDecision::PureBlocking));
        assert_eq!(p.spins(), 0);
    }

    #[test]
    fn simple_adapt_reenters_combined_at_default_spin_after_blocking() {
        // Regression: leaving pure blocking used to creep up from `n`
        // (SetSpins(5), SetSpins(10), ...), emitting a barely-spinning
        // policy plus one reconfiguration per sample — re-entry thrash.
        // A light sample after blocking must restart at the default
        // combined spin count in a single step.
        let mut p = SimpleAdapt::new(3, 5);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        while p.spins() > 0 {
            assert!(p.decide(obs(9)).is_some()); // heavy: decay to blocking
        }
        assert_eq!(p.decide(obs(9)), Some(LockDecision::PureBlocking));
        let default_spin = WaitingPolicy::default().spin;
        assert_eq!(
            p.decide(obs(1)),
            Some(LockDecision::SetSpins(default_spin)),
            "light sample after blocking must re-enter at the default spin count"
        );
        // And from there the normal +n rule applies again.
        assert_eq!(
            p.decide(obs(1)),
            Some(LockDecision::SetSpins(default_spin + 5))
        );
    }

    #[test]
    fn ewma_adapt_reenters_combined_at_default_spin_after_blocking() {
        let mut p = EwmaAdapt::new(3.0, 0.5, 5);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        // One heavy burst: ewma 5.0 > threshold, spins 10 -> 0.
        assert_eq!(p.decide(obs(10)), Some(LockDecision::PureBlocking));
        // Still above threshold while the average decays.
        assert_eq!(p.decide(obs(2)), Some(LockDecision::PureBlocking)); // ewma 3.5
        // Below threshold (ewma 2.75): re-enter at the default spin count.
        assert_eq!(
            p.decide(obs(2)),
            Some(LockDecision::SetSpins(WaitingPolicy::default().spin))
        );
    }

    #[test]
    fn adaptive_lock_converges_to_spin_without_contention() {
        let (kind, _) = sim::run(cfg(1), || {
            let lock = AdaptiveLock::new_local();
            for _ in 0..10 {
                with_lock(&lock, || ctx::advance(Duration::micros(5)));
            }
            lock.inner().policy().kind()
        })
        .unwrap();
        assert_eq!(kind, LockKind::PureSpin, "no-contention lock must become pure spin");
    }

    #[test]
    fn adaptive_lock_converges_to_blocking_under_heavy_waiting() {
        // The *final* policy depends on the drain phase (waiting falls to
        // zero as searchers finish, flipping the lock back toward spin),
        // so assert on the trajectory: the lock must have been driven to
        // pure blocking at some point during the heavy phase.
        let (reached_blocking, _) = sim::run(cfg(8), || {
            let lock = Arc::new(AdaptiveLock::with_policy(
                ctx::current_node(),
                Box::new(SimpleAdapt::new(1, 5)),
                2,
            ));
            let procs: Vec<ProcId> = (0..8).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let l = lock.clone();
                move || {
                    for _ in 0..30 {
                        // Long critical sections -> deep waiting queues.
                        with_lock(l.as_ref(), || ctx::advance(Duration::millis(1)));
                    }
                }
            });
            lock.inner()
                .transition_log()
                .transitions()
                .iter()
                .any(|t| t.to.contains("{blocking}"))
        })
        .unwrap();
        assert!(
            reached_blocking,
            "heavily contended lock must be driven to pure blocking"
        );
    }

    #[test]
    fn sampling_period_is_respected() {
        let (stats, _) = sim::run(cfg(1), || {
            let lock = AdaptiveLock::with_policy(
                ctx::current_node(),
                Box::new(SimpleAdapt::default()),
                2,
            );
            for _ in 0..10 {
                with_lock(&lock, || {});
            }
            lock.loop_stats()
        })
        .unwrap();
        assert_eq!(stats.observations, 5, "every other unlock must be sampled");
    }

    #[test]
    fn mutual_exclusion_under_adaptation() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = Arc::new(AdaptiveLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for _ in 0..25 {
                        with_lock(l.as_ref(), || {
                            let v = c.read();
                            ctx::advance(Duration::micros(3));
                            c.write(v + 1);
                        });
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100, "adaptation must never break mutual exclusion");
    }

    #[test]
    fn reconfigurations_are_logged() {
        let (n, _) = sim::run(cfg(1), || {
            let lock = AdaptiveLock::new_local();
            for _ in 0..6 {
                with_lock(&lock, || {});
            }
            lock.inner().transition_log().len()
        })
        .unwrap();
        assert!(n >= 2, "uncontended unlocks must have triggered pure-spin decisions");
    }

    #[test]
    fn hysteresis_dead_band_suppresses_decisions() {
        let mut p = HysteresisAdapt::new(2, 5, 5);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        assert!(p.decide(obs(1)).is_some()); // below low: grow
        assert!(p.decide(obs(3)).is_none()); // inside band: nothing
        assert!(p.decide(obs(4)).is_none());
        assert!(p.decide(obs(6)).is_some()); // above high: shrink
    }

    #[test]
    fn ewma_smooths_bursts() {
        let mut p = EwmaAdapt::new(3.0, 0.5, 5);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        // A single burst of 10 with alpha 0.5 leaves ewma at 5, then
        // decays: 2.5, 1.25, ...
        p.decide(obs(10));
        assert!((p.ewma() - 5.0).abs() < 1e-9);
        p.decide(obs(0));
        assert!((p.ewma() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "band inverted")]
    fn hysteresis_validates_band() {
        let _ = HysteresisAdapt::new(5, 2, 1);
    }

    #[test]
    fn scheduler_adapt_switches_after_consecutive_deep_samples() {
        let mut p = SchedulerAdapt::new(3, 2);
        let obs = |w| LockObservation {
            waiting: w,
            at: VirtualTime::ZERO,
        };
        assert_eq!(p.decide(obs(5)), None, "one deep sample is not enough");
        assert_eq!(
            p.decide(obs(4)),
            Some(LockDecision::SetScheduler(SchedKind::Priority))
        );
        assert_eq!(p.current(), SchedKind::Priority);
        // A single shallow sample does not flap back.
        assert_eq!(p.decide(obs(0)), None);
        assert_eq!(p.decide(obs(5)), None, "deep again: stays Priority, no decision");
        assert_eq!(p.decide(obs(0)), None);
        assert_eq!(
            p.decide(obs(1)),
            Some(LockDecision::SetScheduler(SchedKind::Fcfs))
        );
        assert_eq!(p.current(), SchedKind::Fcfs);
    }

    #[test]
    fn adaptive_lock_reinstalls_scheduler_under_sustained_depth() {
        // End-to-end: an adaptive lock driven by SchedulerAdapt must end
        // up with the priority scheduler installed while deep queues
        // persist, and grants must then follow priorities.
        let (sched, _) = sim::run(cfg(6), || {
            let lock = Arc::new(AdaptiveLock::with_parts(
                ctx::current_node(),
                WaitingPolicy::pure_blocking(),
                SchedKind::Fcfs,
                crate::api::LockCosts::default(),
                Box::new(SchedulerAdapt::new(2, 2)),
                1,
            ));
            let procs: Vec<butterfly_sim::ProcId> = (0..6).map(butterfly_sim::ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let l = lock.clone();
                move || {
                    for _ in 0..20 {
                        with_lock(l.as_ref(), || ctx::advance(Duration::micros(400)));
                    }
                }
            });
            // The drain phase may flip back to FCFS; assert on the
            // trajectory: Priority must have been installed at some point.
            lock.inner()
                .transition_log()
                .transitions()
                .iter()
                .any(|t| t.to.starts_with("priority{"))
        })
        .unwrap();
        assert!(sched, "sustained deep queues must install the Priority scheduler");
    }
}
