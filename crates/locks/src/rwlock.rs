//! Reader-writer locks, including an adaptive variant — an instance of
//! the paper's closing future work ("use the concept of closely-coupled
//! adaptation in other operating system components as well").
//!
//! [`RwPolicy`] is the mutable attribute: reader-preferring maximizes
//! throughput for read-mostly phases but can starve writers;
//! writer-preferring bounds writer latency at the cost of read
//! throughput. [`AdaptiveRwLock`] monitors the waiting mix at release
//! time (same sampling-gate structure as the adaptive mutex) and flips
//! the preference to match the observed phase.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use adaptive_core::SamplingGate;
use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

use crate::api::{charge_overhead, LockCosts};

/// Which side a reader-writer lock favours when both are waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwPolicy {
    /// Grant waiting readers whenever no writer holds the lock.
    ReaderPreferring,
    /// Stall new readers while a writer waits.
    WriterPreferring,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Read,
    Write,
}

struct RwWaiter {
    tid: ThreadId,
    want: Want,
    /// Local grant flag (same handoff structure as the mutex family).
    flag: SimWord,
    parked: Arc<AtomicBool>,
}

struct RwState {
    /// Active readers.
    readers: u64,
    /// Writer holding the lock.
    writer: Option<ThreadId>,
    queue: VecDeque<RwWaiter>,
}

/// Statistics for a reader-writer lock.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RwStats {
    /// Read acquisitions.
    pub read_acquisitions: u64,
    /// Write acquisitions.
    pub write_acquisitions: u64,
    /// Policy flips performed (adaptive variant).
    pub reconfigurations: u64,
    /// Largest waiting queue seen.
    pub max_waiting: u64,
}

/// A blocking reader-writer lock with a runtime-mutable preference
/// attribute.
pub struct RwLock {
    node: NodeId,
    guard: SimWord,
    /// Current policy, stored in simulated memory (read on the contended
    /// path, rewritten on reconfiguration: `1R 1W`).
    policy_word: SimWord,
    waiting_readers: SimWord,
    waiting_writers: SimWord,
    state: Mutex<RwState>,
    costs: LockCosts,
    stats: Mutex<RwStats>,
}

impl RwLock {
    /// Create on `node` with the given initial preference.
    pub fn new_on(node: NodeId, policy: RwPolicy) -> RwLock {
        RwLock {
            node,
            guard: SimWord::new_on(node, 0),
            policy_word: SimWord::new_on(node, encode(policy)),
            waiting_readers: SimWord::new_on(node, 0),
            waiting_writers: SimWord::new_on(node, 0),
            state: Mutex::new(RwState {
                readers: 0,
                writer: None,
                queue: VecDeque::new(),
            }),
            costs: LockCosts::default(),
            stats: Mutex::new(RwStats::default()),
        }
    }

    /// Create on the caller's node (reader-preferring).
    pub fn new_local() -> RwLock {
        RwLock::new_on(ctx::current_node(), RwPolicy::ReaderPreferring)
    }

    fn guard_acquire(&self) {
        while self.guard.test_and_set() {}
    }

    fn guard_release(&self) {
        self.guard.store(0);
    }

    /// Current preference (charged read).
    pub fn policy(&self) -> RwPolicy {
        decode(self.policy_word.load())
    }

    /// Current preference without simulated cost (monitor peek).
    pub fn peek_policy(&self) -> RwPolicy {
        decode(self.policy_word.peek())
    }

    /// Reconfigure the preference (Ψ, `1R 1W`).
    pub fn set_policy(&self, policy: RwPolicy) {
        charge_overhead(self.costs.unlock_overhead);
        let old = self.policy_word.load();
        if old != encode(policy) {
            self.policy_word.store(encode(policy));
            self.stats.lock().unwrap().reconfigurations += 1;
        }
        // A policy flip may unblock a different side.
        self.guard_acquire();
        self.grant_waiters();
        self.guard_release();
    }

    /// Whether `want` can be admitted under `policy` given the current
    /// state. Callers hold the guard.
    fn admissible(&self, s: &RwState, want: Want, policy: RwPolicy) -> bool {
        match want {
            Want::Write => s.writer.is_none() && s.readers == 0,
            Want::Read => {
                if s.writer.is_some() {
                    return false;
                }
                match policy {
                    RwPolicy::ReaderPreferring => true,
                    RwPolicy::WriterPreferring => {
                        // Stall behind any queued writer.
                        !s.queue.iter().any(|w| w.want == Want::Write)
                    }
                }
            }
        }
    }

    /// Grant every currently admissible waiter (called under the guard).
    fn grant_waiters(&self) {
        let policy = decode(self.policy_word.peek());
        loop {
            let granted = {
                let mut s = self.state.lock().unwrap();
                // Scan in FIFO order; under writer preference a queued
                // writer blocks later readers by `admissible`.
                let idx = (0..s.queue.len()).find(|&i| {
                    let want = s.queue[i].want;
                    // A waiter is admissible only if every *earlier*
                    // same-kind conflict resolution allows it; keep FIFO
                    // within writers.
                    match want {
                        Want::Write => {
                            self.admissible(&s, Want::Write, policy)
                                && !s.queue.iter().take(i).any(|w| w.want == Want::Write)
                        }
                        Want::Read => self.admissible(&s, Want::Read, policy),
                    }
                });
                match idx {
                    Some(i) => {
                        let w = s.queue.remove(i).expect("index in range");
                        match w.want {
                            Want::Read => s.readers += 1,
                            Want::Write => s.writer = Some(w.tid),
                        }
                        Some(w)
                    }
                    None => None,
                }
            };
            match granted {
                Some(w) => {
                    w.flag.store(1);
                    // Acquire pairs with the waiter's Release publish of
                    // `parked`; a waiter that missed this grant had its
                    // `flag` read before our store (the `SimWord` mutex
                    // orders the two critical sections), so its `true`
                    // is visible here and the unpark is delivered.
                    if w.parked.load(Ordering::Acquire) {
                        ctx::unpark(w.tid);
                    }
                    // A granted writer excludes everything else.
                    if w.want == Want::Write {
                        break;
                    }
                }
                None => break,
            }
        }
    }

    fn acquire(&self, want: Want) {
        charge_overhead(self.costs.lock_overhead);
        let policy = self.policy();
        self.guard_acquire();
        {
            let mut s = self.state.lock().unwrap();
            let no_conflicting_queue = match want {
                Want::Read => self.admissible(&s, Want::Read, policy) && s.queue.is_empty()
                    || (policy == RwPolicy::ReaderPreferring
                        && self.admissible(&s, Want::Read, policy)),
                Want::Write => {
                    self.admissible(&s, Want::Write, policy) && s.queue.is_empty()
                }
            };
            if no_conflicting_queue {
                match want {
                    Want::Read => {
                        s.readers += 1;
                        drop(s);
                        self.guard_release();
                        self.stats.lock().unwrap().read_acquisitions += 1;
                        return;
                    }
                    Want::Write => {
                        s.writer = Some(ctx::current());
                        drop(s);
                        self.guard_release();
                        self.stats.lock().unwrap().write_acquisitions += 1;
                        return;
                    }
                }
            }
        }
        // Register and wait.
        match want {
            Want::Read => self.waiting_readers.fetch_add(1),
            Want::Write => self.waiting_writers.fetch_add(1),
        };
        let flag = SimWord::new_on(ctx::current_node(), 0);
        let parked = Arc::new(AtomicBool::new(false));
        ctx::charge_mem(ctx::MemOp::Write, self.node); // registration
        {
            let mut s = self.state.lock().unwrap();
            s.queue.push_back(RwWaiter {
                tid: ctx::current(),
                want,
                flag: flag.clone(),
                parked: parked.clone(),
            });
            let depth = s.queue.len() as u64;
            let mut st = self.stats.lock().unwrap();
            st.max_waiting = st.max_waiting.max(depth);
        }
        self.guard_release();
        // Block until granted (short spin first, like combined(4)).
        let mut probes = 0u32;
        while flag.load() == 0 {
            probes += 1;
            if probes > 4 {
                // Release publish + mutex-protected `flag` re-check: the
                // lost-wakeup race is settled by the `SimWord` mutex (see
                // the granter's note), so SeqCst's total order buys
                // nothing. The `false` resets need only same-variable
                // coherence; a stale `true` costs one spurious unpark.
                parked.store(true, Ordering::Release);
                if flag.load() == 1 {
                    parked.store(false, Ordering::Relaxed);
                    break;
                }
                ctx::park();
                parked.store(false, Ordering::Relaxed);
            }
        }
        match want {
            Want::Read => {
                self.waiting_readers.fetch_sub(1);
                self.stats.lock().unwrap().read_acquisitions += 1;
            }
            Want::Write => {
                self.waiting_writers.fetch_sub(1);
                self.stats.lock().unwrap().write_acquisitions += 1;
            }
        }
    }

    /// Acquire for shared reading.
    pub fn read_lock(&self) {
        self.acquire(Want::Read);
    }

    /// Acquire for exclusive writing.
    pub fn write_lock(&self) {
        self.acquire(Want::Write);
    }

    /// Release a read acquisition.
    pub fn read_unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.guard_acquire();
        {
            let mut s = self.state.lock().unwrap();
            assert!(s.readers > 0, "read_unlock without a read lock");
            s.readers -= 1;
        }
        self.grant_waiters();
        self.guard_release();
    }

    /// Release a write acquisition.
    pub fn write_unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.guard_acquire();
        {
            let mut s = self.state.lock().unwrap();
            assert_eq!(
                s.writer,
                Some(ctx::current()),
                "write_unlock by a thread that does not hold the write lock"
            );
            s.writer = None;
        }
        self.grant_waiters();
        self.guard_release();
    }

    /// Run `f` under a read lock.
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> R {
        self.read_lock();
        let r = f();
        self.read_unlock();
        r
    }

    /// Run `f` under the write lock.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        self.write_lock();
        let r = f();
        self.write_unlock();
        r
    }

    /// Currently waiting (readers, writers) — monitor peek.
    pub fn waiting_now(&self) -> (u64, u64) {
        (self.waiting_readers.peek(), self.waiting_writers.peek())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RwStats {
        *self.stats.lock().unwrap()
    }
}

fn encode(p: RwPolicy) -> u64 {
    match p {
        RwPolicy::ReaderPreferring => 0,
        RwPolicy::WriterPreferring => 1,
    }
}

fn decode(v: u64) -> RwPolicy {
    if v == 0 {
        RwPolicy::ReaderPreferring
    } else {
        RwPolicy::WriterPreferring
    }
}

/// An adaptive reader-writer lock: monitors the waiting mix at release
/// time (sampled through a gate, as the adaptive mutex does) and flips
/// the preference attribute to match the phase — writer-preferring when
/// writers queue up, reader-preferring when the workload is read-mostly.
pub struct AdaptiveRwLock {
    inner: RwLock,
    gate: SamplingGate,
    /// Flip when the waiting-writer share crosses these bounds (with
    /// hysteresis to avoid thrashing).
    writer_share_high: f64,
    writer_share_low: f64,
}

impl AdaptiveRwLock {
    /// Create on `node` with default thresholds (flip to
    /// writer-preferring above 30% waiting writers, back below 10%).
    pub fn new_on(node: NodeId) -> AdaptiveRwLock {
        AdaptiveRwLock {
            inner: RwLock::new_on(node, RwPolicy::ReaderPreferring),
            gate: SamplingGate::every(2),
            writer_share_high: 0.3,
            writer_share_low: 0.1,
        }
    }

    /// Create on the caller's node.
    pub fn new_local() -> AdaptiveRwLock {
        AdaptiveRwLock::new_on(ctx::current_node())
    }

    /// The wrapped lock (for inspection).
    pub fn inner(&self) -> &RwLock {
        &self.inner
    }

    fn adapt(&self) {
        if !self.gate.tick() {
            return;
        }
        charge_overhead(self.inner.costs.monitor_overhead);
        let readers = self.inner.waiting_readers.load() as f64;
        let writers = self.inner.waiting_writers.load() as f64;
        let total = readers + writers;
        if total < 1.0 {
            return;
        }
        let share = writers / total;
        let current = self.inner.peek_policy();
        if share > self.writer_share_high && current == RwPolicy::ReaderPreferring {
            self.inner.set_policy(RwPolicy::WriterPreferring);
        } else if share < self.writer_share_low && current == RwPolicy::WriterPreferring {
            self.inner.set_policy(RwPolicy::ReaderPreferring);
        }
    }

    /// Acquire for shared reading.
    pub fn read_lock(&self) {
        self.inner.read_lock();
    }

    /// Release a read acquisition (runs the feedback loop).
    pub fn read_unlock(&self) {
        self.inner.read_unlock();
        self.adapt();
    }

    /// Acquire for exclusive writing.
    pub fn write_lock(&self) {
        self.inner.write_lock();
    }

    /// Release a write acquisition (runs the feedback loop).
    pub fn write_unlock(&self) {
        self.inner.write_unlock();
        self.adapt();
    }

    /// Run `f` under a read lock.
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> R {
        self.read_lock();
        let r = f();
        self.read_unlock();
        r
    }

    /// Run `f` under the write lock.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        self.write_lock();
        let r = f();
        self.write_unlock();
        r
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RwStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::fork;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn readers_share_writers_exclude() {
        let (log, _) = sim::run(cfg(4), || {
            let rw = Arc::new(RwLock::new_local());
            // (concurrent readers now, max concurrent readers, writer overlap violations)
            let log = SimCell::new_local((0i64, 0i64, 0i64));
            let handles: Vec<_> = (0..4)
                .map(|p| {
                    let (rw, log) = (Arc::clone(&rw), log.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        for i in 0..10 {
                            if (p + i) % 4 == 0 {
                                rw.write(|| {
                                    log.poke(|v| {
                                        if v.0 != 0 {
                                            v.2 += 1; // writer saw readers
                                        }
                                    });
                                    ctx::advance(Duration::micros(30));
                                });
                            } else {
                                rw.read(|| {
                                    log.poke(|v| {
                                        v.0 += 1;
                                        v.1 = v.1.max(v.0);
                                    });
                                    ctx::advance(Duration::micros(30));
                                    log.poke(|v| v.0 -= 1);
                                });
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            log.peek()
        })
        .unwrap();
        assert_eq!(log.2, 0, "a writer overlapped readers");
        assert!(log.1 >= 2, "readers never actually shared (max {})", log.1);
    }

    #[test]
    fn writer_preference_bounds_writer_wait() {
        // Readers arrive continuously; a writer must still get in under
        // writer preference.
        let (got_in, _) = sim::run(cfg(3), || {
            let rw = Arc::new(RwLock::new_on(ctx::current_node(), RwPolicy::WriterPreferring));
            let stop = butterfly_sim::SimWord::new_local(0);
            let readers: Vec<_> = (1..3)
                .map(|p| {
                    let (rw, stop) = (Arc::clone(&rw), stop.clone());
                    fork(ProcId(p), format!("r{p}"), move || {
                        while stop.load() == 0 {
                            rw.read(|| ctx::advance(Duration::micros(50)));
                        }
                    })
                })
                .collect();
            ctx::advance(Duration::micros(200));
            let t0 = ctx::now();
            rw.write(|| ctx::advance(Duration::micros(10)));
            let waited = ctx::now().since(t0);
            stop.store(1);
            for r in readers {
                r.join();
            }
            waited < Duration::millis(2)
        })
        .unwrap();
        assert!(got_in, "writer starved despite writer preference");
    }

    #[test]
    fn policy_flip_wakes_stalled_readers() {
        let (ok, _) = sim::run(cfg(3), || {
            let rw = Arc::new(RwLock::new_on(ctx::current_node(), RwPolicy::WriterPreferring));
            // Hold a read lock, queue a writer (stalls), queue a reader
            // (stalled behind the writer under writer preference).
            rw.read_lock();
            let rw_w = Arc::clone(&rw);
            let writer = fork(ProcId(1), "writer", move || {
                rw_w.write(|| ctx::advance(Duration::micros(10)));
            });
            ctx::advance(Duration::micros(100));
            let rw_r = Arc::clone(&rw);
            let reader = fork(ProcId(2), "reader", move || {
                rw_r.read(|| ());
            });
            ctx::advance(Duration::micros(100));
            assert_eq!(rw.waiting_now(), (1, 1));
            rw.read_unlock(); // writer goes first, then the reader
            writer.join();
            reader.join();
            true
        })
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn adaptive_rwlock_flips_with_the_workload() {
        let (flips, _) = sim::run(cfg(4), || {
            let rw = Arc::new(AdaptiveRwLock::new_local());
            assert_eq!(rw.inner().peek_policy(), RwPolicy::ReaderPreferring);
            // Write-heavy phase: many writers queue.
            let writers: Vec<_> = (1..4)
                .map(|p| {
                    let rw = Arc::clone(&rw);
                    fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..15 {
                            rw.write(|| ctx::advance(Duration::micros(100)));
                        }
                    })
                })
                .collect();
            for _ in 0..15 {
                rw.write(|| ctx::advance(Duration::micros(100)));
            }
            for w in writers {
                w.join();
            }
            rw.stats().reconfigurations
        })
        .unwrap();
        assert!(flips >= 1, "adaptive RW lock never flipped policy");
    }

    #[test]
    fn rw_stats_count_both_sides() {
        let (s, _) = sim::run(cfg(1), || {
            let rw = RwLock::new_local();
            rw.read(|| ());
            rw.read(|| ());
            rw.write(|| ());
            rw.stats()
        })
        .unwrap();
        assert_eq!(s.read_acquisitions, 2);
        assert_eq!(s.write_acquisitions, 1);
    }

    #[test]
    fn unlock_misuse_is_detected() {
        let err = sim::run(cfg(1), || {
            let rw = RwLock::new_local();
            rw.read_unlock();
        })
        .unwrap_err();
        match err {
            sim::SimError::ThreadPanicked { message, .. } => {
                assert!(message.contains("without a read lock"), "{message}");
            }
            other => panic!("unexpected {other}"),
        }
    }
}
