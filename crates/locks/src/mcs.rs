//! An MCS queue lock (Mellor-Crummey & Scott), included as the classic
//! local-spinning baseline: each waiter spins on a flag in its *own*
//! memory module, so contention does not hammer the lock's home node.
//! The paper's reconfigurable lock borrows exactly this idea for its
//! registered waiters.

use std::collections::HashMap;
use std::sync::Mutex;

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

use crate::api::{charge_overhead, Lock, LockCosts, LockStats};
use crate::oracle::{LockOracle, OracleSlot};

/// One queue node: the waiter spins on `flag` (homed on its node);
/// `next` is written by the successor during enqueue.
struct QNode {
    /// 0 = wait, 1 = granted.
    flag: SimWord,
    /// 0 = none, else successor record id.
    next: SimWord,
    /// Owning thread, for oracle reporting.
    tid: ThreadId,
}

/// The MCS list-based queue lock.
pub struct McsLock {
    /// 0 = free, else tail record id.
    tail: SimWord,
    nodes: Mutex<HashMap<u64, QNode>>,
    next_id: SimWord,
    costs: LockCosts,
    stats: Mutex<LockStats>,
    oracle: OracleSlot,
}

thread_local! {
    /// Record id of this thread's in-flight acquisition, per lock
    /// instance (keyed by the lock's address).
    static MY_RECORD: std::cell::RefCell<HashMap<usize, u64>> =
        std::cell::RefCell::new(HashMap::new());
}

impl McsLock {
    /// Create on an explicit node.
    pub fn new_on(node: NodeId) -> McsLock {
        McsLock::with_costs(node, LockCosts::default())
    }

    /// Create on the caller's node.
    pub fn new_local() -> McsLock {
        McsLock::new_on(ctx::current_node())
    }

    /// Create with an explicit cost model.
    pub fn with_costs(node: NodeId, costs: LockCosts) -> McsLock {
        McsLock {
            tail: SimWord::new_on(node, 0),
            nodes: Mutex::new(HashMap::new()),
            next_id: SimWord::new_on(node, 1),
            costs,
            stats: Mutex::new(LockStats::default()),
            oracle: OracleSlot::default(),
        }
    }

    /// Attach an invariant oracle (host-memory only, does not perturb
    /// the simulated cost model). At most one oracle per lock.
    pub fn attach_oracle(&self, oracle: std::sync::Arc<LockOracle>) {
        self.oracle.attach(oracle);
    }

    fn key(&self) -> usize {
        self as *const McsLock as usize
    }
}

impl Lock for McsLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        // Allocate my queue node on my own memory module.
        let me = self.next_id.peek();
        self.next_id.poke(me + 1);
        let my_node = ctx::current_node();
        self.nodes.lock().unwrap().insert(
            me,
            QNode {
                flag: SimWord::new_on(my_node, 0),
                next: SimWord::new_on(my_node, 0),
                tid: ctx::current(),
            },
        );
        MY_RECORD.with(|m| m.borrow_mut().insert(self.key(), me));

        let pred = self.tail.swap(me);
        if pred != 0 {
            // The tail swap decided the queue position; report it before
            // the next simulator call so oracle order matches swap order.
            if let Some(o) = self.oracle.get() {
                o.on_enqueue(ctx::current());
            }
            // Link behind the predecessor (remote write to its node).
            let pred_next = self.nodes.lock().unwrap()[&pred].next.clone();
            pred_next.store(me);
            // Spin on my local flag.
            let my_flag = self.nodes.lock().unwrap()[&me].flag.clone();
            while my_flag.load() == 0 {}
            if let Some(o) = self.oracle.get() {
                o.on_acquire(ctx::current());
            }
            let mut s = self.stats.lock().unwrap();
            s.acquisitions += 1;
            s.contended += 1;
            s.handoffs += 1;
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        } else {
            if let Some(o) = self.oracle.get() {
                o.on_acquire(ctx::current());
            }
            self.stats.lock().unwrap().acquisitions += 1;
        }
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        let me = MY_RECORD.with(|m| m.borrow_mut().remove(&self.key()))
            .expect("McsLock::unlock by a thread that does not hold it");
        // Oracle: announce the release *before* any state transition can
        // let the next acquirer in, so observations stay well-ordered.
        if let Some(o) = self.oracle.get() {
            o.on_release(ctx::current());
        }
        let my_next = self.nodes.lock().unwrap()[&me].next.clone();
        if my_next.load() == 0 {
            // No known successor: try to swing tail back to free.
            if self.tail.compare_exchange(me, 0).is_ok() {
                self.nodes.lock().unwrap().remove(&me);
                self.stats.lock().unwrap().releases += 1;
                return;
            }
            // A successor is mid-enqueue; wait for the link.
            while my_next.load() == 0 {}
        }
        let succ = my_next.peek();
        let (succ_flag, succ_tid) = {
            let nodes = self.nodes.lock().unwrap();
            (nodes[&succ].flag.clone(), nodes[&succ].tid)
        };
        if let Some(o) = self.oracle.get() {
            o.on_grant(succ_tid);
        }
        succ_flag.store(1); // remote write to the successor's node
        self.nodes.lock().unwrap().remove(&me);
        self.stats.lock().unwrap().releases += 1;
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        let me = self.next_id.peek();
        // Succeed only when the queue is empty.
        if self.tail.compare_exchange(0, me).is_err() {
            return false;
        }
        self.next_id.poke(me + 1);
        let my_node = ctx::current_node();
        self.nodes.lock().unwrap().insert(
            me,
            QNode {
                flag: SimWord::new_on(my_node, 0),
                next: SimWord::new_on(my_node, 0),
                tid: ctx::current(),
            },
        );
        MY_RECORD.with(|m| m.borrow_mut().insert(self.key(), me));
        if let Some(o) = self.oracle.get() {
            o.on_acquire(ctx::current());
        }
        self.stats.lock().unwrap().acquisitions += 1;
        true
    }

    fn name(&self) -> &'static str {
        "mcs"
    }

    fn waiting_now(&self) -> u64 {
        // Queue length minus the holder.
        (self.nodes.lock().unwrap().len() as u64).saturating_sub(1)
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::fork_join_all;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn mutual_exclusion_holds() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(McsLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for _ in 0..25 {
                        with_lock(l.as_ref(), || {
                            let v = c.read();
                            ctx::advance(Duration::micros(1));
                            c.write(v + 1);
                        });
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn grants_are_fifo() {
        let (order, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(McsLock::new_local());
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock();
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (l, o) = (lock.clone(), order.clone());
                    cthreads::fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(10 * p as u64));
                        l.lock();
                        o.poke(|v| v.push(p));
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn contended_spinning_is_mostly_local() {
        // The defining property of MCS: waiters spin on their own node,
        // so under contention local reads dominate remote reads even when
        // the lock itself is remote to every waiter.
        let (_, report) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(McsLock::new_on(sim::NodeId(0)));
            let procs: Vec<ProcId> = (1..4).map(ProcId).collect();
            lock.lock();
            let handles: Vec<_> = procs
                .iter()
                .map(|&p| {
                    let l = lock.clone();
                    cthreads::fork(p, format!("w{}", p.0), move || {
                        l.lock();
                        ctx::advance(Duration::millis(1));
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(5));
            lock.unlock();
            for h in handles {
                h.join();
            }
        })
        .unwrap();
        assert!(
            report.mem.reads_local > report.mem.reads_remote,
            "MCS waiters must spin locally (local {} vs remote {})",
            report.mem.reads_local,
            report.mem.reads_remote
        );
    }

    #[test]
    fn try_lock_respects_queue() {
        let (r, _) = sim::run(cfg(1), || {
            let lock = McsLock::new_local();
            assert!(lock.try_lock());
            let while_held = lock.try_lock();
            lock.unlock();
            let after = lock.try_lock();
            lock.unlock();
            (while_held, after)
        })
        .unwrap();
        assert!(!r.0);
        assert!(r.1);
    }

    #[test]
    fn unlock_without_lock_is_reported_as_thread_panic() {
        let err = sim::run(cfg(1), || {
            let lock = McsLock::new_local();
            lock.unlock();
        })
        .unwrap_err();
        match err {
            sim::SimError::ThreadPanicked { message, .. } => {
                assert!(message.contains("does not hold it"), "got: {message}");
            }
            other => panic!("expected thread panic, got {other}"),
        }
    }
}
