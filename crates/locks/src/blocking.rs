//! The blocking lock: contended acquirers are descheduled and the
//! releaser hands the lock directly to the first queued waiter.
//!
//! This is the "Blocking Lock" column of the paper's TSP tables and the
//! `blocking-lock` rows of Tables 4–6. Its lock/unlock latencies carry
//! the thread package's queue-manipulation and context-switch costs; its
//! virtue is that a waiting thread frees its processor for other work.
//!
//! Protocol (futex-like, uncontended path is one RMW):
//!
//! * `word`: 0 = free, 1 = held, 2 = held with queued waiters;
//! * `guard`: a short test-and-set critical section protecting the queue
//!   and the 1↔2 transitions;
//! * grants are *handoffs*: the releaser never clears `word` when a
//!   waiter exists, it marks the waiter's local `granted` flag and
//!   unparks it.

use std::collections::VecDeque;
use std::sync::Mutex;

use butterfly_sim::{ctx, NodeId, SimWord, ThreadId};

use crate::api::{charge_overhead, Lock, LockCosts, LockStats, PatternSample};
use crate::oracle::{LockOracle, OracleSlot};

const FREE: u64 = 0;
const HELD: u64 = 1;
const HELD_WAITERS: u64 = 2;

/// Cost of the release-time interaction with the thread scheduler
/// (scanning for blocked threads to resume), charged on every unlock.
const SCHED_CHECK: butterfly_sim::Duration = butterfly_sim::Duration::micros(6);

struct BlockedWaiter {
    tid: ThreadId,
    /// Local flag the grant is posted to (homed on the waiter's node).
    granted: SimWord,
}

/// FIFO blocking lock with direct handoff.
pub struct BlockingLock {
    word: SimWord,
    guard: SimWord,
    /// Waiting-thread count, maintained in simulated memory so monitors
    /// that sense it pay for the read.
    waiting: SimWord,
    queue: Mutex<VecDeque<BlockedWaiter>>,
    costs: LockCosts,
    stats: Mutex<LockStats>,
    trace: Mutex<Option<Vec<PatternSample>>>,
    oracle: OracleSlot,
}

impl BlockingLock {
    /// Create on an explicit node.
    pub fn new_on(node: NodeId) -> BlockingLock {
        BlockingLock::with_costs(node, LockCosts::default())
    }

    /// Create on the caller's node.
    pub fn new_local() -> BlockingLock {
        BlockingLock::new_on(ctx::current_node())
    }

    /// Create with an explicit cost model.
    pub fn with_costs(node: NodeId, costs: LockCosts) -> BlockingLock {
        BlockingLock {
            word: SimWord::new_on(node, FREE),
            guard: SimWord::new_on(node, 0),
            waiting: SimWord::new_on(node, 0),
            queue: Mutex::new(VecDeque::new()),
            costs,
            stats: Mutex::new(LockStats::default()),
            trace: Mutex::new(None),
            oracle: OracleSlot::default(),
        }
    }

    /// Attach an invariant oracle (host-memory only, does not perturb
    /// the simulated cost model). At most one oracle per lock.
    pub fn attach_oracle(&self, oracle: std::sync::Arc<LockOracle>) {
        self.oracle.attach(oracle);
    }

    fn guard_acquire(&self) {
        while self.guard.test_and_set() {}
    }

    fn guard_release(&self) {
        self.guard.store(0);
    }

    fn record_sample(&self) {
        if let Some(tr) = self.trace.lock().unwrap().as_mut() {
            tr.push(PatternSample {
                at: ctx::now(),
                waiting: self.waiting.peek(),
            });
        }
    }
}

impl Lock for BlockingLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        // The Cthreads-style blocking lock is heavyweight by design: it
        // always goes through its guard and registration bookkeeping
        // (paper Table 4: the blocking lock op costs ~2x a spin lock op
        // even uncontended). Uncontended acquire below.
        self.guard_acquire();
        if self.word.compare_exchange(FREE, HELD).is_ok() {
            // Registration bookkeeping write even on success.
            ctx::charge_mem(ctx::MemOp::Write, self.word.home());
            self.guard_release();
            if let Some(o) = self.oracle.get() {
                o.on_acquire(ctx::current());
            }
            self.stats.lock().unwrap().acquisitions += 1;
            return;
        }
        self.guard_release();
        // Contended: register and block. All queue manipulation happens
        // under the guard; transitions of `word` are CAS-based so they
        // compose safely with unguarded CAS paths.
        let waiting_now = self.waiting.fetch_add(1) + 1;
        if let Some(o) = self.oracle.get() {
            o.on_waiting_inc();
        }
        let granted = SimWord::new_on(ctx::current_node(), 0);
        loop {
            self.guard_acquire();
            let cur = self.word.load();
            if cur == FREE {
                if self.word.compare_exchange(FREE, HELD).is_ok() {
                    self.guard_release();
                    break; // acquired without blocking after all
                }
                // A fast-path locker slipped in; reassess.
                self.guard_release();
                continue;
            }
            if self.word.compare_exchange(cur, HELD_WAITERS).is_err() {
                // Holder released (or state changed) concurrently.
                self.guard_release();
                continue;
            }
            self.queue.lock().unwrap().push_back(BlockedWaiter {
                tid: ctx::current(),
                granted: granted.clone(),
            });
            if let Some(o) = self.oracle.get() {
                o.on_enqueue(ctx::current());
            }
            self.guard_release();
            // Block until granted (loop filters stale unpark permits).
            while granted.load() == 0 {
                ctx::park();
            }
            break;
        }
        if let Some(o) = self.oracle.get() {
            o.on_acquire(ctx::current());
        }
        self.waiting.fetch_sub(1);
        if let Some(o) = self.oracle.get() {
            o.on_waiting_dec();
        }
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        s.contended += 1;
        s.max_waiting = s.max_waiting.max(waiting_now);
        s.total_wait_nanos += ctx::now().since(t0).as_nanos();
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.record_sample();
        // Release always interacts with the thread scheduler (checking
        // for blocked threads to resume) — the dominant cost of the
        // paper's blocking-lock unlock row (Table 5).
        charge_overhead(SCHED_CHECK);
        // Oracle: announce the release *before* any state transition can
        // let the next acquirer in, so observations stay well-ordered.
        if let Some(o) = self.oracle.get() {
            o.on_release(ctx::current());
        }
        self.guard_acquire();
        if self.word.compare_exchange(HELD, FREE).is_ok() {
            self.guard_release();
            self.stats.lock().unwrap().releases += 1;
            return;
        }
        let next = self.queue.lock().unwrap().pop_front();
        match next {
            Some(w) => {
                if self.queue.lock().unwrap().is_empty() {
                    self.word.store(HELD);
                } else {
                    self.word.store(HELD_WAITERS);
                }
                self.guard_release();
                if let Some(o) = self.oracle.get() {
                    o.on_grant(w.tid);
                }
                w.granted.store(1); // remote write to the waiter's node
                ctx::unpark(w.tid);
                let mut s = self.stats.lock().unwrap();
                s.releases += 1;
                s.handoffs += 1;
            }
            None => {
                // Waiters gave up registering between fetch_add and
                // enqueue, or acquired via the FREE re-check.
                self.word.store(FREE);
                self.guard_release();
                self.stats.lock().unwrap().releases += 1;
            }
        }
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        let got = self.word.compare_exchange(FREE, HELD).is_ok();
        if got {
            if let Some(o) = self.oracle.get() {
                o.on_acquire(ctx::current());
            }
            self.stats.lock().unwrap().acquisitions += 1;
        }
        got
    }

    fn name(&self) -> &'static str {
        "blocking"
    }

    fn waiting_now(&self) -> u64 {
        self.waiting.peek()
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }

    fn enable_tracing(&self) {
        *self.trace.lock().unwrap() = Some(Vec::new());
    }

    fn take_trace(&self) -> Vec<PatternSample> {
        self.trace
            .lock()
            .unwrap()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::{fork, fork_join_all};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn mutual_exclusion_holds() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(BlockingLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for _ in 0..25 {
                        with_lock(l.as_ref(), || {
                            let v = c.read();
                            ctx::advance(Duration::micros(3));
                            c.write(v + 1);
                        });
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn grants_are_fifo_handoffs() {
        let order = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(BlockingLock::new_local());
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock();
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (l, o) = (lock.clone(), order.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(10 * p as u64));
                        l.lock();
                        o.poke(|v| v.push(p));
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            lock.unlock();
            for h in handles {
                h.join();
            }
            (order.peek(), lock.stats().handoffs)
        })
        .unwrap()
        .0;
        assert_eq!(order.0, vec![1, 2, 3]);
        assert!(order.1 >= 2, "queued grants must be handoffs");
    }

    #[test]
    fn blocked_waiter_frees_its_processor() {
        // Holder on proc 1; waiter on proc 0 blocks; a third thread on
        // proc 0 must run while the waiter is blocked.
        let (ran, _) = sim::run(cfg(2), || {
            let lock = std::sync::Arc::new(BlockingLock::new_local());
            let progress = SimCell::new_local(0u64);
            let l2 = lock.clone();
            let holder = fork(ProcId(1), "holder", move || {
                l2.lock();
                ctx::advance(Duration::millis(5));
                l2.unlock();
            });
            ctx::advance(Duration::millis(1)); // holder owns the lock now
            let p2 = progress.clone();
            fork(ProcId(0), "background", move || {
                p2.write(1);
            });
            lock.lock(); // blocks ~4ms; background must run meanwhile
            let ran = progress.read();
            lock.unlock();
            holder.join();
            ran
        })
        .unwrap();
        assert_eq!(ran, 1, "processor was not freed while blocking");
    }

    #[test]
    fn waiting_count_tracks_blocked_threads() {
        let w = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(BlockingLock::new_local());
            lock.lock();
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let l = lock.clone();
                    fork(ProcId(p), format!("w{p}"), move || {
                        l.lock();
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            let peak = lock.waiting_now();
            lock.unlock();
            for h in handles {
                h.join();
            }
            let after = lock.waiting_now();
            (peak, after, lock.stats().max_waiting)
        })
        .unwrap()
        .0;
        assert_eq!(w.0, 3);
        assert_eq!(w.1, 0);
        assert_eq!(w.2, 3);
    }

    #[test]
    fn tracing_records_pattern_samples() {
        let (trace, _) = sim::run(cfg(2), || {
            let lock = std::sync::Arc::new(BlockingLock::new_local());
            lock.enable_tracing();
            let l2 = lock.clone();
            let h = fork(ProcId(1), "w", move || {
                for _ in 0..5 {
                    l2.lock();
                    ctx::advance(Duration::micros(10));
                    l2.unlock();
                }
            });
            for _ in 0..5 {
                lock.lock();
                ctx::advance(Duration::micros(10));
                lock.unlock();
            }
            h.join();
            lock.take_trace()
        })
        .unwrap();
        assert_eq!(trace.len(), 10, "one sample per unlock");
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at), "samples must be time-ordered");
    }

    #[test]
    fn uncontended_lock_goes_through_guard_and_registration() {
        let (m, _) = sim::run(cfg(1), || {
            let lock = BlockingLock::with_costs(ctx::current_node(), LockCosts::free());
            let before = ctx::cost_meter();
            lock.lock();
            let d = ctx::cost_meter() - before;
            lock.unlock();
            d
        })
        .unwrap();
        // Guard TAS + word CAS + registration write: heavier than the
        // single RMW of a spin lock, as in the paper's Table 4.
        assert_eq!(m.rmws, 2);
        assert!(m.writes() >= 3);
    }

    #[test]
    fn try_lock_semantics() {
        let (r, _) = sim::run(cfg(1), || {
            let lock = BlockingLock::new_local();
            assert!(lock.try_lock());
            let held = lock.try_lock();
            lock.unlock();
            let after = lock.try_lock();
            lock.unlock();
            (held, after)
        })
        .unwrap();
        assert!(!r.0 && r.1);
    }
}
