//! Configurable lock schedulers.
//!
//! The paper decomposes a lock's scheduling into three sub-components
//! (Section 5.1): **registration** (logging all threads desiring access —
//! without it the lock cannot apply per-thread waiting policies),
//! **acquisition** (the waiting mechanism applied to each registered
//! thread — implemented by the lock's acquisition loop), and **release**
//! (selecting the next thread to be granted the lock). This module
//! implements the registration and release components for the three
//! schedulers the paper compares: FCFS, Priority, and Handoff.

use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use adaptive_core::MethodSetId;
use butterfly_sim::{SimWord, ThreadId};

/// Which scheduler implementation is installed (an element of Γ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// First-come-first-served.
    Fcfs,
    /// Highest registered priority first (ties FCFS).
    Priority,
    /// Owner-designated successor first (Black's handoff scheduling),
    /// FCFS fallback.
    Handoff,
}

impl SchedKind {
    /// The Γ identifier used in configuration descriptors.
    pub fn method_set(self) -> MethodSetId {
        MethodSetId(match self {
            SchedKind::Fcfs => "fcfs",
            SchedKind::Priority => "priority",
            SchedKind::Handoff => "handoff",
        })
    }

    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn LockScheduler> {
        match self {
            SchedKind::Fcfs => Box::new(FcfsScheduler::default()),
            SchedKind::Priority => Box::new(PriorityScheduler::default()),
            SchedKind::Handoff => Box::new(HandoffScheduler::default()),
        }
    }
}

impl std::fmt::Display for SchedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.method_set().0)
    }
}

/// A registered waiter.
#[derive(Debug, Clone)]
pub struct Waiter {
    /// The waiting thread.
    pub tid: ThreadId,
    /// Its lock priority at registration time.
    pub priority: i32,
    /// Registration order (monotonic per lock).
    pub seq: u64,
    /// Grant flag, homed on the waiter's node (it spins/blocks on this).
    pub flag: SimWord,
    /// Whether the waiter is currently parked (the releaser unparks it
    /// only in that case, avoiding stray permits).
    pub parked: Arc<AtomicBool>,
}

/// Registration + release components of a lock's scheduler.
///
/// Implementations are driven under the lock's internal guard, so they
/// need no interior synchronization of their own.
pub trait LockScheduler: Send {
    /// Which Γ element this is.
    fn kind(&self) -> SchedKind;

    /// Registration component: log a thread desiring lock access.
    fn register(&mut self, w: Waiter);

    /// Release component: pick the next thread to grant the lock to.
    fn select(&mut self) -> Option<Waiter>;

    /// Remove a specific waiter (timed-out conditional acquire).
    fn remove(&mut self, tid: ThreadId) -> Option<Waiter>;

    /// Registered waiters not yet granted.
    fn len(&self) -> usize;

    /// Whether no waiters are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all waiters in grant order (used when swapping schedulers:
    /// pre-registered threads are transferred to the new scheduler).
    fn drain(&mut self) -> Vec<Waiter>;

    /// Handoff hint from the current owner (ignored by non-handoff
    /// schedulers).
    fn set_successor(&mut self, _tid: Option<ThreadId>) {}
}

/// First-come-first-served release order.
#[derive(Default)]
pub struct FcfsScheduler {
    queue: VecDeque<Waiter>,
}

impl LockScheduler for FcfsScheduler {
    fn kind(&self) -> SchedKind {
        SchedKind::Fcfs
    }

    fn register(&mut self, w: Waiter) {
        self.queue.push_back(w);
    }

    fn select(&mut self) -> Option<Waiter> {
        self.queue.pop_front()
    }

    fn remove(&mut self, tid: ThreadId) -> Option<Waiter> {
        let i = self.queue.iter().position(|w| w.tid == tid)?;
        self.queue.remove(i)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<Waiter> {
        self.queue.drain(..).collect()
    }
}

/// Highest-priority-first release order; FCFS among equals.
#[derive(Default)]
pub struct PriorityScheduler {
    // Linear scan on select: waiter sets are small and registration must
    // stay O(1) on the acquire path.
    queue: Vec<Waiter>,
}

impl LockScheduler for PriorityScheduler {
    fn kind(&self) -> SchedKind {
        SchedKind::Priority
    }

    fn register(&mut self, w: Waiter) {
        self.queue.push(w);
    }

    fn select(&mut self) -> Option<Waiter> {
        if self.queue.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.queue.len() {
            let (b, c) = (&self.queue[best], &self.queue[i]);
            if (c.priority, std::cmp::Reverse(c.seq)) > (b.priority, std::cmp::Reverse(b.seq)) {
                best = i;
            }
        }
        Some(self.queue.remove(best))
    }

    fn remove(&mut self, tid: ThreadId) -> Option<Waiter> {
        let i = self.queue.iter().position(|w| w.tid == tid)?;
        Some(self.queue.remove(i))
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<Waiter> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(w) = self.select() {
            out.push(w);
        }
        out
    }
}

/// Handoff scheduling: the owner may designate its successor; otherwise
/// FCFS.
#[derive(Default)]
pub struct HandoffScheduler {
    queue: VecDeque<Waiter>,
    successor: Option<ThreadId>,
}

impl LockScheduler for HandoffScheduler {
    fn kind(&self) -> SchedKind {
        SchedKind::Handoff
    }

    fn register(&mut self, w: Waiter) {
        self.queue.push_back(w);
    }

    fn select(&mut self) -> Option<Waiter> {
        if let Some(succ) = self.successor.take() {
            if let Some(i) = self.queue.iter().position(|w| w.tid == succ) {
                return self.queue.remove(i);
            }
        }
        self.queue.pop_front()
    }

    fn remove(&mut self, tid: ThreadId) -> Option<Waiter> {
        let i = self.queue.iter().position(|w| w.tid == tid)?;
        self.queue.remove(i)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<Waiter> {
        self.queue.drain(..).collect()
    }

    fn set_successor(&mut self, tid: Option<ThreadId>) {
        self.successor = tid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::NodeId;

    fn waiter(tid: usize, priority: i32, seq: u64) -> Waiter {
        Waiter {
            tid: ThreadId(tid),
            priority,
            seq,
            flag: SimWord::new_on(NodeId(0), 0),
            parked: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn fcfs_selects_in_arrival_order() {
        let mut s = FcfsScheduler::default();
        s.register(waiter(1, 5, 0));
        s.register(waiter(2, 9, 1));
        s.register(waiter(3, 1, 2));
        let order: Vec<usize> = std::iter::from_fn(|| s.select()).map(|w| w.tid.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn priority_selects_highest_then_fcfs() {
        let mut s = PriorityScheduler::default();
        s.register(waiter(1, 5, 0));
        s.register(waiter(2, 9, 1));
        s.register(waiter(3, 9, 2)); // same priority as 2, later arrival
        s.register(waiter(4, 1, 3));
        let order: Vec<usize> = std::iter::from_fn(|| s.select()).map(|w| w.tid.0).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
    }

    #[test]
    fn handoff_prefers_designated_successor() {
        let mut s = HandoffScheduler::default();
        s.register(waiter(1, 0, 0));
        s.register(waiter(2, 0, 1));
        s.register(waiter(3, 0, 2));
        s.set_successor(Some(ThreadId(3)));
        assert_eq!(s.select().unwrap().tid, ThreadId(3));
        // Hint is consumed; back to FCFS.
        assert_eq!(s.select().unwrap().tid, ThreadId(1));
        assert_eq!(s.select().unwrap().tid, ThreadId(2));
    }

    #[test]
    fn handoff_with_absent_successor_falls_back() {
        let mut s = HandoffScheduler::default();
        s.register(waiter(1, 0, 0));
        s.set_successor(Some(ThreadId(42)));
        assert_eq!(s.select().unwrap().tid, ThreadId(1));
    }

    #[test]
    fn remove_extracts_specific_waiter() {
        for kind in [SchedKind::Fcfs, SchedKind::Priority, SchedKind::Handoff] {
            let mut s = kind.build();
            s.register(waiter(1, 0, 0));
            s.register(waiter(2, 0, 1));
            assert_eq!(s.remove(ThreadId(1)).unwrap().tid, ThreadId(1));
            assert!(s.remove(ThreadId(1)).is_none());
            assert_eq!(s.len(), 1);
            assert_eq!(s.select().unwrap().tid, ThreadId(2));
        }
    }

    #[test]
    fn drain_preserves_grant_order() {
        let mut s = PriorityScheduler::default();
        s.register(waiter(1, 1, 0));
        s.register(waiter(2, 7, 1));
        let order: Vec<usize> = s.drain().into_iter().map(|w| w.tid.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert!(s.is_empty());
    }

    #[test]
    fn kinds_build_matching_schedulers() {
        for kind in [SchedKind::Fcfs, SchedKind::Priority, SchedKind::Handoff] {
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(SchedKind::Fcfs.method_set().0, "fcfs");
        assert_eq!(format!("{}", SchedKind::Handoff), "handoff");
    }
}
