//! The *active* lock: lock state owned by a dedicated server thread,
//! operated by message passing.
//!
//! [MS93]'s second experiment compares "implementation-specific lock
//! configurations (centralized vs. distributed locks, **passive vs.
//! active locks**), thereby demonstrating the advantages of changing
//! implementations to re-target such objects to different architectural
//! platforms (e.g., from UMA to NORMA)". Every other lock in this crate
//! is *passive* — its methods execute on the invoking thread against
//! shared memory. An active lock needs no shared-memory atomics at all:
//! clients send acquire/release messages to a server thread that owns
//! the state, which is exactly the representation that still works on a
//! NORMA (no-remote-memory-access) machine.
//!
//! Trade-off, visible in the stats and latencies: every operation pays
//! two message hops and possibly a server dispatch, but contention never
//! causes remote-memory hammering — all queueing happens in the server's
//! mailbox.

use std::sync::Mutex;

use butterfly_sim::{ctx, ProcId, SimWord, ThreadId};
use cthreads::{channel_on, JoinHandle, Receiver, Sender};

use crate::api::{charge_overhead, Lock, LockCosts, LockStats, PatternSample};

enum Request {
    Acquire {
        tid: ThreadId,
        /// Grant flag homed on the client's node.
        flag: SimWord,
    },
    Release,
    Shutdown,
}

/// Handle to an active lock. Cloning shares the same server.
pub struct ActiveLock {
    tx: Sender<Request>,
    /// Mailbox depth mirror for monitoring (maintained by the server).
    waiting: SimWord,
    costs: LockCosts,
    stats: Mutex<LockStats>,
    trace: Mutex<Option<Vec<PatternSample>>>,
}

/// Server-side handle: join it after shutting the lock down.
pub struct ActiveLockServer {
    handle: JoinHandle<u64>,
    tx: Sender<Request>,
}

impl ActiveLockServer {
    /// Stop the server and return the number of grants it performed.
    pub fn shutdown(self) -> u64 {
        self.tx.send(Request::Shutdown);
        self.handle.join()
    }
}

impl ActiveLock {
    /// Spawn the lock's server thread on `proc` (a dedicated processor,
    /// like the paper's monitor thread) and return the client handle
    /// plus the server handle.
    pub fn spawn_on(proc: ProcId) -> (ActiveLock, ActiveLockServer) {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = channel_on(proc.node());
        let waiting = SimWord::new_on(proc.node(), 0);
        let w2 = waiting.clone();
        let handle = cthreads::fork(proc, "active-lock-server", move || serve(rx, w2));
        (
            ActiveLock {
                tx: tx.clone(),
                waiting,
                costs: LockCosts::default(),
                stats: Mutex::new(LockStats::default()),
                trace: Mutex::new(None),
            },
            ActiveLockServer { handle, tx },
        )
    }

    fn record_sample(&self) {
        if let Some(tr) = self.trace.lock().unwrap().as_mut() {
            tr.push(PatternSample {
                at: ctx::now(),
                waiting: self.waiting.peek(),
            });
        }
    }
}

/// The server loop: owns the holder/queue state; the grant decision is
/// pure local computation on the server's node.
fn serve(rx: Receiver<Request>, waiting: SimWord) -> u64 {
    let mut held = false;
    let mut queue: Vec<(ThreadId, SimWord)> = Vec::new();
    let mut grants = 0u64;
    loop {
        match rx.recv() {
            Ok(Request::Acquire { tid, flag }) => {
                if held {
                    queue.push((tid, flag));
                    waiting.store(queue.len() as u64);
                } else {
                    held = true;
                    grants += 1;
                    flag.store(1); // remote write to the client's node
                    ctx::unpark(tid);
                }
            }
            Ok(Request::Release) => {
                if let Some((tid, flag)) = (!queue.is_empty()).then(|| queue.remove(0)) {
                    waiting.store(queue.len() as u64);
                    grants += 1;
                    flag.store(1);
                    ctx::unpark(tid);
                } else {
                    held = false;
                }
            }
            Ok(Request::Shutdown) | Err(_) => break,
        }
    }
    grants
}

impl Lock for ActiveLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        let flag = SimWord::new_on(ctx::current_node(), 0);
        self.tx.send(Request::Acquire {
            tid: ctx::current(),
            flag: flag.clone(),
        });
        // Wait for the server's grant (blocking: the client has nothing
        // to poll — there is no shared lock word).
        let mut contended = false;
        while flag.load() == 0 {
            contended = true;
            ctx::park();
        }
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        if contended {
            s.contended += 1;
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        }
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.record_sample();
        self.tx.send(Request::Release);
        self.stats.lock().unwrap().releases += 1;
    }

    fn try_lock(&self) -> bool {
        // An active lock has no client-side state to test; a try-lock
        // would need a round trip and is deliberately unsupported —
        // callers should use `lock` (documented NORMA trade-off).
        false
    }

    fn name(&self) -> &'static str {
        "active"
    }

    fn waiting_now(&self) -> u64 {
        self.waiting.peek()
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }

    fn enable_tracing(&self) {
        *self.trace.lock().unwrap() = Some(Vec::new());
    }

    fn take_trace(&self) -> Vec<PatternSample> {
        self.trace
            .lock()
            .unwrap()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

impl Clone for ActiveLock {
    fn clone(&self) -> Self {
        ActiveLock {
            tx: self.tx.clone(),
            waiting: self.waiting.clone(),
            costs: self.costs,
            stats: Mutex::new(LockStats::default()),
            trace: Mutex::new(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use butterfly_sim::{self as sim, Duration, SimCell, SimConfig};
    use cthreads::fork;
    use std::sync::Arc;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn mutual_exclusion_via_message_passing() {
        let (total, _) = sim::run(cfg(4), || {
            // Server on its own processor (3); clients on 0..3.
            let (lock, server) = ActiveLock::spawn_on(ProcId(3));
            let lock = Arc::new(lock);
            let counter = SimCell::new_local(0u64);
            let handles: Vec<_> = (0..3)
                .map(|p| {
                    let (lock, counter) = (Arc::clone(&lock), counter.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..20 {
                            lock.lock();
                            let v = counter.read();
                            ctx::advance(Duration::micros(5));
                            counter.write(v + 1);
                            lock.unlock();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let total = counter.read();
            drop(lock);
            let grants = server.shutdown();
            assert_eq!(grants, 60);
            total
        })
        .unwrap();
        assert_eq!(total, 60);
    }

    #[test]
    fn grants_are_fifo_at_the_server() {
        let (order, _) = sim::run(cfg(4), || {
            let (lock, server) = ActiveLock::spawn_on(ProcId(3));
            let lock = Arc::new(lock);
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock();
            let handles: Vec<_> = (1..3)
                .map(|p| {
                    let (lock, order) = (Arc::clone(&lock), order.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(50 * p as u64));
                        lock.lock();
                        order.poke(|v| v.push(p));
                        lock.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            lock.unlock();
            for h in handles {
                h.join();
            }
            let o = order.peek();
            drop(lock);
            server.shutdown();
            o
        })
        .unwrap();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn active_lock_generates_no_client_side_rmw_contention() {
        // The NORMA selling point: under contention, clients perform no
        // atomic RMWs on shared words at all (compare the passive spin
        // lock, which hammers the lock word).
        let rmws = sim::run(cfg(4), || {
            let (lock, server) = ActiveLock::spawn_on(ProcId(3));
            let lock = Arc::new(lock);
            let before = {
                // Global RMW count before.
                ctx::cost_meter().rmws
            };
            let handles: Vec<_> = (0..3)
                .map(|p| {
                    let lock = Arc::clone(&lock);
                    fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..10 {
                            lock.lock();
                            ctx::advance(Duration::micros(20));
                            lock.unlock();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            drop(lock);
            server.shutdown();
            let _ = before;
            // Check the whole run's RMW traffic via the report instead.
            0u64
        })
        .map(|(v, report)| (v, report.mem.rmws))
        .unwrap()
        .1;
        // Channel sends are plain reads/writes; only semaphore-free
        // park/unpark is used. A handful of RMWs may come from thread
        // bookkeeping, but nothing proportional to contention.
        assert!(rmws < 10, "active lock should avoid RMW hot-spots, saw {rmws}");
    }

    #[test]
    fn waiting_count_visible_to_monitors() {
        let (peak, _) = sim::run(cfg(4), || {
            let (lock, server) = ActiveLock::spawn_on(ProcId(3));
            let lock = Arc::new(lock);
            lock.lock();
            let handles: Vec<_> = (1..3)
                .map(|p| {
                    let lock = Arc::clone(&lock);
                    fork(ProcId(p), format!("w{p}"), move || {
                        lock.lock();
                        lock.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            let peak = lock.waiting_now();
            lock.unlock();
            for h in handles {
                h.join();
            }
            drop(lock);
            server.shutdown();
            peak
        })
        .unwrap();
        assert_eq!(peak, 2);
    }
}
