//! The reconfigurable lock ([MS93]): a lock whose waiting policy
//! (mutable attributes) and scheduler (method set) can be changed at run
//! time behind the unchanged `Lock` interface.
//!
//! Structure (paper Section 5.1):
//!
//! * **internal state** — lock word, guard, waiting-thread count,
//!   current owner, registration queue;
//! * **mutable attributes** — the [`WaitingPolicy`]
//!   `{spin-time, delay-time, sleep-time, timeout}`;
//! * **configurable methods** — `Lock`/`Unlock`, decomposed into
//!   registration / acquisition / release scheduling components with
//!   pluggable [`LockScheduler`]s;
//! * **configure operations** — [`ReconfigurableLock::configure_policy`]
//!   costs `1R 1W`, [`ReconfigurableLock::configure_scheduler`] costs
//!   `5W` (three sub-module pointers plus setting and resetting the
//!   configuration-delay flag), matching the paper's Table 8 narrative.
//!
//! Registered waiters spin or block on a *grant flag homed on their own
//! node* (local spinning, as in queue locks), and releases are direct
//! handoffs chosen by the installed scheduler.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use adaptive_core::{AttrError, AttrSet, AttrValue, OpCost, OpKind, OwnerId, TransitionLog};
use butterfly_sim::{ctx, Duration, NodeId, SimCell, SimWord, ThreadId};

use crate::api::{charge_overhead, priority, Lock, LockCosts, LockStats, PatternSample};
use crate::oracle::{LockOracle, OracleSlot};
use crate::policy::{WaitingPolicy, SLEEP_FOREVER};
use crate::scheduler::{LockScheduler, SchedKind, Waiter};

const FREE: u64 = 0;
const HELD: u64 = 1;
const HELD_WAITERS: u64 = 2;

/// The paper's agent id for the calling simulated thread.
pub fn agent() -> OwnerId {
    OwnerId(ctx::current().0 as u64)
}

/// A lock with run-time configurable waiting policy and scheduler.
pub struct ReconfigurableLock {
    name: &'static str,
    node: NodeId,
    word: SimWord,
    guard: SimWord,
    waiting: SimWord,
    /// The waiting policy lives in simulated memory: reading it on the
    /// contended path and rewriting it on reconfiguration are charged.
    policy_cell: SimCell<WaitingPolicy>,
    sched: Mutex<Box<dyn LockScheduler>>,
    reg_seq: AtomicU64,
    holder: Mutex<Option<ThreadId>>,
    /// Model-level attribute view enforcing mutability and ownership.
    attrs: Mutex<AttrSet>,
    tlog: Mutex<TransitionLog>,
    costs: LockCosts,
    stats: Mutex<LockStats>,
    trace: Mutex<Option<Vec<PatternSample>>>,
    oracle: OracleSlot,
}

impl ReconfigurableLock {
    /// Create with an initial policy and scheduler on `node`.
    pub fn new(node: NodeId, policy: WaitingPolicy, sched: SchedKind) -> ReconfigurableLock {
        ReconfigurableLock::with_parts("reconfigurable", node, policy, sched, LockCosts::default())
    }

    /// Create on the caller's node with defaults (combined policy, FCFS).
    pub fn new_local() -> ReconfigurableLock {
        ReconfigurableLock::new(ctx::current_node(), WaitingPolicy::default(), SchedKind::Fcfs)
    }

    /// A statically *combined* lock: spin `spins` probes, then block.
    /// (The paper's Figure 1 compares combined(1) / combined(10) /
    /// combined(50).)
    pub fn combined(node: NodeId, spins: u32) -> ReconfigurableLock {
        ReconfigurableLock::with_parts(
            "combined",
            node,
            WaitingPolicy::combined(spins),
            SchedKind::Fcfs,
            LockCosts::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_parts(
        name: &'static str,
        node: NodeId,
        policy: WaitingPolicy,
        sched: SchedKind,
        costs: LockCosts,
    ) -> ReconfigurableLock {
        let mut tlog = TransitionLog::new();
        let desc = format!("{}{{{}}}", sched, policy.descriptor());
        // Initialization (I): one write per attribute.
        tlog.record(0, OpKind::Initialization, "-", desc, OpCost::writes(4));
        ReconfigurableLock {
            name,
            node,
            word: SimWord::new_on(node, FREE),
            guard: SimWord::new_on(node, 0),
            waiting: SimWord::new_on(node, 0),
            policy_cell: SimCell::new_on(node, policy),
            sched: Mutex::new(sched.build()),
            reg_seq: AtomicU64::new(0),
            holder: Mutex::new(None),
            attrs: Mutex::new(policy.attr_set()),
            tlog: Mutex::new(tlog),
            costs,
            stats: Mutex::new(LockStats::default()),
            trace: Mutex::new(None),
            oracle: OracleSlot::default(),
        }
    }

    /// Attach an invariant oracle (host-memory only, does not perturb
    /// the simulated cost model). At most one oracle per lock.
    pub fn attach_oracle(&self, oracle: Arc<LockOracle>) {
        self.oracle.attach(oracle);
    }

    /// The node the lock's state lives on.
    pub fn home(&self) -> NodeId {
        self.node
    }

    /// Current waiting policy (monitor peek, no simulated cost).
    pub fn policy(&self) -> WaitingPolicy {
        self.policy_cell.peek()
    }

    /// Currently installed scheduler kind.
    pub fn sched_kind(&self) -> SchedKind {
        self.sched.lock().unwrap().kind()
    }

    /// Current holder, if any (monitor peek).
    pub fn holder(&self) -> Option<ThreadId> {
        *self.holder.lock().unwrap()
    }

    /// Snapshot of the configuration transition log.
    pub fn transition_log(&self) -> TransitionLog {
        self.tlog.lock().unwrap().clone()
    }

    fn guard_acquire(&self) {
        while self.guard.test_and_set() {}
    }

    fn guard_release(&self) {
        self.guard.store(0);
    }

    fn record_sample(&self) {
        if let Some(tr) = self.trace.lock().unwrap().as_mut() {
            tr.push(PatternSample {
                at: ctx::now(),
                waiting: self.waiting.peek(),
            });
        }
    }

    fn descriptor(&self) -> String {
        format!(
            "{}{{{}}}",
            self.sched.lock().unwrap().kind(),
            self.policy_cell.peek().descriptor()
        )
    }

    /// The acquisition component: wait on the grant flag per `policy`.
    fn wait_for_grant(&self, flag: &SimWord, parked: &Arc<AtomicBool>, policy: WaitingPolicy) {
        let mut probes: u32 = 0;
        loop {
            if flag.load() == 1 {
                return;
            }
            probes = probes.saturating_add(1);
            if policy.blocks() && probes > policy.spin {
                // Release (not SeqCst): no store-buffering hazard here —
                // `flag` is a `SimWord` whose load/store lock an internal
                // mutex, so a waiter that re-reads `flag == 0` had its
                // critical section *before* the granter's `flag.store(1)`,
                // and the mutex edge makes this store visible to the
                // granter's subsequent `parked` load. Ordering on
                // `parked` itself is only publish intent.
                parked.store(true, Ordering::Release);
                // Re-check after publishing `parked` so a racing grant
                // either sees the flag read or unparks us.
                if flag.load() == 1 {
                    // Same-variable coherence only; a granter reading a
                    // stale `true` at worst issues a spurious unpark,
                    // which the next park consumes as a permit.
                    parked.store(false, Ordering::Relaxed);
                    return;
                }
                if policy.sleep >= SLEEP_FOREVER {
                    ctx::park();
                } else {
                    ctx::park_timeout(policy.sleep);
                }
                parked.store(false, Ordering::Relaxed);
                probes = 0; // re-spin after each sleep episode
            } else if policy.delay > Duration::ZERO {
                // Flat inter-probe delay (the delay-time attribute); the
                // dedicated SpinBackoffLock implements growing backoff.
                ctx::advance(policy.delay);
            }
        }
    }

    /// Register the calling thread as a waiter (under the guard). Returns
    /// `None` if the lock was acquired directly instead.
    fn register_self(&self, flag: &SimWord, parked: &Arc<AtomicBool>) -> Option<()> {
        loop {
            self.guard_acquire();
            let cur = self.word.load();
            if cur == FREE {
                if self.word.compare_exchange(FREE, HELD).is_ok() {
                    self.guard_release();
                    return None; // acquired without waiting
                }
                self.guard_release();
                continue;
            }
            if self.word.compare_exchange(cur, HELD_WAITERS).is_err() {
                self.guard_release();
                continue;
            }
            // Registration component: one queue write.
            ctx::charge_mem(ctx::MemOp::Write, self.node);
            let w = Waiter {
                tid: ctx::current(),
                priority: priority::get(),
                seq: self.reg_seq.fetch_add(1, Ordering::Relaxed),
                flag: flag.clone(),
                parked: parked.clone(),
            };
            self.sched.lock().unwrap().register(w);
            if let Some(o) = self.oracle.get() {
                o.on_enqueue(ctx::current());
            }
            self.guard_release();
            return Some(());
        }
    }

    fn finish_acquire(&self, t0: butterfly_sim::VirtualTime, contended: bool, waiting_peak: u64) {
        if let Some(o) = self.oracle.get() {
            o.on_acquire(ctx::current());
        }
        *self.holder.lock().unwrap() = Some(ctx::current());
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        if contended {
            s.contended += 1;
            s.max_waiting = s.max_waiting.max(waiting_peak);
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        }
    }

    /// Bounded (conditional) acquire: wait at most `timeout`. Returns
    /// whether the lock was acquired. This is the behaviour the `timeout`
    /// attribute row of the paper's table describes.
    pub fn lock_timeout(&self, timeout: Duration) -> bool {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        if self.word.compare_exchange(FREE, HELD).is_ok() {
            self.finish_acquire(t0, false, 0);
            return true;
        }
        let waiting_now = self.waiting.fetch_add(1) + 1;
        if let Some(o) = self.oracle.get() {
            o.on_waiting_inc();
        }
        let policy = self.policy_cell.read();
        let flag = SimWord::new_on(ctx::current_node(), 0);
        let parked = Arc::new(AtomicBool::new(false));
        let deadline = t0 + timeout;

        if self.register_self(&flag, &parked).is_none() {
            self.waiting.fetch_sub(1);
            if let Some(o) = self.oracle.get() {
                o.on_waiting_dec();
            }
            self.finish_acquire(t0, true, waiting_now);
            return true;
        }

        // Bounded acquisition: spin/sleep in episodes, checking the
        // deadline between them.
        let mut probes: u32 = 0;
        let acquired = loop {
            if flag.load() == 1 {
                break true;
            }
            if ctx::now() >= deadline {
                // Deregister under the guard; a grant may race with us.
                self.guard_acquire();
                if flag.load() == 1 {
                    self.guard_release();
                    break true;
                }
                let removed = self.sched.lock().unwrap().remove(ctx::current());
                assert!(removed.is_some(), "timed-out waiter missing from queue");
                if let Some(o) = self.oracle.get() {
                    o.on_dequeue(ctx::current());
                }
                if self.sched.lock().unwrap().is_empty()
                    && self.word.load() == HELD_WAITERS
                {
                    // Last registered waiter gone; drop the waiters mark.
                    let _ = self.word.compare_exchange(HELD_WAITERS, HELD);
                }
                self.guard_release();
                break false;
            }
            probes = probes.saturating_add(1);
            if policy.blocks() && probes > policy.spin {
                // Release/Relaxed pair: see the ordering note in
                // `wait_for_grant` — the `flag` mutex supplies the
                // happens-before edge that defeats the lost wakeup.
                parked.store(true, Ordering::Release);
                if flag.load() == 1 {
                    parked.store(false, Ordering::Relaxed);
                    break true;
                }
                let episode = if policy.sleep >= SLEEP_FOREVER {
                    deadline.saturating_since(ctx::now())
                } else {
                    policy.sleep
                };
                ctx::park_timeout(episode);
                parked.store(false, Ordering::Relaxed);
                probes = 0;
            } else if policy.delay > Duration::ZERO {
                ctx::advance(policy.delay);
            }
        };
        self.waiting.fetch_sub(1);
        if let Some(o) = self.oracle.get() {
            o.on_waiting_dec();
        }
        if acquired {
            self.finish_acquire(t0, true, waiting_now);
        }
        acquired
    }

    /// Reconfigure the waiting policy (Ψ). Enforces attribute mutability
    /// and ownership on behalf of `by`; charged `1R 1W` against the
    /// lock's node.
    pub fn configure_policy(&self, by: OwnerId, new: WaitingPolicy) -> Result<(), AttrError> {
        charge_overhead(self.costs.unlock_overhead); // configure-call overhead
        let from = self.descriptor();
        {
            let mut attrs = self.attrs.lock().unwrap();
            // All-or-nothing: validate every attribute first.
            for name in ["spin-time", "delay-time", "sleep-time", "timeout"] {
                if !attrs.is_mutable(name)? {
                    return Err(AttrError::Immutable(name));
                }
                if let Some(owner) = attrs.owner(name)? {
                    if owner != by {
                        return Err(AttrError::Owned { attr: name, owner });
                    }
                }
            }
            attrs.set(by, "spin-time", AttrValue::Int(new.spin as i64))?;
            attrs.set(by, "delay-time", AttrValue::Int(new.delay.as_nanos() as i64))?;
            attrs.set(by, "sleep-time", AttrValue::Int(new.sleep.as_nanos() as i64))?;
            attrs.set(by, "timeout", AttrValue::Int(new.timeout.as_nanos() as i64))?;
        }
        // The hot-path policy word: one read + one write.
        self.policy_cell.update(|p| *p = new);
        let to = self.descriptor();
        self.tlog.lock().unwrap().record(
            ctx::now().as_nanos(),
            OpKind::Reconfiguration,
            from,
            to,
            AttrSet::set_cost(),
        );
        self.stats.lock().unwrap().reconfigurations += 1;
        Ok(())
    }

    /// Reconfigure the scheduler (Ψ). Pre-registered waiters are
    /// transferred in grant order. Charged `5W`: three sub-module
    /// pointers, plus setting and resetting the configuration-delay flag.
    pub fn configure_scheduler(&self, kind: SchedKind) {
        charge_overhead(self.costs.unlock_overhead); // configure-call overhead
        let from = self.descriptor();
        self.guard_acquire();
        for _ in 0..5 {
            ctx::charge_mem(ctx::MemOp::Write, self.node);
        }
        {
            let mut sched = self.sched.lock().unwrap();
            if sched.kind() != kind {
                let mut fresh = kind.build();
                for w in sched.drain() {
                    fresh.register(w);
                }
                *sched = fresh;
            }
        }
        self.guard_release();
        let to = self.descriptor();
        self.tlog.lock().unwrap().record(
            ctx::now().as_nanos(),
            OpKind::Reconfiguration,
            from,
            to,
            OpCost::writes(5),
        );
        self.stats.lock().unwrap().reconfigurations += 1;
    }

    /// Explicitly acquire ownership of an attribute (external agent
    /// protocol; cost comparable to a test-and-set).
    pub fn acquire_attr(&self, by: OwnerId, name: &'static str) -> Result<(), AttrError> {
        // Comparable to a lock acquisition: call overhead plus one RMW.
        charge_overhead(self.costs.lock_overhead);
        ctx::charge_mem(ctx::MemOp::Rmw, self.node);
        self.attrs.lock().unwrap().acquire(by, name)
    }

    /// Release previously acquired attribute ownership.
    pub fn release_attr(&self, by: OwnerId, name: &'static str) -> Result<(), AttrError> {
        ctx::charge_mem(ctx::MemOp::Write, self.node);
        self.attrs.lock().unwrap().release(by, name)
    }

    /// Handoff hint: the owner designates which thread should get the
    /// lock at the next release (effective with [`SchedKind::Handoff`]).
    pub fn set_successor(&self, tid: Option<ThreadId>) {
        self.guard_acquire();
        ctx::charge_mem(ctx::MemOp::Write, self.node);
        self.sched.lock().unwrap().set_successor(tid);
        self.guard_release();
    }

    /// Sense the waiting-thread count as the customized lock monitor
    /// does: one charged read of the state variable plus the monitor's
    /// processing overhead.
    pub fn sense_waiting(&self) -> u64 {
        charge_overhead(self.costs.monitor_overhead);
        self.waiting.load()
    }

    /// Lock-op cost model in use.
    pub fn costs(&self) -> LockCosts {
        self.costs
    }
}

impl Lock for ReconfigurableLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        // Uncontended fast path: a single RMW, like a primitive spin
        // lock (the paper's Table 4 point about adaptive lock latency).
        if self.word.compare_exchange(FREE, HELD).is_ok() {
            self.finish_acquire(t0, false, 0);
            return;
        }
        let waiting_now = self.waiting.fetch_add(1) + 1;
        if let Some(o) = self.oracle.get() {
            o.on_waiting_inc();
        }
        // Read the waiting policy (one charged read of the attributes).
        let policy = self.policy_cell.read();
        let flag = SimWord::new_on(ctx::current_node(), 0);
        let parked = Arc::new(AtomicBool::new(false));
        if self.register_self(&flag, &parked).is_some() {
            self.wait_for_grant(&flag, &parked, policy);
        }
        self.waiting.fetch_sub(1);
        if let Some(o) = self.oracle.get() {
            o.on_waiting_dec();
        }
        self.finish_acquire(t0, true, waiting_now);
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        {
            let mut h = self.holder.lock().unwrap();
            assert_eq!(
                *h,
                Some(ctx::current()),
                "{} lock released by a thread that does not hold it",
                self.name
            );
            *h = None;
        }
        // Oracle: announce the release *before* any state transition can
        // let the next acquirer in, so observations stay well-ordered.
        if let Some(o) = self.oracle.get() {
            o.on_release(ctx::current());
        }
        self.record_sample();
        if self.word.compare_exchange(HELD, FREE).is_ok() {
            self.stats.lock().unwrap().releases += 1;
            return;
        }
        // Release component: select and grant under the guard so that
        // timed-out waiters cannot race with an in-flight grant.
        self.guard_acquire();
        ctx::charge_mem(ctx::MemOp::Read, self.node);
        let next = self.sched.lock().unwrap().select();
        match next {
            Some(w) => {
                ctx::charge_mem(ctx::MemOp::Write, self.node);
                if self.sched.lock().unwrap().is_empty() {
                    self.word.store(HELD);
                } else {
                    self.word.store(HELD_WAITERS);
                }
                if let Some(o) = self.oracle.get() {
                    o.on_grant(w.tid);
                }
                w.flag.store(1); // grant: write to the waiter's node
                // Acquire pairs with the waiter's Release publish of
                // `parked`; if the waiter missed this grant, the `flag`
                // mutex edge guarantees we read `true` here and unpark.
                if w.parked.load(Ordering::Acquire) {
                    ctx::unpark(w.tid);
                }
                self.guard_release();
                let mut s = self.stats.lock().unwrap();
                s.releases += 1;
                s.handoffs += 1;
            }
            None => {
                self.word.store(FREE);
                self.guard_release();
                self.stats.lock().unwrap().releases += 1;
            }
        }
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        if self.word.compare_exchange(FREE, HELD).is_ok() {
            self.finish_acquire(ctx::now(), false, 0);
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn waiting_now(&self) -> u64 {
        self.waiting.peek()
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }

    fn enable_tracing(&self) {
        *self.trace.lock().unwrap() = Some(Vec::new());
    }

    fn take_trace(&self) -> Vec<PatternSample> {
        self.trace
            .lock()
            .unwrap()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use butterfly_sim::{self as sim, ProcId, SimCell, SimConfig};
    use cthreads::{fork, fork_join_all};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    fn exercise(policy: WaitingPolicy, sched: SchedKind) -> u64 {
        let (total, _) = sim::run(cfg(4), move || {
            let lock = Arc::new(ReconfigurableLock::new(ctx::current_node(), policy, sched));
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for _ in 0..20 {
                        with_lock(l.as_ref(), || {
                            let v = c.read();
                            ctx::advance(Duration::micros(3));
                            c.write(v + 1);
                        });
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        total
    }

    #[test]
    fn mutual_exclusion_all_policies() {
        for policy in [
            WaitingPolicy::pure_spin(),
            WaitingPolicy::backoff(Duration::micros(2)),
            WaitingPolicy::pure_blocking(),
            WaitingPolicy::combined(5),
            WaitingPolicy::mixed(3, Duration::micros(1), Duration::micros(200)),
        ] {
            assert_eq!(exercise(policy, SchedKind::Fcfs), 80, "policy {policy:?}");
        }
    }

    #[test]
    fn mutual_exclusion_all_schedulers() {
        for sched in [SchedKind::Fcfs, SchedKind::Priority, SchedKind::Handoff] {
            assert_eq!(exercise(WaitingPolicy::combined(5), sched), 80, "sched {sched:?}");
        }
    }

    #[test]
    fn priority_scheduler_grants_high_priority_first() {
        let (order, _) = sim::run(cfg(4), || {
            let lock = Arc::new(ReconfigurableLock::new(
                ctx::current_node(),
                WaitingPolicy::pure_blocking(),
                SchedKind::Priority,
            ));
            let order = SimCell::new_local(Vec::<i32>::new());
            lock.lock();
            let handles: Vec<_> = [(1, 1), (2, 9), (3, 5)]
                .into_iter()
                .map(|(p, prio)| {
                    let (l, o) = (lock.clone(), order.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(10 * p as u64));
                        priority::set(prio);
                        l.lock();
                        o.poke(|v| v.push(prio));
                        l.unlock();
                        priority::set(0);
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        assert_eq!(order, vec![9, 5, 1], "priority scheduler must grant 9 before 5 before 1");
    }

    #[test]
    fn handoff_successor_wins() {
        let (order, _) = sim::run(cfg(4), || {
            let lock = Arc::new(ReconfigurableLock::new(
                ctx::current_node(),
                WaitingPolicy::pure_blocking(),
                SchedKind::Handoff,
            ));
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock();
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (l, o) = (lock.clone(), order.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(10 * p as u64));
                        l.lock();
                        o.poke(|v| v.push(p));
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            // Designate the *last* arrival as successor.
            let succ = handles[2].thread();
            lock.set_successor(Some(succ));
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        assert_eq!(order[0], 3, "designated successor must be granted first");
    }

    #[test]
    fn configure_policy_changes_behavior_and_logs() {
        let (log_len, _) = sim::run(cfg(1), || {
            let lock = ReconfigurableLock::new_local();
            assert_eq!(lock.policy().kind(), crate::policy::LockKind::MixedSleepSpin);
            lock.configure_policy(agent(), WaitingPolicy::pure_spin()).unwrap();
            assert_eq!(lock.policy().kind(), crate::policy::LockKind::PureSpin);
            lock.configure_policy(agent(), WaitingPolicy::pure_blocking()).unwrap();
            assert_eq!(lock.policy().kind(), crate::policy::LockKind::PureSleep);
            let log = lock.transition_log();
            assert_eq!(log.count_of(OpKind::Reconfiguration), 2);
            assert_eq!(log.count_of(OpKind::Initialization), 1);
            assert_eq!(log.total_cost(), OpCost::new(2, 6)); // I: 4W, 2×Ψ: 1R1W
            assert_eq!(lock.stats().reconfigurations, 2);
            log.len()
        })
        .unwrap();
        assert_eq!(log_len, 3);
    }

    #[test]
    fn configure_scheduler_transfers_waiters() {
        let (order, _) = sim::run(cfg(4), || {
            let lock = Arc::new(ReconfigurableLock::new(
                ctx::current_node(),
                WaitingPolicy::pure_blocking(),
                SchedKind::Fcfs,
            ));
            let order = SimCell::new_local(Vec::<i32>::new());
            lock.lock();
            let handles: Vec<_> = [(1, 1), (2, 9), (3, 5)]
                .into_iter()
                .map(|(p, prio)| {
                    let (l, o) = (lock.clone(), order.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        ctx::advance(Duration::micros(10 * p as u64));
                        priority::set(prio);
                        l.lock();
                        o.poke(|v| v.push(prio));
                        l.unlock();
                        priority::set(0);
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1));
            // Swap FCFS -> Priority while three threads wait.
            lock.configure_scheduler(SchedKind::Priority);
            assert_eq!(lock.sched_kind(), SchedKind::Priority);
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        assert_eq!(order, vec![9, 5, 1], "waiters must be re-scheduled by the new scheduler");
    }

    #[test]
    fn attribute_ownership_blocks_foreign_configuration() {
        let (res, _) = sim::run(cfg(1), || {
            let lock = ReconfigurableLock::new_local();
            let external_agent = OwnerId(999);
            lock.acquire_attr(external_agent, "spin-time").unwrap();
            let blocked = lock.configure_policy(agent(), WaitingPolicy::pure_spin());
            let allowed = lock.configure_policy(external_agent, WaitingPolicy::pure_spin());
            lock.release_attr(external_agent, "spin-time").unwrap();
            let after = lock.configure_policy(agent(), WaitingPolicy::pure_blocking());
            (blocked, allowed, after)
        })
        .unwrap();
        assert!(matches!(res.0, Err(AttrError::Owned { .. })));
        assert!(res.1.is_ok());
        assert!(res.2.is_ok());
    }

    #[test]
    fn lock_timeout_expires_and_recovers() {
        let (out, _) = sim::run(cfg(2), || {
            let lock = Arc::new(ReconfigurableLock::new_local());
            let l2 = lock.clone();
            let h = fork(ProcId(1), "holder", move || {
                l2.lock();
                ctx::advance(Duration::millis(10));
                l2.unlock();
            });
            ctx::advance(Duration::millis(1));
            let t0 = ctx::now();
            let got = lock.lock_timeout(Duration::millis(2));
            let waited = ctx::now().since(t0);
            h.join();
            // The lock must still be usable afterwards.
            let got_after = lock.lock_timeout(Duration::millis(1));
            if got_after {
                lock.unlock();
            }
            (got, waited, got_after, lock.waiting_now())
        })
        .unwrap();
        assert!(!out.0, "holder keeps the lock for 10ms; 2ms timeout must fail");
        assert!(out.1 >= Duration::millis(2));
        assert!(out.1 < Duration::millis(8), "timed out far too late: {}", out.1);
        assert!(out.2, "lock must be acquirable after the holder releases");
        assert_eq!(out.3, 0, "timed-out waiter must deregister");
    }

    #[test]
    fn lock_timeout_succeeds_when_granted_in_time() {
        let (got, _) = sim::run(cfg(2), || {
            let lock = Arc::new(ReconfigurableLock::new_local());
            let l2 = lock.clone();
            let h = fork(ProcId(1), "holder", move || {
                l2.lock();
                ctx::advance(Duration::millis(1));
                l2.unlock();
            });
            ctx::advance(Duration::micros(100));
            let got = lock.lock_timeout(Duration::millis(50));
            if got {
                lock.unlock();
            }
            h.join();
            got
        })
        .unwrap();
        assert!(got);
    }

    #[test]
    fn unlock_by_non_holder_is_detected() {
        let err = sim::run(cfg(2), || {
            let lock = Arc::new(ReconfigurableLock::new_local());
            let l2 = lock.clone();
            lock.lock();
            fork(ProcId(1), "rogue", move || l2.unlock()).join();
        })
        .unwrap_err();
        match err {
            sim::SimError::ThreadPanicked { message, .. } => {
                assert!(message.contains("does not hold it"), "got: {message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pure_spin_waiters_never_block() {
        let (_, report) = sim::run(cfg(2), || {
            let lock = Arc::new(ReconfigurableLock::new(
                ctx::current_node(),
                WaitingPolicy::pure_spin(),
                SchedKind::Fcfs,
            ));
            let l2 = lock.clone();
            let h = fork(ProcId(1), "w", move || {
                for _ in 0..5 {
                    with_lock(l2.as_ref(), || ctx::advance(Duration::micros(50)));
                }
            });
            for _ in 0..5 {
                with_lock(lock.as_ref(), || ctx::advance(Duration::micros(50)));
            }
            h.join();
        })
        .unwrap();
        // Two single-thread processors: context switches only for
        // spawn/join bookkeeping, none from lock waits. A blocked waiter
        // would force extra switches on proc 1.
        assert!(
            report.proc_switches[1] <= 2,
            "pure-spin waiter appears to have blocked (switches={})",
            report.proc_switches[1]
        );
    }
}
