//! # adaptive-locks
//!
//! The multiprocessor lock family of *"Improving Performance by Use of
//! Adaptive Objects"* (Mukherjee & Schwan, 1993), implemented on the
//! Butterfly simulator.
//!
//! ## Lock taxonomy
//!
//! | Type | Paper role |
//! |---|---|
//! | [`SpinLock`] | primitive test-and-test-and-set spin lock (`atomior`-based) |
//! | [`SpinBackoffLock`] | Anderson-style spin-with-backoff \[ALL89\] |
//! | [`TicketLock`], [`McsLock`] | classic fair/queue baselines (ablations) |
//! | [`BlockingLock`] | FIFO blocking lock with direct handoff |
//! | [`ReconfigurableLock`] | \[MS93\] configurable lock: mutable waiting-policy attributes `{spin-time, delay-time, sleep-time, timeout}` + pluggable registration/acquisition/release scheduler (FCFS / Priority / Handoff) |
//! | [`ReconfigurableLock::combined`] | static combined lock (spin *k*, then block) — Figure 1's combined(1/10/50) |
//! | [`AdvisoryLock`] | owner-advised (speculative) lock |
//! | [`AdaptiveLock`] | reconfigurable lock + built-in monitor + adaptation policy ([`SimpleAdapt`] et al.) in a closely-coupled feedback loop |
//!
//! ## Spinning and the simulator
//!
//! Spin waits hold the processor and charge memory references per probe.
//! A spinning thread only yields at simulator calls, so configure a
//! scheduling quantum (`SimConfig::quantum`) when running more threads
//! than processors with spin policies — exactly the regime where the
//! paper shows blocking is the right configuration.
//!
//! ```
//! use butterfly_sim::{self as sim, ctx, Duration, SimConfig};
//! use adaptive_locks::{AdaptiveLock, Lock, with_lock};
//!
//! let (kind, _) = sim::run(SimConfig::butterfly(2), || {
//!     let lock = AdaptiveLock::new_local();
//!     for _ in 0..8 {
//!         with_lock(&lock, || ctx::advance(Duration::micros(10)));
//!     }
//!     // Uncontended: simple-adapt configures the lock to pure spin.
//!     lock.inner().policy().kind()
//! })
//! .unwrap();
//! assert_eq!(kind, adaptive_locks::LockKind::PureSpin);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod active;
mod adaptive;
mod advisory;
mod api;
mod blocking;
mod mcs;
mod oracle;
mod policy;
mod reconfigurable;
mod rwlock;
mod scheduler;
mod spin;
mod ticket;

pub use adaptive::{
    AdaptiveLock, BoxedLockPolicy, EwmaAdapt, HysteresisAdapt, LockDecision, LockObservation,
    SchedulerAdapt, SimpleAdapt,
};
pub use active::{ActiveLock, ActiveLockServer};
pub use advisory::{Advice, AdvisoryLock};
pub use api::{priority, with_lock, Lock, LockCosts, LockStats, PatternSample};
pub use blocking::BlockingLock;
pub use mcs::McsLock;
pub use oracle::{LockOracle, OracleCounts};
pub use policy::{LockKind, WaitingPolicy, SLEEP_FOREVER};
pub use reconfigurable::{agent, ReconfigurableLock};
pub use rwlock::{AdaptiveRwLock, RwLock, RwPolicy, RwStats};
pub use scheduler::{
    FcfsScheduler, HandoffScheduler, LockScheduler, PriorityScheduler, SchedKind, Waiter,
};
pub use spin::{SpinBackoffLock, SpinLock};
pub use ticket::TicketLock;
