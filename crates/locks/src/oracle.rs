//! Reusable invariant oracles for the lock stack.
//!
//! A [`LockOracle`] is attached to a lock (or semaphore / condition
//! variable) under test and receives a callback at each step of the
//! protocol. It checks, online:
//!
//! * **mutual exclusion / capacity** — never more concurrent holders
//!   than permits;
//! * **ownership** — releases come from a current holder (when the
//!   protocol promises that);
//! * **FIFO handoff** — grants go to the longest-waiting registered
//!   waiter (when the protocol promises that);
//! * **monotone virtual clocks** — observation times never decrease;
//! * **conservation of the waiting count** — the advertised count never
//!   goes negative and returns to zero;
//! * **no stranded waiter** — at quiescence, every registered waiter was
//!   granted or deregistered ([`LockOracle::assert_quiescent`]).
//!
//! "No lost wakeup" has no single observable event: a lost wakeup shows
//! up either as a stranded waiter at quiescence or as a simulator-level
//! deadlock, which `butterfly_sim::explore` reports with a replay seed.
//!
//! Oracle state lives in plain host memory (a `std::sync::Mutex`), so
//! attaching one never perturbs the simulated cost model — runs with and
//! without an oracle take identical schedules. By default a violation
//! panics immediately (fail-fast inside `explore`, which converts the
//! panic into a reported, replayable schedule failure); use
//! [`LockOracle::record_only`] to collect violations instead.

use std::sync::{Arc, Mutex};

use butterfly_sim::{ctx, ThreadId, VirtualTime};
use cthreads::{ProbeEvent, SyncProbe};

/// Event tallies kept by a [`LockOracle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleCounts {
    /// Successful acquisitions observed.
    pub acquires: u64,
    /// Releases observed.
    pub releases: u64,
    /// Grants (handoffs / notifies) observed.
    pub grants: u64,
    /// Waiter registrations observed.
    pub enqueues: u64,
    /// Explicit deregistrations (e.g. lock timeouts) observed.
    pub dequeues: u64,
    /// Holders that died mid-critical-section (poison releases).
    pub poisons: u64,
}

struct OracleState {
    /// Permits currently available: `capacity - holders`. Negative means
    /// the capacity invariant broke.
    available: i64,
    /// Current holders, when ownership is tracked.
    holders: Vec<ThreadId>,
    /// Registered waiters in registration order.
    queue: Vec<ThreadId>,
    /// The advertised waiting count, mirrored via inc/dec callbacks.
    waiting: i64,
    /// Latest observation time (monotone-clock check).
    last_at: VirtualTime,
    violations: Vec<String>,
    counts: OracleCounts,
}

/// An online invariant checker for one synchronization object.
///
/// Construct with the checker matching the protocol's promises
/// ([`LockOracle::mutex`], [`LockOracle::fifo_mutex`],
/// [`LockOracle::semaphore`], [`LockOracle::condvar`]), attach it to the
/// object, run the workload, then call
/// [`LockOracle::assert_quiescent`].
pub struct LockOracle {
    label: &'static str,
    capacity: i64,
    fifo: bool,
    check_owner: bool,
    fail_fast: bool,
    state: Mutex<OracleState>,
}

impl LockOracle {
    fn new(label: &'static str, capacity: i64, fifo: bool, check_owner: bool) -> Arc<LockOracle> {
        Arc::new(LockOracle {
            label,
            capacity,
            fifo,
            check_owner,
            fail_fast: true,
            state: Mutex::new(OracleState {
                available: capacity,
                holders: Vec::new(),
                queue: Vec::new(),
                waiting: 0,
                last_at: VirtualTime::ZERO,
                violations: Vec::new(),
                counts: OracleCounts::default(),
            }),
        })
    }

    /// Oracle for a mutual-exclusion lock with no grant-order promise
    /// (e.g. a reconfigurable lock under the priority scheduler).
    pub fn mutex() -> Arc<LockOracle> {
        LockOracle::new("mutex", 1, false, true)
    }

    /// Oracle for a mutual-exclusion lock that promises FIFO handoff
    /// (blocking lock, MCS lock, reconfigurable lock under FCFS).
    pub fn fifo_mutex() -> Arc<LockOracle> {
        LockOracle::new("fifo-mutex", 1, true, true)
    }

    /// Oracle for a counting semaphore with `permits` initial permits
    /// and FIFO waiter service. Releases need not come from holders
    /// (signal-semaphore usage is legal), so ownership is not tracked.
    pub fn semaphore(permits: u64) -> Arc<LockOracle> {
        LockOracle::new("semaphore", permits as i64, true, false)
    }

    /// Oracle for a condition variable: waiter registration and
    /// FIFO notification order only (no acquire/release events).
    pub fn condvar() -> Arc<LockOracle> {
        LockOracle::new("condvar", i64::MAX, true, false)
    }

    /// Collect violations instead of panicking at the first one (the
    /// default is to fail fast, which `explore` turns into a replayable
    /// schedule failure).
    pub fn record_only(self: Arc<Self>) -> Arc<LockOracle> {
        let mut o = Arc::into_inner(self).expect("record_only must be called before sharing");
        o.fail_fast = false;
        Arc::new(o)
    }

    fn violate(&self, s: &mut OracleState, msg: String) {
        let full = format!("oracle[{}]: {}", self.label, msg);
        s.violations.push(full.clone());
        if self.fail_fast {
            panic!("{full}");
        }
    }

    /// Monotone-clock check, folded into every observation.
    fn tick(&self, s: &mut OracleState) {
        if !ctx::in_sim() {
            return;
        }
        let now = ctx::now();
        if now < s.last_at {
            let last = s.last_at;
            self.violate(s, format!("virtual clock went backwards: {now} < {last}"));
        } else {
            s.last_at = now;
        }
    }

    /// The thread obtained the resource.
    pub fn on_acquire(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.acquires += 1;
        self.tick(&mut s);
        s.available -= 1;
        if s.available < 0 {
            let cap = self.capacity;
            self.violate(
                &mut s,
                format!("capacity violated: {tid} acquired while all {cap} permit(s) were held"),
            );
        }
        if self.check_owner {
            if s.holders.contains(&tid) {
                self.violate(&mut s, format!("reentrant acquire by holder {tid}"));
            }
            s.holders.push(tid);
        }
    }

    /// The thread returned the resource.
    pub fn on_release(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.releases += 1;
        self.tick(&mut s);
        s.available += 1;
        if self.check_owner {
            match s.holders.iter().position(|h| *h == tid) {
                Some(i) => {
                    s.holders.remove(i);
                }
                None => self.violate(&mut s, format!("release by {tid} which does not hold it")),
            }
        }
    }

    /// The thread panicked while holding the resource: the unwinder
    /// released it and marked the object poisoned. Checked like a
    /// release — the dying thread must actually be a holder, and the
    /// permit must come back — so panic-path bookkeeping that leaks the
    /// permit or releases twice is caught exactly like a normal
    /// protocol violation.
    pub fn on_poison(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.poisons += 1;
        self.tick(&mut s);
        s.available += 1;
        if self.check_owner {
            match s.holders.iter().position(|h| *h == tid) {
                Some(i) => {
                    s.holders.remove(i);
                }
                None => {
                    self.violate(&mut s, format!("poison release by {tid} which does not hold it"))
                }
            }
        }
    }

    /// The thread registered as a waiter.
    pub fn on_enqueue(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.enqueues += 1;
        self.tick(&mut s);
        if s.queue.contains(&tid) {
            self.violate(&mut s, format!("{tid} enqueued twice"));
        }
        s.queue.push(tid);
    }

    /// The thread deregistered without being granted (timeout/abort).
    pub fn on_dequeue(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.dequeues += 1;
        self.tick(&mut s);
        match s.queue.iter().position(|q| *q == tid) {
            Some(i) => {
                s.queue.remove(i);
            }
            None => self.violate(&mut s, format!("dequeue of {tid} which is not enqueued")),
        }
    }

    /// The object selected the thread to proceed.
    pub fn on_grant(&self, tid: ThreadId) {
        let mut s = self.state.lock().unwrap();
        s.counts.grants += 1;
        self.tick(&mut s);
        match s.queue.iter().position(|q| *q == tid) {
            Some(0) => {
                s.queue.remove(0);
            }
            Some(i) => {
                if self.fifo {
                    let front = s.queue[0];
                    self.violate(
                        &mut s,
                        format!("FIFO handoff violated: granted {tid} ahead of {front}"),
                    );
                }
                s.queue.remove(i);
            }
            None => self.violate(&mut s, format!("grant to {tid} which is not enqueued")),
        }
    }

    /// The advertised waiting count was incremented.
    pub fn on_waiting_inc(&self) {
        let mut s = self.state.lock().unwrap();
        self.tick(&mut s);
        s.waiting += 1;
    }

    /// The advertised waiting count was decremented.
    pub fn on_waiting_dec(&self) {
        let mut s = self.state.lock().unwrap();
        self.tick(&mut s);
        s.waiting -= 1;
        if s.waiting < 0 {
            self.violate(&mut s, "waiting count went negative".to_string());
        }
    }

    /// Violations recorded so far (empty unless [`record_only`] was used
    /// or quiescence checks found problems).
    ///
    /// [`record_only`]: LockOracle::record_only
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().unwrap().violations.clone()
    }

    /// Event tallies so far.
    pub fn counts(&self) -> OracleCounts {
        self.state.lock().unwrap().counts
    }

    /// Problems with the *final* state, plus any recorded violations:
    /// a lingering holder, a stranded waiter, or a nonzero waiting count.
    pub fn check_quiescent(&self) -> Vec<String> {
        let s = self.state.lock().unwrap();
        let mut problems = s.violations.clone();
        if self.check_owner && !s.holders.is_empty() {
            problems.push(format!(
                "oracle[{}]: still held at quiescence by {:?}",
                self.label, s.holders
            ));
        }
        if s.available < self.capacity && self.check_owner {
            problems.push(format!(
                "oracle[{}]: {} permit(s) unreturned at quiescence",
                self.label,
                self.capacity - s.available
            ));
        }
        if !s.queue.is_empty() {
            problems.push(format!(
                "oracle[{}]: stranded waiter(s) at quiescence: {:?}",
                self.label, s.queue
            ));
        }
        if s.waiting != 0 {
            problems.push(format!(
                "oracle[{}]: waiting count is {} at quiescence, expected 0",
                self.label, s.waiting
            ));
        }
        problems
    }

    /// Assert the object is quiescent and no violation was recorded.
    ///
    /// # Panics
    ///
    /// Panics listing every problem when the object is not quiescent.
    pub fn assert_quiescent(&self) {
        let problems = self.check_quiescent();
        assert!(
            problems.is_empty(),
            "lock oracle found {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        );
    }
}

impl SyncProbe for LockOracle {
    fn on_event(&self, ev: ProbeEvent) {
        match ev {
            ProbeEvent::Enqueue(tid) => self.on_enqueue(tid),
            ProbeEvent::Grant(tid) => self.on_grant(tid),
            ProbeEvent::Acquire(tid) => self.on_acquire(tid),
            ProbeEvent::Release(tid) => self.on_release(tid),
        }
    }
}

/// Shared, late-bound oracle slot embedded in each instrumented lock.
#[derive(Default)]
pub(crate) struct OracleSlot(std::sync::OnceLock<Arc<LockOracle>>);

impl OracleSlot {
    pub(crate) fn attach(&self, oracle: Arc<LockOracle>) {
        self.0
            .set(oracle)
            .unwrap_or_else(|_| panic!("an oracle is already attached to this lock"));
    }

    #[inline]
    pub(crate) fn get(&self) -> Option<&Arc<LockOracle>> {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: usize) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn clean_fifo_protocol_is_quiescent() {
        let o = LockOracle::fifo_mutex();
        o.on_acquire(t(1));
        o.on_waiting_inc();
        o.on_enqueue(t(2));
        o.on_release(t(1));
        o.on_grant(t(2));
        o.on_acquire(t(2));
        o.on_waiting_dec();
        o.on_release(t(2));
        o.assert_quiescent();
        let c = o.counts();
        assert_eq!((c.acquires, c.releases, c.grants, c.enqueues), (2, 2, 1, 1));
    }

    #[test]
    fn poisoned_holder_counts_as_a_release() {
        let o = LockOracle::mutex();
        o.on_acquire(t(1));
        o.on_poison(t(1));
        o.on_acquire(t(2));
        o.on_release(t(2));
        o.assert_quiescent();
        assert_eq!(o.counts().poisons, 1);
    }

    #[test]
    fn poison_by_non_holder_is_detected() {
        let o = LockOracle::mutex().record_only();
        o.on_acquire(t(1));
        o.on_poison(t(9));
        assert!(o.violations().iter().any(|v| v.contains("poison release")));
    }

    #[test]
    fn double_hold_is_a_capacity_violation() {
        let o = LockOracle::mutex().record_only();
        o.on_acquire(t(1));
        o.on_acquire(t(2));
        assert!(
            o.violations().iter().any(|v| v.contains("capacity violated")),
            "got {:?}",
            o.violations()
        );
    }

    #[test]
    fn out_of_order_grant_trips_fifo_check() {
        let o = LockOracle::fifo_mutex().record_only();
        o.on_enqueue(t(1));
        o.on_enqueue(t(2));
        o.on_grant(t(2));
        assert!(
            o.violations().iter().any(|v| v.contains("FIFO handoff violated")),
            "got {:?}",
            o.violations()
        );
    }

    #[test]
    fn foreign_release_is_detected() {
        let o = LockOracle::mutex().record_only();
        o.on_acquire(t(1));
        o.on_release(t(9));
        assert!(o.violations().iter().any(|v| v.contains("does not hold it")));
    }

    #[test]
    fn stranded_waiter_fails_quiescence() {
        let o = LockOracle::fifo_mutex();
        o.on_enqueue(t(3));
        let problems = o.check_quiescent();
        assert!(problems.iter().any(|p| p.contains("stranded")), "got {problems:?}");
    }

    #[test]
    fn unreturned_permit_fails_quiescence() {
        let o = LockOracle::mutex();
        o.on_acquire(t(1));
        let problems = o.check_quiescent();
        assert!(problems.iter().any(|p| p.contains("still held")), "got {problems:?}");
    }

    #[test]
    fn signal_semaphore_pattern_is_legal() {
        // Release before any acquire (posting a permit) must be fine.
        let o = LockOracle::semaphore(0);
        o.on_release(t(1));
        o.on_release(t(1));
        o.on_acquire(t(2));
        o.on_acquire(t(3));
        o.assert_quiescent();
    }

    #[test]
    fn semaphore_overcommit_is_detected() {
        let o = LockOracle::semaphore(1).record_only();
        o.on_acquire(t(1));
        o.on_acquire(t(2));
        assert!(o.violations().iter().any(|v| v.contains("capacity violated")));
    }

    #[test]
    fn negative_waiting_count_is_detected() {
        let o = LockOracle::mutex().record_only();
        o.on_waiting_dec();
        assert!(o.violations().iter().any(|v| v.contains("negative")));
    }

    #[test]
    #[should_panic(expected = "capacity violated")]
    fn fail_fast_panics_at_the_violation() {
        let o = LockOracle::mutex();
        o.on_acquire(t(1));
        o.on_acquire(t(2));
    }
}
