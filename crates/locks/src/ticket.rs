//! A ticket lock — FIFO-fair spinning, used as an extra baseline for the
//! scheduler-comparison ablations (it is the degenerate "FCFS by
//! hardware" point in the design space).

use std::sync::Mutex;

use butterfly_sim::{ctx, NodeId, SimWord};

use crate::api::{charge_overhead, Lock, LockCosts, LockStats};

/// Classic two-counter ticket lock.
pub struct TicketLock {
    next: SimWord,
    serving: SimWord,
    costs: LockCosts,
    stats: Mutex<LockStats>,
}

impl TicketLock {
    /// Create on an explicit node.
    pub fn new_on(node: NodeId) -> TicketLock {
        TicketLock::with_costs(node, LockCosts::default())
    }

    /// Create on the caller's node.
    pub fn new_local() -> TicketLock {
        TicketLock::new_on(ctx::current_node())
    }

    /// Create with an explicit cost model.
    pub fn with_costs(node: NodeId, costs: LockCosts) -> TicketLock {
        TicketLock {
            next: SimWord::new_on(node, 0),
            serving: SimWord::new_on(node, 0),
            costs,
            stats: Mutex::new(LockStats::default()),
        }
    }
}

impl Lock for TicketLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        let ticket = self.next.fetch_add(1);
        let mut contended = false;
        while self.serving.load() != ticket {
            contended = true;
        }
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        if contended {
            s.contended += 1;
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        }
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.serving.fetch_add(1);
        self.stats.lock().unwrap().releases += 1;
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        // Take a ticket only if it would be served immediately.
        let serving = self.serving.load();
        match self.next.compare_exchange(serving, serving + 1) {
            Ok(_) => {
                self.stats.lock().unwrap().acquisitions += 1;
                true
            }
            Err(_) => false,
        }
    }

    fn name(&self) -> &'static str {
        "ticket"
    }

    fn waiting_now(&self) -> u64 {
        // Tickets issued but not yet served, minus the holder.
        let issued = self.next.peek();
        let serving = self.serving.peek();
        issued.saturating_sub(serving).saturating_sub(1)
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use butterfly_sim::{self as sim, Duration, ProcId, SimCell, SimConfig};
    use cthreads::fork_join_all;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn mutual_exclusion_holds() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(TicketLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || {
                    for _ in 0..25 {
                        with_lock(l.as_ref(), || {
                            let v = c.read();
                            ctx::advance(Duration::micros(1));
                            c.write(v + 1);
                        });
                    }
                }
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn grants_are_fifo() {
        // Three waiters arrive in a known order; they must acquire in
        // that order.
        let (order, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(TicketLock::new_local());
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock(); // hold so waiters queue up
            let handles: Vec<_> = (1..4)
                .map(|p| {
                    let (l, o) = (lock.clone(), order.clone());
                    cthreads::fork(ProcId(p), format!("w{p}"), move || {
                        // Stagger arrivals deterministically.
                        ctx::advance(Duration::micros(10 * p as u64));
                        l.lock();
                        o.poke(|v| v.push(p));
                        l.unlock();
                    })
                })
                .collect();
            ctx::advance(Duration::millis(1)); // all three are now queued
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        assert_eq!(order, vec![1, 2, 3], "ticket lock must grant FIFO");
    }

    #[test]
    fn try_lock_only_succeeds_when_free() {
        let (r, _) = sim::run(cfg(1), || {
            let lock = TicketLock::new_local();
            assert!(lock.try_lock());
            let while_held = lock.try_lock();
            lock.unlock();
            let after = lock.try_lock();
            lock.unlock();
            (while_held, after)
        })
        .unwrap();
        assert!(!r.0);
        assert!(r.1);
    }

    #[test]
    fn waiting_now_counts_queued_tickets() {
        let (w, _) = sim::run(cfg(3), || {
            let lock = std::sync::Arc::new(TicketLock::new_local());
            lock.lock();
            for p in 1..3 {
                let l = lock.clone();
                cthreads::fork(ProcId(p), format!("w{p}"), move || {
                    l.lock();
                    l.unlock();
                });
            }
            ctx::advance(Duration::millis(1));
            let w = lock.waiting_now();
            lock.unlock();
            w
        })
        .unwrap();
        assert_eq!(w, 2);
    }
}
