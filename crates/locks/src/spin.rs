//! Pure spin locks: raw test-and-set, test-and-test-and-set, and the
//! Anderson-style spin-with-backoff variant the paper measures.
//!
//! Spinning holds the processor: on the simulator, every probe charges a
//! (possibly remote) memory read and the thread never yields — exactly
//! the behaviour whose costs and benefits the paper quantifies.

use std::sync::Mutex;

use butterfly_sim::{ctx, Duration, NodeId, SimWord};

use crate::api::{charge_overhead, Lock, LockCosts, LockStats};

/// A test-and-test-and-set spin lock built on the Butterfly's `atomior`.
pub struct SpinLock {
    word: SimWord,
    costs: LockCosts,
    stats: Mutex<LockStats>,
}

impl SpinLock {
    /// Create on an explicit node.
    pub fn new_on(node: NodeId) -> SpinLock {
        SpinLock::with_costs(node, LockCosts::default())
    }

    /// Create on the caller's node.
    pub fn new_local() -> SpinLock {
        SpinLock::new_on(ctx::current_node())
    }

    /// Create with an explicit cost model (benchmarks use
    /// [`LockCosts::free`] to measure the bare protocol).
    pub fn with_costs(node: NodeId, costs: LockCosts) -> SpinLock {
        SpinLock {
            word: SimWord::new_on(node, 0),
            costs,
            stats: Mutex::new(LockStats::default()),
        }
    }

    /// The node the lock word lives on.
    pub fn home(&self) -> NodeId {
        self.word.home()
    }
}

impl Lock for SpinLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        // First attempt goes straight to test-and-set (uncontended fast
        // path is a single RMW).
        let mut contended = false;
        while self.word.test_and_set() {
            contended = true;
            // Test-and-test-and-set: spin reading until the word looks
            // free, then retry the RMW.
            while self.word.load() & 1 == 1 {}
        }
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        if contended {
            s.contended += 1;
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        }
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.word.store(0);
        self.stats.lock().unwrap().releases += 1;
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        let got = !self.word.test_and_set();
        if got {
            self.stats.lock().unwrap().acquisitions += 1;
        }
        got
    }

    fn name(&self) -> &'static str {
        "spin"
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }
}

/// Spin lock with backoff, after Anderson et al. [ALL89]: a thread probes,
/// and while the lock is busy backs off for an exponentially growing,
/// bounded delay (a stand-in for "proportional to the number of active
/// threads waiting", which the hardware cannot observe directly).
pub struct SpinBackoffLock {
    word: SimWord,
    /// Base backoff unit (first delay).
    base: Duration,
    /// Maximum doubling: delays are capped at `base * 2^cap_shift`.
    cap_shift: u32,
    costs: LockCosts,
    stats: Mutex<LockStats>,
}

impl SpinBackoffLock {
    /// Create on an explicit node with the default backoff (base 2 µs,
    /// doubling up to 32 µs).
    pub fn new_on(node: NodeId) -> SpinBackoffLock {
        SpinBackoffLock::with_params(node, Duration::micros(2), 4, LockCosts::default())
    }

    /// Create on the caller's node.
    pub fn new_local() -> SpinBackoffLock {
        SpinBackoffLock::new_on(ctx::current_node())
    }

    /// Full-control constructor: delays run `base, 2*base, ...,
    /// base * 2^cap_shift`.
    pub fn with_params(
        node: NodeId,
        base: Duration,
        cap_shift: u32,
        costs: LockCosts,
    ) -> SpinBackoffLock {
        assert!(cap_shift < 32, "cap_shift must stay in u32 range");
        assert!(base > Duration::ZERO, "backoff base must be positive");
        SpinBackoffLock {
            word: SimWord::new_on(node, 0),
            base,
            cap_shift,
            costs,
            stats: Mutex::new(LockStats::default()),
        }
    }
}

impl Lock for SpinBackoffLock {
    fn lock(&self) {
        charge_overhead(self.costs.lock_overhead);
        let t0 = ctx::now();
        let mut shift: u32 = 0;
        let mut contended = false;
        while self.word.test_and_set() {
            contended = true;
            // Back off while holding the processor (a busy-wait delay, not
            // a yield): the paper's spin-with-backoff never blocks.
            ctx::advance(self.base * (1u64 << shift));
            shift = (shift + 1).min(self.cap_shift);
        }
        let mut s = self.stats.lock().unwrap();
        s.acquisitions += 1;
        if contended {
            s.contended += 1;
            s.total_wait_nanos += ctx::now().since(t0).as_nanos();
        }
    }

    fn unlock(&self) {
        charge_overhead(self.costs.unlock_overhead);
        self.word.store(0);
        self.stats.lock().unwrap().releases += 1;
    }

    fn try_lock(&self) -> bool {
        charge_overhead(self.costs.lock_overhead);
        let got = !self.word.test_and_set();
        if got {
            self.stats.lock().unwrap().acquisitions += 1;
        }
        got
    }

    fn name(&self) -> &'static str {
        "spin-backoff"
    }

    fn stats(&self) -> LockStats {
        *self.stats.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::with_lock;
    use butterfly_sim::{self as sim, ProcId, SimCell, SimConfig};
    use cthreads::fork_join_all;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            processors: n,
            ..SimConfig::default()
        }
    }

    fn hammer(lock: &dyn Lock, counter: &SimCell<u64>, iters: usize) {
        for _ in 0..iters {
            with_lock(lock, || {
                let v = counter.read();
                ctx::advance(Duration::micros(2)); // critical section body
                counter.write(v + 1);
            });
        }
    }

    #[test]
    fn spin_lock_mutual_exclusion() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(SpinLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || hammer(l.as_ref(), &c, 25)
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100, "lost updates => mutual exclusion violated");
    }

    #[test]
    fn backoff_lock_mutual_exclusion() {
        let (total, _) = sim::run(cfg(4), || {
            let lock = std::sync::Arc::new(SpinBackoffLock::new_local());
            let counter = SimCell::new_local(0u64);
            let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
            fork_join_all(&procs, "w", |_| {
                let (l, c) = (lock.clone(), counter.clone());
                move || hammer(l.as_ref(), &c, 25)
            });
            counter.read()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn try_lock_fails_on_held_lock() {
        let (r, _) = sim::run(cfg(1), || {
            let lock = SpinLock::new_local();
            assert!(lock.try_lock());
            let second = lock.try_lock();
            lock.unlock();
            let third = lock.try_lock();
            lock.unlock();
            (second, third)
        })
        .unwrap();
        assert!(!r.0);
        assert!(r.1);
    }

    #[test]
    fn uncontended_spin_lock_is_one_rmw() {
        let (meter, _) = sim::run(cfg(1), || {
            let lock = SpinLock::with_costs(ctx::current_node(), LockCosts::free());
            let before = ctx::cost_meter();
            lock.lock();
            let delta = ctx::cost_meter() - before;
            lock.unlock();
            delta
        })
        .unwrap();
        assert_eq!(meter.rmws, 1, "fast path must be a single atomior");
        assert_eq!(meter.reads(), 1);
        assert_eq!(meter.writes(), 1);
    }

    #[test]
    fn backoff_spends_less_memory_traffic_under_contention() {
        // Under contention, backoff should issue fewer probes (RMW/reads)
        // than plain TTAS spinning for the same workload.
        fn traffic<L: Lock + 'static>(make: impl FnOnce() -> L + Send + 'static) -> u64 {
            let (_, report) = sim::run(cfg(4), move || {
                let lock = std::sync::Arc::new(make());
                let counter = SimCell::new_local(0u64);
                let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
                fork_join_all(&procs, "w", |_| {
                    let (l, c) = (lock.clone(), counter.clone());
                    move || hammer(l.as_ref(), &c, 10)
                });
            })
            .unwrap();
            report.mem.reads() + report.mem.writes()
        }
        let ttas = traffic(SpinLock::new_local);
        let backoff = traffic(SpinBackoffLock::new_local);
        assert!(
            backoff < ttas,
            "backoff ({backoff} ops) should reduce traffic vs TTAS ({ttas} ops)"
        );
    }

    #[test]
    fn stats_track_contention() {
        let (s, _) = sim::run(cfg(2), || {
            let lock = std::sync::Arc::new(SpinLock::new_local());
            let l2 = lock.clone();
            let h = cthreads::fork(ProcId(1), "w", move || {
                for _ in 0..10 {
                    with_lock(l2.as_ref(), || ctx::advance(Duration::micros(5)));
                }
            });
            for _ in 0..10 {
                with_lock(lock.as_ref(), || ctx::advance(Duration::micros(5)));
            }
            h.join();
            lock.stats()
        })
        .unwrap();
        assert_eq!(s.acquisitions, 20);
        assert_eq!(s.releases, 20);
        assert!(s.contended > 0, "two hammering threads must contend");
        assert!(s.mean_wait() > Duration::ZERO);
    }
}
