//! The discrete-event engine.
//!
//! Simulated threads are real OS threads, but the engine enforces a strict
//! coroutine discipline: at any real-time instant, either the engine or
//! exactly one simulated thread is executing. Threads hand control back at
//! every *simulator call* (timed work, memory reference, park, spawn, ...),
//! or — as a pure optimization — keep running without a handshake when the
//! engine can prove no other event precedes them ("fast-path advance").
//! This makes runs bit-for-bit deterministic on any host, including the
//! single-core machine this crate was developed on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::config::{ProcId, SimConfig};
use crate::ctx;
use crate::error::SimError;
use crate::gate::Gate;
use crate::report::SimReport;
use crate::tcb::{TState, Tcb, ThreadId, WakeReason};
use crate::world::{EvKind, World};

/// Panic payload used to unwind simulated threads during teardown.
pub(crate) struct ShutdownToken;

/// State shared between the engine and all simulated threads.
pub(crate) struct Shared {
    pub world: Mutex<World>,
    /// The engine parks here while a simulated thread runs.
    pub engine_gate: Gate,
    /// Set when the run is being torn down (normal end, deadlock, panic).
    pub shutdown: AtomicBool,
    /// Join handles of all simulated threads' OS threads.
    pub handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn new(cfg: SimConfig) -> Arc<Shared> {
        Arc::new(Shared {
            world: Mutex::new(World::new(cfg)),
            engine_gate: Gate::new(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        })
    }
}

/// Create a simulated thread: registers a TCB (state `Ready`, enqueued on
/// `proc`'s run queue) and starts the backing OS thread, which parks until
/// first dispatched. Returns the new thread's id.
pub(crate) fn spawn_thread(
    shared: &Arc<Shared>,
    proc: ProcId,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> ThreadId {
    let (tid, gate) = {
        let mut w = shared.world.lock().unwrap();
        let tid = ThreadId(w.tcbs.len());
        let tcb = Tcb::new(tid, proc, name.clone(), w.now);
        let gate = tcb.gate.clone();
        w.add_thread(tcb);
        (tid, gate)
    };

    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("sim-{}", name))
        .spawn(move || {
            // Wait for first dispatch.
            gate.pass();
            if shared2.shutdown.load(Ordering::Acquire) {
                return;
            }
            ctx::install(Arc::clone(&shared2), tid, proc, Arc::clone(&gate));
            let result = catch_unwind(AssertUnwindSafe(f));
            ctx::clear();
            if shared2.shutdown.load(Ordering::Acquire) {
                // Torn down mid-run via ShutdownToken; the engine is no
                // longer listening. Leave quietly.
                return;
            }
            let mut w = shared2.world.lock().unwrap();
            {
                let now = w.now;
                let tcb = w.tcb_mut(tid);
                tcb.state = TState::Finished;
                tcb.finished_at = Some(now);
            }
            w.unfinished -= 1;
            w.release_processor(tid);
            if let Err(payload) = result {
                let msg = panic_message(payload.as_ref());
                if w.panic.is_none() {
                    w.panic = Some((name, msg));
                }
            }
            drop(w);
            shared2.engine_gate.open();
        })
        .expect("failed to spawn OS thread backing a simulated thread");

    shared.handles.lock().unwrap().push(handle);
    tid
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Process one event; returns the gate of a thread to resume, if any.
fn handle_event(w: &mut World, kind: EvKind) -> Option<Arc<Gate>> {
    match kind {
        EvKind::Resume(tid) => {
            debug_assert_eq!(w.tcb(tid).state, TState::Advancing, "Resume of non-advancing {}", tid);
            if w.should_preempt(tid) || w.tcb(tid).force_preempt {
                w.requeue(tid);
                None
            } else {
                let tcb = w.tcb_mut(tid);
                tcb.state = TState::Running;
                Some(tcb.gate.clone())
            }
        }
        EvKind::Wake { tid, epoch } => {
            let tcb = w.tcb(tid);
            if tcb.park_epoch == epoch && matches!(tcb.state, TState::Blocked | TState::Sleeping) {
                w.make_ready(tid, WakeReason::Timeout);
            }
            None
        }
        EvKind::Dispatch(p) => {
            w.procs[p.0].dispatch_pending = false;
            if w.procs[p.0].current.is_some() {
                return None;
            }
            let tid = w.procs[p.0].ready.pop_front()?;
            w.procs[p.0].current = Some(tid);
            w.procs[p.0].switches += 1;
            let tcb = w.tcb_mut(tid);
            debug_assert_eq!(tcb.state, TState::Ready, "dispatch of non-ready {}", tid);
            tcb.state = TState::Running;
            tcb.quantum_used = crate::time::Duration::ZERO;
            let gate = tcb.gate.clone();
            w.record(tid, crate::report::ScheduleStep::Dispatched(p));
            Some(gate)
        }
    }
}

fn engine_loop(shared: &Arc<Shared>) -> Result<(), SimError> {
    loop {
        let to_run = {
            let mut w = shared.world.lock().unwrap();
            if let Some((thread, message)) = w.panic.take() {
                return Err(SimError::ThreadPanicked { thread, message });
            }
            match w.pop_event() {
                None => {
                    if w.unfinished == 0 {
                        return Ok(());
                    }
                    return Err(SimError::Deadlock {
                        at: w.now,
                        blocked: w.unfinished_threads(),
                    });
                }
                Some(ev) => {
                    debug_assert!(ev.at >= w.now, "time went backwards");
                    w.now = ev.at;
                    w.stats.events += 1;
                    let gate = handle_event(&mut w, ev.kind);
                    if gate.is_some() {
                        w.stats.handshakes += 1;
                    }
                    gate
                }
            }
        };
        if let Some(gate) = to_run {
            gate.open();
            shared.engine_gate.pass();
        }
    }
}

/// Tear down all still-live simulated threads and join every OS thread.
fn shutdown_and_join(shared: &Arc<Shared>) {
    shared.shutdown.store(true, Ordering::Release);
    let gates: Vec<Arc<Gate>> = {
        let w = shared.world.lock().unwrap();
        w.tcbs
            .iter()
            .filter(|t| t.state != TState::Finished)
            .map(|t| t.gate.clone())
            .collect()
    };
    for g in gates {
        g.open();
    }
    let handles = std::mem::take(&mut *shared.handles.lock().unwrap());
    for h in handles {
        let _ = h.join();
    }
}

fn build_report(shared: &Arc<Shared>) -> SimReport {
    let w = shared.world.lock().unwrap();
    let thread_spans = w
        .tcbs
        .iter()
        .map(|t| crate::report::ThreadSpan {
            name: t.name.clone(),
            spawned_at: t.spawned_at,
            finished_at: t.finished_at,
        })
        .collect();
    SimReport {
        end_time: w.now,
        events: w.stats.events,
        handshakes: w.stats.handshakes,
        fast_advances: w.stats.fast_advances,
        threads: w.stats.threads_spawned,
        proc_busy: w.procs.iter().map(|p| p.busy).collect(),
        proc_switches: w.procs.iter().map(|p| p.switches).collect(),
        mem: w.mem_stats,
        thread_spans,
        seed: w.cfg.seed,
        schedule: w.sched_trace.clone(),
    }
}

/// Run a simulation to completion.
///
/// `root` executes as the first simulated thread, on processor 0. The run
/// ends when every spawned thread has finished; `root`'s return value is
/// handed back together with a [`SimReport`].
///
/// # Errors
///
/// [`SimError::Deadlock`] if all remaining threads are blocked forever;
/// [`SimError::ThreadPanicked`] if any simulated thread panics (including
/// assertion failures inside tests).
///
/// # Panics
///
/// Panics if called from inside a simulated thread (nested simulations are
/// not supported) or if the configuration is invalid.
pub fn run<R, F>(cfg: SimConfig, root: F) -> Result<(R, SimReport), SimError>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    assert!(
        !ctx::in_sim(),
        "butterfly_sim::run called from inside a simulated thread"
    );
    let shared = Shared::new(cfg);
    let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    spawn_thread(&shared, ProcId(0), "root".to_string(), move || {
        let r = root();
        *slot2.lock().unwrap() = Some(r);
    });

    let outcome = engine_loop(&shared);
    shutdown_and_join(&shared);

    match outcome {
        Ok(()) => {
            let report = build_report(&shared);
            let value = slot
                .lock()
                .unwrap()
                .take()
                .expect("root thread finished without storing its result");
            Ok((value, report))
        }
        Err(e) => Err(e),
    }
}

/// [`run`] with the default configuration; convenient in tests and docs.
pub fn run_default<R, F>(root: F) -> Result<(R, SimReport), SimError>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    run(SimConfig::default(), root)
}
