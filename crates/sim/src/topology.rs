//! Switch-network topology models.
//!
//! The GP1000 connects nodes through a multistage *butterfly* network of
//! 4x4 switches: a remote reference traverses `ceil(log4 N)` switch
//! stages each way. [`Topology`] turns a (from, to) node pair into a hop
//! count so [`crate::MemoryParams`] can charge distance-dependent
//! latencies; the default flat model (every remote reference costs the
//! same) remains available and is what the simple local/remote tables
//! use.

use crate::config::NodeId;
use crate::time::Duration;

/// How remote-reference cost scales with the machine's interconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub enum Topology {
    /// Any remote reference costs the flat remote latency (the model the
    /// paper's local/remote tables imply).
    #[default]
    Flat,
    /// A multistage butterfly of radix-`radix` switches over `nodes`
    /// nodes: a remote reference pays `per_hop` for each of the
    /// `ceil(log_radix nodes)` stages, each way.
    Butterfly {
        /// Switch radix (4 on the GP1000).
        radix: u32,
        /// Total nodes in the machine.
        nodes: u32,
        /// Added latency per switch stage traversed (one way).
        per_hop: Duration,
    },
    /// A ring: remote cost grows with the shorter ring distance
    /// (useful as a contrast ablation; not a Butterfly configuration).
    Ring {
        /// Total nodes.
        nodes: u32,
        /// Added latency per ring hop.
        per_hop: Duration,
    },
}

impl Topology {
    /// A GP1000-shaped butterfly over `nodes` nodes.
    pub fn gp1000(nodes: u32) -> Topology {
        Topology::Butterfly {
            radix: 4,
            nodes,
            per_hop: Duration::nanos(400),
        }
    }

    /// Number of interconnect hops between two nodes (0 when local).
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        if from == to {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Butterfly { radix, nodes, .. } => {
                // Every remote pair traverses all stages of the
                // multistage network.
                stages(radix, nodes)
            }
            Topology::Ring { nodes, .. } => {
                let n = nodes as i64;
                let d = (from.0 as i64 - to.0 as i64).rem_euclid(n);
                d.min(n - d) as u32
            }
        }
    }

    /// Extra latency (beyond the base remote cost) for a reference from
    /// `from` to `to`. Zero for local references and for [`Topology::Flat`].
    pub fn extra_latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        match *self {
            Topology::Flat => Duration::ZERO,
            Topology::Butterfly { per_hop, .. } => {
                // Round trip through the switch; the first hop is already
                // folded into the flat remote base cost.
                per_hop * u64::from(self.hops(from, to).saturating_sub(1) * 2)
            }
            Topology::Ring { per_hop, .. } => {
                per_hop * u64::from(self.hops(from, to).saturating_sub(1) * 2)
            }
        }
    }
}


/// `ceil(log_radix nodes)`, the stage count of a multistage network.
fn stages(radix: u32, nodes: u32) -> u32 {
    assert!(radix >= 2, "switch radix must be at least 2");
    if nodes <= 1 {
        return 0;
    }
    let mut stages = 0;
    let mut reach: u64 = 1;
    while reach < u64::from(nodes) {
        reach *= u64::from(radix);
        stages += 1;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_match_butterfly_arithmetic() {
        assert_eq!(stages(4, 1), 0);
        assert_eq!(stages(4, 4), 1);
        assert_eq!(stages(4, 16), 2);
        assert_eq!(stages(4, 32), 3); // the GP1000's 32-node configuration
        assert_eq!(stages(4, 256), 4);
        assert_eq!(stages(2, 8), 3);
    }

    #[test]
    fn local_references_have_no_hops_anywhere() {
        for t in [
            Topology::Flat,
            Topology::gp1000(32),
            Topology::Ring {
                nodes: 8,
                per_hop: Duration::nanos(100),
            },
        ] {
            assert_eq!(t.hops(NodeId(3), NodeId(3)), 0);
            assert_eq!(t.extra_latency(NodeId(3), NodeId(3)), Duration::ZERO);
        }
    }

    #[test]
    fn butterfly_remote_cost_is_uniform() {
        let t = Topology::gp1000(32);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 3);
        assert_eq!(t.hops(NodeId(0), NodeId(31)), 3);
        assert_eq!(
            t.extra_latency(NodeId(0), NodeId(1)),
            t.extra_latency(NodeId(5), NodeId(17))
        );
    }

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring {
            nodes: 8,
            per_hop: Duration::nanos(100),
        };
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4);
        assert!(t.extra_latency(NodeId(0), NodeId(4)) > t.extra_latency(NodeId(0), NodeId(1)));
    }

    #[test]
    fn flat_topology_is_costless_beyond_base() {
        let t = Topology::Flat;
        assert_eq!(t.hops(NodeId(0), NodeId(9)), 1);
        assert_eq!(t.extra_latency(NodeId(0), NodeId(9)), Duration::ZERO);
    }

    #[test]
    fn bigger_machines_pay_more_stages() {
        let small = Topology::gp1000(16);
        let large = Topology::gp1000(256);
        assert!(
            large.extra_latency(NodeId(0), NodeId(1)) > small.extra_latency(NodeId(0), NodeId(1))
        );
    }
}
