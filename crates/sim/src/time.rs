//! Virtual time for the simulator.
//!
//! All simulated activity is measured in virtual nanoseconds. The paper
//! reports latencies in microseconds on a BBN Butterfly GP1000; we keep
//! nanosecond resolution so that sub-microsecond memory-reference costs
//! (a local reference on the GP1000 is roughly 600 ns) can be expressed
//! exactly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for paper-style reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds (for paper-style reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: VirtualTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("VirtualTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating version of [`VirtualTime::since`].
    #[inline]
    pub fn saturating_since(self, earlier: VirtualTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// A span of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Duration {
        Duration(n)
    }

    /// A span of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> Duration {
        Duration(n * 1_000)
    }

    /// A span of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Duration {
        Duration(n * 1_000_000)
    }

    /// A span of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Duration {
        Duration(n * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: Duration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn sub(self, rhs: Duration) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = VirtualTime::ZERO + Duration::micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + Duration::nanos(500);
        assert_eq!(t2.since(t), Duration::nanos(500));
        assert_eq!(t2 - Duration::nanos(500), t);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::millis(2).as_nanos(), 2_000_000);
        assert_eq!(Duration::secs(1).as_millis_f64(), 1000.0);
        assert!((Duration::micros(3).as_micros_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_ops() {
        let a = VirtualTime(10);
        let b = VirtualTime(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration(10));
        assert_eq!(Duration(5).saturating_sub(Duration(9)), Duration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Duration::nanos(30)), "30ns");
        assert_eq!(format!("{}", Duration::micros(30)), "30.000us");
        assert_eq!(format!("{}", Duration::millis(30)), "30.000ms");
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [Duration(1), Duration(2), Duration(3)].into_iter().sum();
        assert_eq!(total, Duration(6));
    }

    #[test]
    #[should_panic(expected = "`earlier` is later")]
    fn since_panics_on_reversed_order() {
        let _ = VirtualTime(5).since(VirtualTime(6));
    }
}
