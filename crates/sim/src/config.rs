//! Machine configuration: processor count, scheduling costs, and the NUMA
//! memory cost model.
//!
//! The defaults are calibrated to be *GP1000-shaped*: a local memory
//! reference costs ~600 ns, a remote (through-the-switch) reference about
//! 6-7x that, and a context switch in the user-level thread package is a
//! couple of orders of magnitude more expensive than a memory reference.
//! Absolute values are not meant to match the paper's tables; orderings
//! and ratios are.

use crate::time::Duration;
use crate::topology::Topology;

/// Identifies a processor. On the simulated Butterfly each processor sits
/// on its own node together with one memory module, so a `ProcId` is also
/// a node id for memory-placement purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Identifies a memory node (one memory module per processor node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl ProcId {
    /// The memory node co-located with this processor.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Cost model for references to the simulated NUMA memory.
///
/// The BBN Butterfly GP1000 connects 1..=256 nodes through a multistage
/// ("butterfly") switch; references to a non-local memory module traverse
/// the switch and cost several times a local reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryParams {
    /// Cost of a read from the local node's memory module.
    pub local_read: Duration,
    /// Cost of a write to the local node's memory module.
    pub local_write: Duration,
    /// Cost of a read from a remote memory module.
    pub remote_read: Duration,
    /// Cost of a write to a remote memory module.
    pub remote_write: Duration,
    /// Extra cost of an atomic read-modify-write (the Butterfly's
    /// `atomior` and friends lock the memory module for the duration),
    /// added on top of one read plus one write.
    pub rmw_extra: Duration,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            local_read: Duration::nanos(600),
            local_write: Duration::nanos(600),
            remote_read: Duration::nanos(4_000),
            remote_write: Duration::nanos(4_000),
            rmw_extra: Duration::nanos(400),
        }
    }
}

impl MemoryParams {
    /// Cost of a read issued from `from` against memory homed at `home`.
    #[inline]
    pub fn read_cost(&self, from: NodeId, home: NodeId) -> Duration {
        if from == home {
            self.local_read
        } else {
            self.remote_read
        }
    }

    /// Cost of a write issued from `from` against memory homed at `home`.
    #[inline]
    pub fn write_cost(&self, from: NodeId, home: NodeId) -> Duration {
        if from == home {
            self.local_write
        } else {
            self.remote_write
        }
    }

    /// Cost of an atomic read-modify-write from `from` against `home`.
    #[inline]
    pub fn rmw_cost(&self, from: NodeId, home: NodeId) -> Duration {
        self.read_cost(from, home) + self.write_cost(from, home) + self.rmw_extra
    }

    /// A uniform-memory variant (UMA), useful for ablations that ask how
    /// much of an effect is due to NUMA-ness.
    pub fn uniform(access: Duration) -> MemoryParams {
        MemoryParams {
            local_read: access,
            local_write: access,
            remote_read: access,
            remote_write: access,
            rmw_extra: Duration::ZERO,
        }
    }
}

/// Schedule-noise parameters for the exploration harness
/// ([`crate::explore`]).
///
/// When attached to a [`SimConfig`], the engine perturbs its scheduling
/// decisions using a dedicated deterministic random stream seeded from
/// `seed`:
///
/// * **forced preemptions** — at any simulator call (timed work, memory
///   reference, spawn) the running thread may be preempted even though
///   its quantum has not expired, exercising every instruction boundary
///   the simulator can observe;
/// * **ready-queue reordering** — a thread becoming ready may jump to
///   the *front* of its processor's run queue instead of the back,
///   randomizing dispatch order;
/// * **bounded wake delays** — sleep timers and park timeouts may fire
///   up to `max_delay` late, modelling timer/interrupt jitter.
///
/// The workload-visible random stream ([`crate::ctx::rand_u64`], seeded
/// from [`SimConfig::seed`]) is *not* affected, so the same workload
/// decisions replay under a different interleaving. Runs remain
/// bit-for-bit deterministic: the same `SimConfig` (including this
/// seed) always produces the same schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleNoise {
    /// Seed of the noise stream (independent of [`SimConfig::seed`]).
    pub seed: u64,
    /// Probability, in parts per million per simulator call, of a
    /// forced preemption.
    pub preempt_ppm: u32,
    /// Probability, in ppm per ready transition, that the thread jumps
    /// the run queue.
    pub reorder_ppm: u32,
    /// Probability, in ppm per timer, that a wake is delivered late.
    pub delay_ppm: u32,
    /// Upper bound on the injected wake delay.
    pub max_delay: Duration,
}

impl Default for ScheduleNoise {
    /// Moderate rates that meaningfully shuffle schedules without
    /// drowning runs in context switches; seed 0 (callers normally
    /// override it per schedule).
    fn default() -> Self {
        ScheduleNoise {
            seed: 0,
            preempt_ppm: 50_000,  // ~1 in 20 simulator calls
            reorder_ppm: 250_000, // ~1 in 4 ready transitions
            delay_ppm: 100_000,   // ~1 in 10 timers
            max_delay: Duration::micros(200),
        }
    }
}

impl ScheduleNoise {
    /// Default rates with an explicit seed.
    pub fn from_seed(seed: u64) -> ScheduleNoise {
        ScheduleNoise {
            seed,
            ..ScheduleNoise::default()
        }
    }

    fn validate(&self) {
        for (name, ppm) in [
            ("preempt_ppm", self.preempt_ppm),
            ("reorder_ppm", self.reorder_ppm),
            ("delay_ppm", self.delay_ppm),
        ] {
            assert!(
                ppm <= 1_000_000,
                "ScheduleNoise: {name} = {ppm} exceeds 1_000_000 (a probability in ppm)"
            );
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processors (== number of memory nodes).
    pub processors: usize,
    /// Cost charged whenever a processor switches from one thread to
    /// another (dispatch latency of the user-level thread package).
    pub context_switch: Duration,
    /// Cost charged to a thread for creating another thread.
    pub thread_create: Duration,
    /// Scheduling quantum. A thread that has run for at least this long
    /// is preempted at its next simulator call *if* other threads are
    /// ready on its processor. `None` disables preemption (the paper's
    /// TSP runs use one thread per processor, where it never triggers).
    pub quantum: Option<Duration>,
    /// NUMA memory cost model.
    pub memory: MemoryParams,
    /// Interconnect model: adds distance-dependent latency to remote
    /// references beyond the flat remote base cost.
    pub topology: Topology,
    /// Occupancy of a memory module per reference: while one reference
    /// is in flight, others to the same module queue behind it
    /// (hot-spot contention). Zero disables module queueing.
    pub module_occupancy: Duration,
    /// Seed recorded in the report; used by workloads for deterministic
    /// pseudo-randomness.
    pub seed: u64,
    /// Optional schedule perturbation for race exploration (see
    /// [`ScheduleNoise`] and [`crate::explore`]). `None` (the default)
    /// keeps the canonical deterministic schedule.
    pub schedule_noise: Option<ScheduleNoise>,
    /// Record every scheduling decision (dispatches, preemptions, ready
    /// transitions) into [`crate::SimReport::schedule`]. Off by default;
    /// intended for diffing the interleavings two noise seeds produce.
    pub record_schedule: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            processors: 10,
            context_switch: Duration::micros(15),
            thread_create: Duration::micros(150),
            quantum: Some(Duration::millis(10)),
            memory: MemoryParams::default(),
            topology: Topology::Flat,
            module_occupancy: Duration::ZERO,
            seed: 0x5eed_1993,
            schedule_noise: None,
            record_schedule: false,
        }
    }
}

impl SimConfig {
    /// Configuration resembling the paper's testbed: a 32-node Butterfly
    /// GP1000 (use [`SimConfig::processors`] to restrict to the 10-node
    /// partition the TSP experiments ran on).
    pub fn butterfly(processors: usize) -> SimConfig {
        SimConfig {
            processors,
            ..SimConfig::default()
        }
    }

    /// Validates the configuration, panicking with a descriptive message
    /// on nonsense values. Called by the engine at startup.
    pub fn validate(&self) {
        assert!(self.processors > 0, "SimConfig: need at least 1 processor");
        assert!(
            self.processors <= 4096,
            "SimConfig: {} processors is beyond any Butterfly configuration",
            self.processors
        );
        if let Some(q) = self.quantum {
            assert!(q > Duration::ZERO, "SimConfig: zero quantum would livelock");
        }
        if let Some(noise) = &self.schedule_noise {
            noise.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_vs_remote_costs() {
        let m = MemoryParams::default();
        let here = NodeId(0);
        let there = NodeId(3);
        assert!(m.read_cost(here, there) > m.read_cost(here, here));
        assert!(m.write_cost(here, there) > m.write_cost(here, here));
        assert!(m.rmw_cost(here, here) > m.read_cost(here, here) + m.write_cost(here, here) - Duration(1));
    }

    #[test]
    fn uniform_memory_has_no_numa_penalty() {
        let m = MemoryParams::uniform(Duration::nanos(100));
        assert_eq!(m.read_cost(NodeId(0), NodeId(5)), m.read_cost(NodeId(0), NodeId(0)));
        assert_eq!(m.rmw_cost(NodeId(1), NodeId(2)), Duration::nanos(200));
    }

    #[test]
    fn proc_node_colocation() {
        assert_eq!(ProcId(7).node(), NodeId(7));
        assert_eq!(format!("{}", ProcId(7)), "P7");
        assert_eq!(format!("{}", NodeId(7)), "N7");
    }

    #[test]
    #[should_panic(expected = "at least 1 processor")]
    fn zero_processors_rejected() {
        SimConfig {
            processors: 0,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceeds 1_000_000")]
    fn overrange_noise_probability_rejected() {
        SimConfig {
            schedule_noise: Some(ScheduleNoise {
                preempt_ppm: 1_000_001,
                ..ScheduleNoise::default()
            }),
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn noise_seed_constructor_keeps_default_rates() {
        let n = ScheduleNoise::from_seed(42);
        assert_eq!(n.seed, 42);
        assert_eq!(n.preempt_ppm, ScheduleNoise::default().preempt_ppm);
        SimConfig {
            schedule_noise: Some(n),
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero quantum")]
    fn zero_quantum_rejected() {
        SimConfig {
            quantum: Some(Duration::ZERO),
            ..SimConfig::default()
        }
        .validate();
    }
}
