//! The simulation world: event queue, processors, and thread table.
//!
//! The world is protected by a single mutex in [`crate::engine::Shared`];
//! because at most one simulated thread executes at a time, contention on
//! that mutex is purely the engine handshake, never a correctness concern.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::{ProcId, SimConfig};
use crate::report::{ScheduleRecord, ScheduleStep};
use crate::tcb::{CostMeter, TState, Tcb, ThreadId, WakeReason};
use crate::time::{Duration, VirtualTime};

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    pub at: VirtualTime,
    /// Tie-break: events at the same instant fire in push order.
    pub seq: u64,
    pub kind: EvKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvKind {
    /// A thread finishes a timed `advance` and continues on its processor.
    Resume(ThreadId),
    /// A sleep timer or park timeout fires. Ignored if `epoch` is stale.
    Wake { tid: ThreadId, epoch: u64 },
    /// A processor became free; dispatch the next ready thread.
    Dispatch(ProcId),
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// State of one simulated processor.
#[derive(Debug, Default)]
pub(crate) struct ProcState {
    /// Thread currently holding the processor.
    pub current: Option<ThreadId>,
    /// FIFO ready queue (the thread package's per-processor run queue).
    pub ready: VecDeque<ThreadId>,
    /// Whether a `Dispatch` event is already scheduled for this processor.
    pub dispatch_pending: bool,
    /// Accumulated busy time (work + memory stalls of its threads).
    pub busy: Duration,
    /// Number of thread-to-thread switches performed.
    pub switches: u64,
}

/// Global run statistics.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct GlobalStats {
    pub events: u64,
    pub handshakes: u64,
    pub fast_advances: u64,
    pub threads_spawned: u64,
}

pub(crate) struct World {
    pub cfg: SimConfig,
    pub now: VirtualTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    pub tcbs: Vec<Tcb>,
    pub procs: Vec<ProcState>,
    /// Threads not yet `Finished`.
    pub unfinished: usize,
    /// First panic observed in a simulated thread (thread name, message).
    pub panic: Option<(String, String)>,
    pub stats: GlobalStats,
    pub mem_stats: CostMeter,
    /// Per-node memory-module busy horizon (hot-spot queueing); only
    /// maintained when `cfg.module_occupancy > 0`.
    pub module_busy: Vec<VirtualTime>,
    /// splitmix64 state for `ctx::rand_u64`.
    rng_state: u64,
    /// splitmix64 state of the schedule-noise stream, kept separate from
    /// `rng_state` so noise never shifts workload-visible randomness.
    noise_state: u64,
    /// Schedule trace, recorded when `cfg.record_schedule` is set.
    pub sched_trace: Vec<ScheduleRecord>,
}

impl World {
    pub fn new(cfg: SimConfig) -> World {
        cfg.validate();
        let procs = (0..cfg.processors).map(|_| ProcState::default()).collect();
        let module_busy = vec![VirtualTime::ZERO; cfg.processors];
        let rng_state = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
        let noise_state = cfg
            .schedule_noise
            .as_ref()
            .map(|n| n.seed ^ 0xd1b5_4a32_d192_ed03)
            .unwrap_or(0);
        World {
            cfg,
            now: VirtualTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            tcbs: Vec::new(),
            procs,
            unfinished: 0,
            panic: None,
            stats: GlobalStats::default(),
            mem_stats: CostMeter::default(),
            module_busy,
            rng_state,
            noise_state,
            sched_trace: Vec::new(),
        }
    }

    /// Record one scheduling decision when tracing is on.
    pub fn record(&mut self, tid: ThreadId, step: ScheduleStep) {
        if self.cfg.record_schedule {
            let at = self.now;
            self.sched_trace.push(ScheduleRecord { at, tid, step });
        }
    }

    /// Next value of the noise stream (splitmix64, like `rand_u64` but
    /// over an independent state).
    fn noise_next(&mut self) -> u64 {
        self.noise_state = self.noise_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.noise_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Bernoulli roll against a ppm rate; always `false` with noise off.
    fn noise_roll(&mut self, ppm: u32) -> bool {
        if self.cfg.schedule_noise.is_none() || ppm == 0 {
            return false;
        }
        self.noise_next() % 1_000_000 < u64::from(ppm)
    }

    /// Whether noise forces a preemption at the current simulator call.
    pub fn noise_preempt(&mut self) -> bool {
        let ppm = self.cfg.schedule_noise.as_ref().map_or(0, |n| n.preempt_ppm);
        self.noise_roll(ppm)
    }

    /// Whether noise sends the next ready transition to the queue front.
    fn noise_reorder(&mut self) -> bool {
        let ppm = self.cfg.schedule_noise.as_ref().map_or(0, |n| n.reorder_ppm);
        self.noise_roll(ppm)
    }

    /// Extra delay noise injects into a timer being scheduled now
    /// (`Duration::ZERO` with noise off or when the roll misses).
    pub fn noise_wake_delay(&mut self) -> Duration {
        let Some(n) = self.cfg.schedule_noise.as_ref() else {
            return Duration::ZERO;
        };
        let (ppm, max) = (n.delay_ppm, n.max_delay);
        if max == Duration::ZERO || !self.noise_roll(ppm) {
            return Duration::ZERO;
        }
        Duration(self.noise_next() % (max.as_nanos() + 1))
    }

    pub fn push_event(&mut self, at: VirtualTime, kind: EvKind) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { at, seq, kind }));
    }

    pub fn pop_event(&mut self) -> Option<Event> {
        self.events.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.events.peek().map(|Reverse(e)| e.at)
    }

    pub fn tcb(&self, tid: ThreadId) -> &Tcb {
        &self.tcbs[tid.0]
    }

    pub fn tcb_mut(&mut self, tid: ThreadId) -> &mut Tcb {
        &mut self.tcbs[tid.0]
    }

    /// Register a new thread in `Ready` state and make its processor
    /// consider it for dispatch.
    pub fn add_thread(&mut self, tcb: Tcb) -> ThreadId {
        let tid = tcb.id;
        let proc = tcb.proc;
        assert!(
            proc.0 < self.procs.len(),
            "spawn on {} but machine has {} processors",
            proc,
            self.procs.len()
        );
        assert_eq!(tid.0, self.tcbs.len(), "thread ids must be dense");
        self.tcbs.push(tcb);
        self.unfinished += 1;
        self.stats.threads_spawned += 1;
        self.procs[proc.0].ready.push_back(tid);
        self.consider_dispatch(proc, self.now + self.cfg.context_switch);
        tid
    }

    /// Move a blocked/sleeping thread to its processor's ready queue.
    pub fn make_ready(&mut self, tid: ThreadId, reason: WakeReason) {
        let front = self.noise_reorder();
        let tcb = &mut self.tcbs[tid.0];
        debug_assert!(
            matches!(tcb.state, TState::Blocked | TState::Sleeping),
            "make_ready on {} in state {:?}",
            tid,
            tcb.state
        );
        tcb.state = TState::Ready;
        tcb.wake_reason = reason;
        // A wake invalidates any still-pending timeout for this cycle.
        tcb.park_epoch += 1;
        let proc = tcb.proc;
        if front {
            self.procs[proc.0].ready.push_front(tid);
            self.record(tid, ScheduleStep::ReadiedFront);
        } else {
            self.procs[proc.0].ready.push_back(tid);
            self.record(tid, ScheduleStep::Readied);
        }
        self.consider_dispatch(proc, self.now + self.cfg.context_switch);
    }

    /// Schedule a dispatch for `proc` at `at` if it is idle and none is
    /// already pending.
    pub fn consider_dispatch(&mut self, proc: ProcId, at: VirtualTime) {
        let p = &mut self.procs[proc.0];
        if p.current.is_none() && !p.dispatch_pending && !p.ready.is_empty() {
            p.dispatch_pending = true;
            self.push_event(at, EvKind::Dispatch(proc));
        }
    }

    /// Release the processor currently held by `tid` (which must hold it)
    /// and schedule the next dispatch after the context-switch cost.
    pub fn release_processor(&mut self, tid: ThreadId) {
        let proc = self.tcbs[tid.0].proc;
        let p = &mut self.procs[proc.0];
        debug_assert_eq!(p.current, Some(tid), "release by non-holder");
        p.current = None;
        self.consider_dispatch(proc, self.now + self.cfg.context_switch);
    }

    /// Account `d` of processor time to `tid`.
    pub fn charge_time(&mut self, tid: ThreadId, d: Duration) {
        let tcb = &mut self.tcbs[tid.0];
        tcb.quantum_used += d;
        self.procs[tcb.proc.0].busy += d;
    }

    /// Whether `tid` has exhausted its quantum and a same-processor
    /// thread is waiting to run.
    pub fn should_preempt(&self, tid: ThreadId) -> bool {
        match self.cfg.quantum {
            None => false,
            Some(q) => {
                let tcb = &self.tcbs[tid.0];
                tcb.quantum_used >= q && !self.procs[tcb.proc.0].ready.is_empty()
            }
        }
    }

    /// Requeue a running/advancing thread at the back of its ready queue
    /// (preemption or voluntary yield).
    pub fn requeue(&mut self, tid: ThreadId) {
        let forced = std::mem::take(&mut self.tcbs[tid.0].force_preempt);
        let tcb = &mut self.tcbs[tid.0];
        tcb.state = TState::Ready;
        tcb.quantum_used = Duration::ZERO;
        let proc = tcb.proc;
        self.procs[proc.0].ready.push_back(tid);
        let p = &mut self.procs[proc.0];
        p.current = None;
        self.record(
            tid,
            if forced {
                ScheduleStep::ForcedPreempt
            } else {
                ScheduleStep::Preempted
            },
        );
        self.consider_dispatch(proc, self.now + self.cfg.context_switch);
    }

    /// Deterministic pseudo-random stream shared by the whole run
    /// (splitmix64 over the config seed).
    pub fn rand_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Names and states of all unfinished threads (deadlock diagnostics).
    pub fn unfinished_threads(&self) -> Vec<(ThreadId, String, TState)> {
        self.tcbs
            .iter()
            .filter(|t| t.state != TState::Finished)
            .map(|t| (t.id, t.name.clone(), t.state))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(SimConfig {
            processors: 2,
            ..SimConfig::default()
        })
    }

    #[test]
    fn events_pop_in_time_then_seq_order() {
        let mut w = world();
        w.push_event(VirtualTime(50), EvKind::Dispatch(ProcId(0)));
        w.push_event(VirtualTime(10), EvKind::Dispatch(ProcId(1)));
        w.push_event(VirtualTime(10), EvKind::Dispatch(ProcId(0)));
        let a = w.pop_event().unwrap();
        let b = w.pop_event().unwrap();
        let c = w.pop_event().unwrap();
        assert_eq!(a.at, VirtualTime(10));
        assert_eq!(a.kind, EvKind::Dispatch(ProcId(1)), "same-time events fire in push order");
        assert_eq!(b.kind, EvKind::Dispatch(ProcId(0)));
        assert_eq!(c.at, VirtualTime(50));
        assert!(w.pop_event().is_none());
    }

    #[test]
    fn add_thread_schedules_dispatch() {
        let mut w = world();
        let tcb = Tcb::new(ThreadId(0), ProcId(1), "t".into(), VirtualTime::ZERO);
        w.add_thread(tcb);
        assert_eq!(w.unfinished, 1);
        assert!(w.procs[1].dispatch_pending);
        assert_eq!(w.procs[1].ready.len(), 1);
        assert!(w.peek_time().is_some());
    }

    #[test]
    fn dispatch_not_duplicated() {
        let mut w = world();
        w.add_thread(Tcb::new(ThreadId(0), ProcId(0), "a".into(), VirtualTime::ZERO));
        w.add_thread(Tcb::new(ThreadId(1), ProcId(0), "b".into(), VirtualTime::ZERO));
        // Only one Dispatch event should be pending for proc 0.
        let mut dispatches = 0;
        while let Some(e) = w.pop_event() {
            if matches!(e.kind, EvKind::Dispatch(_)) {
                dispatches += 1;
            }
        }
        assert_eq!(dispatches, 1);
    }

    #[test]
    fn preemption_requires_quantum_and_waiters() {
        let mut w = World::new(SimConfig {
            processors: 1,
            quantum: Some(Duration::micros(10)),
            ..SimConfig::default()
        });
        w.add_thread(Tcb::new(ThreadId(0), ProcId(0), "a".into(), VirtualTime::ZERO));
        // Pretend t0 got dispatched.
        w.procs[0].current = Some(ThreadId(0));
        w.procs[0].ready.clear();
        w.charge_time(ThreadId(0), Duration::micros(20));
        assert!(!w.should_preempt(ThreadId(0)), "no waiter -> no preemption");
        w.procs[0].ready.push_back(ThreadId(0)); // fake waiter
        assert!(w.should_preempt(ThreadId(0)));
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut a = world();
        let mut b = world();
        let xs: Vec<u64> = (0..5).map(|_| a.rand_u64()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.rand_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]), "stream should vary");
    }

    #[test]
    #[should_panic(expected = "machine has 2 processors")]
    fn spawn_on_missing_processor_panics() {
        let mut w = world();
        w.add_thread(Tcb::new(ThreadId(0), ProcId(9), "t".into(), VirtualTime::ZERO));
    }
}
