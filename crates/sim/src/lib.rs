//! # butterfly-sim
//!
//! A deterministic discrete-event simulator of a BBN Butterfly
//! GP1000-like NUMA shared-memory multiprocessor, built as the substrate
//! for reproducing *"Improving Performance by Use of Adaptive Objects"*
//! (Mukherjee & Schwan, GIT-CC-93/17, HPDC 1993).
//!
//! The simulated machine has:
//!
//! * `P` processors, each co-located with one memory module on its node;
//! * NUMA memory: local references are cheap, remote references traverse
//!   the switch and cost several times more ([`MemoryParams`]);
//! * an `atomior` atomic fetch-or primitive (the GP1000's hardware
//!   synchronization instruction), plus the usual RMW family;
//! * per-processor FIFO run queues with context-switch costs and optional
//!   quantum preemption (checked at simulator calls).
//!
//! Simulated threads are ordinary Rust closures running on real OS
//! threads, but the engine enforces that exactly one executes at a time
//! and that all simulated time flows through explicit calls
//! ([`ctx::advance`], memory references, parking). Runs are therefore
//! bit-for-bit deterministic for a given configuration, on any host.
//!
//! ```
//! use butterfly_sim as sim;
//! use sim::{ctx, Duration, ProcId, SimConfig, SimWord};
//!
//! let (sum, report) = sim::run(SimConfig::butterfly(4), || {
//!     let counter = SimWord::new_local(0);
//!     let c2 = counter.clone();
//!     let t = ctx::spawn(ProcId(1), "adder", move || {
//!         c2.fetch_add(5);
//!     });
//!     ctx::advance(Duration::micros(10));
//!     // Wait for the child by polling (the cthreads crate offers joins).
//!     while counter.load() == 0 {
//!         ctx::advance(Duration::micros(1));
//!     }
//!     let _ = t;
//!     counter.load()
//! })
//! .unwrap();
//! assert_eq!(sum, 5);
//! assert!(report.end_time.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod engine;
mod error;
mod gate;
mod mem;
mod report;
mod tcb;
mod time;
mod topology;
mod world;

pub mod ctx;
pub mod explore;

pub use config::{MemoryParams, NodeId, ProcId, ScheduleNoise, SimConfig};
pub use topology::Topology;
pub use engine::{run, run_default};
pub use error::SimError;
pub use crate::explore::{explore, replay, ExploreReport, ScheduleFailure};
pub use mem::{SimCell, SimWord};
pub use report::{ScheduleRecord, ScheduleStep, SimReport, ThreadSpan};
pub use tcb::{CostMeter, TState, ThreadId, WakeReason};
pub use time::{Duration, VirtualTime};
