//! Thread control blocks for simulated threads.

use std::ops::{Add, Sub};
use std::sync::Arc;

use crate::config::ProcId;
use crate::gate::Gate;
use crate::time::{Duration, VirtualTime};

/// Identifies a simulated thread within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Scheduling state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TState {
    /// On its processor's ready queue, waiting to be dispatched.
    Ready,
    /// Currently executing (holds its processor; at most one thread in
    /// the whole simulation is `Running` at any real-time instant).
    Running,
    /// Holds its processor but is in the middle of a timed `advance`;
    /// a `Resume` event will continue it.
    Advancing,
    /// Descheduled, waiting for an `unpark` (or a park timeout).
    Blocked,
    /// Descheduled, waiting for a sleep timer.
    Sleeping,
    /// Ran to completion (or was torn down by shutdown).
    Finished,
}

/// Why a parked/sleeping thread resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// Another thread issued an `unpark`.
    Unparked,
    /// The park timeout (or sleep timer) expired.
    Timeout,
}

/// Per-thread counters of simulated memory traffic, mirroring the paper's
/// `t = n1 R n2 W` cost formalism (Section 3.1): every primitive operation
/// is accounted as a number of reads and writes, split by NUMA locality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Reads satisfied by the local memory module.
    pub reads_local: u64,
    /// Reads that crossed the switch to a remote module.
    pub reads_remote: u64,
    /// Writes to the local module.
    pub writes_local: u64,
    /// Writes to a remote module.
    pub writes_remote: u64,
    /// Atomic read-modify-writes (counted additionally as 1R + 1W).
    pub rmws: u64,
}

impl CostMeter {
    /// Total reads, local + remote.
    pub fn reads(&self) -> u64 {
        self.reads_local + self.reads_remote
    }

    /// Total writes, local + remote.
    pub fn writes(&self) -> u64 {
        self.writes_local + self.writes_remote
    }

    /// Total memory operations.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }
}

impl Add for CostMeter {
    type Output = CostMeter;
    fn add(self, r: CostMeter) -> CostMeter {
        CostMeter {
            reads_local: self.reads_local + r.reads_local,
            reads_remote: self.reads_remote + r.reads_remote,
            writes_local: self.writes_local + r.writes_local,
            writes_remote: self.writes_remote + r.writes_remote,
            rmws: self.rmws + r.rmws,
        }
    }
}

impl Sub for CostMeter {
    type Output = CostMeter;
    /// Counter delta: `later - earlier`. Panics (in debug) on underflow,
    /// which would indicate snapshots taken from different threads.
    fn sub(self, r: CostMeter) -> CostMeter {
        CostMeter {
            reads_local: self.reads_local - r.reads_local,
            reads_remote: self.reads_remote - r.reads_remote,
            writes_local: self.writes_local - r.writes_local,
            writes_remote: self.writes_remote - r.writes_remote,
            rmws: self.rmws - r.rmws,
        }
    }
}

impl std::fmt::Display for CostMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}R {}W ({} rmw)", self.reads(), self.writes(), self.rmws)
    }
}

/// Engine-internal control block for one simulated thread.
#[derive(Debug)]
pub(crate) struct Tcb {
    pub id: ThreadId,
    pub proc: ProcId,
    pub name: String,
    pub state: TState,
    /// Handshake gate the thread's OS thread parks on.
    pub gate: Arc<Gate>,
    /// Pending unpark delivered before the thread parked.
    pub park_permit: bool,
    /// Invalidates stale timer events across park/sleep cycles.
    pub park_epoch: u64,
    /// Why the last park/sleep ended.
    pub wake_reason: WakeReason,
    /// Virtual time consumed since last dispatch (for preemption).
    pub quantum_used: Duration,
    /// One-shot flag set by schedule noise: preempt this thread at its
    /// next `Resume` regardless of quantum.
    pub force_preempt: bool,
    /// Memory-traffic counters.
    pub meter: CostMeter,
    /// When the thread was created.
    pub spawned_at: VirtualTime,
    /// When it finished, if it has.
    pub finished_at: Option<VirtualTime>,
}

impl Tcb {
    pub(crate) fn new(id: ThreadId, proc: ProcId, name: String, at: VirtualTime) -> Tcb {
        Tcb {
            id,
            proc,
            name,
            state: TState::Ready,
            gate: Arc::new(Gate::new()),
            park_permit: false,
            park_epoch: 0,
            wake_reason: WakeReason::Unparked,
            quantum_used: Duration::ZERO,
            force_preempt: false,
            meter: CostMeter::default(),
            spawned_at: at,
            finished_at: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_arithmetic() {
        let a = CostMeter {
            reads_local: 3,
            reads_remote: 1,
            writes_local: 2,
            writes_remote: 0,
            rmws: 1,
        };
        let b = CostMeter {
            reads_local: 1,
            reads_remote: 0,
            writes_local: 1,
            writes_remote: 0,
            rmws: 0,
        };
        let d = a - b;
        assert_eq!(d.reads(), 3);
        assert_eq!(d.writes(), 1);
        assert_eq!((b + d), a);
        assert_eq!(a.total(), 6);
        assert_eq!(format!("{}", a), "4R 2W (1 rmw)");
    }

    #[test]
    fn tcb_starts_ready() {
        let t = Tcb::new(ThreadId(3), ProcId(1), "x".into(), VirtualTime(7));
        assert_eq!(t.state, TState::Ready);
        assert_eq!(t.spawned_at, VirtualTime(7));
        assert!(t.finished_at.is_none());
        assert_eq!(format!("{}", t.id), "T3");
    }
}
