//! End-of-run report.

use crate::config::ProcId;
use crate::tcb::{CostMeter, ThreadId};
use crate::time::{Duration, VirtualTime};

/// One scheduling decision, captured when
/// [`crate::SimConfig::record_schedule`] is on. Diffing two runs'
/// records shows exactly where their interleavings diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleRecord {
    /// Virtual time of the decision.
    pub at: VirtualTime,
    /// Thread the decision concerns.
    pub tid: ThreadId,
    /// What happened.
    pub step: ScheduleStep,
}

/// The kind of scheduling decision a [`ScheduleRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleStep {
    /// The thread was handed its processor.
    Dispatched(ProcId),
    /// The thread was moved to the back of its run queue (quantum expiry
    /// or voluntary yield).
    Preempted,
    /// Schedule noise preempted the thread at a simulator call.
    ForcedPreempt,
    /// The thread became ready at the back of its run queue.
    Readied,
    /// Schedule noise moved the newly-ready thread to the *front* of its
    /// run queue.
    ReadiedFront,
}

impl std::fmt::Display for ScheduleRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            ScheduleStep::Dispatched(p) => write!(f, "{} {} dispatched on {}", self.at, self.tid, p),
            ScheduleStep::Preempted => write!(f, "{} {} preempted", self.at, self.tid),
            ScheduleStep::ForcedPreempt => write!(f, "{} {} force-preempted (noise)", self.at, self.tid),
            ScheduleStep::Readied => write!(f, "{} {} readied", self.at, self.tid),
            ScheduleStep::ReadiedFront => write!(f, "{} {} readied at queue front (noise)", self.at, self.tid),
        }
    }
}

/// Lifetime record of one simulated thread.
#[derive(Debug, Clone)]
pub struct ThreadSpan {
    /// Thread name.
    pub name: String,
    /// When it was created.
    pub spawned_at: VirtualTime,
    /// When it finished (`None` if torn down unfinished).
    pub finished_at: Option<VirtualTime>,
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last event was processed.
    pub end_time: VirtualTime,
    /// Total events processed by the engine.
    pub events: u64,
    /// Engine <-> thread handshakes performed (a real-time cost metric).
    pub handshakes: u64,
    /// `advance` calls satisfied without a handshake.
    pub fast_advances: u64,
    /// Total threads spawned over the run.
    pub threads: u64,
    /// Busy virtual time per processor.
    pub proc_busy: Vec<Duration>,
    /// Thread-to-thread switches per processor.
    pub proc_switches: Vec<u64>,
    /// Aggregate simulated memory traffic.
    pub mem: CostMeter,
    /// Per-thread lifetimes, in spawn order.
    pub thread_spans: Vec<ThreadSpan>,
    /// Seed the run was configured with.
    pub seed: u64,
    /// Scheduling decisions, when [`crate::SimConfig::record_schedule`]
    /// was on (empty otherwise).
    pub schedule: Vec<ScheduleRecord>,
}

impl SimReport {
    /// Mean processor utilization over the run, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.end_time == VirtualTime::ZERO || self.proc_busy.is_empty() {
            return 0.0;
        }
        let total: u64 = self.proc_busy.iter().map(|d| d.as_nanos()).sum();
        total as f64 / (self.end_time.as_nanos() as f64 * self.proc_busy.len() as f64)
    }

    /// Busy time of the busiest processor.
    pub fn max_busy(&self) -> Duration {
        self.proc_busy.iter().copied().max().unwrap_or(Duration::ZERO)
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "end={} events={} threads={} util={:.1}% mem={}",
            Duration(self.end_time.as_nanos()),
            self.events,
            self.threads,
            self.utilization() * 100.0,
            self.mem
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let r = SimReport {
            end_time: VirtualTime(1_000),
            events: 10,
            handshakes: 5,
            fast_advances: 5,
            threads: 2,
            proc_busy: vec![Duration(500), Duration(1_000)],
            proc_switches: vec![1, 2],
            mem: CostMeter::default(),
            thread_spans: vec![],
            seed: 0,
            schedule: vec![],
        };
        assert!((r.utilization() - 0.75).abs() < 1e-9);
        assert_eq!(r.max_busy(), Duration(1_000));
    }

    #[test]
    fn utilization_of_empty_run_is_zero() {
        let r = SimReport {
            end_time: VirtualTime::ZERO,
            events: 0,
            handshakes: 0,
            fast_advances: 0,
            threads: 0,
            proc_busy: vec![],
            proc_switches: vec![],
            mem: CostMeter::default(),
            thread_spans: vec![],
            seed: 0,
            schedule: vec![],
        };
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.max_busy(), Duration::ZERO);
    }
}
